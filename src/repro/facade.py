"""One-call simulation facade: scenario in, finished run out.

:func:`simulate` is the package's front door.  It wraps the full
build-load-fault-run pipeline behind a declarative :class:`Scenario`,
with the cross-cutting concerns — the seed, the fault plan, the
observability sinks — as explicit keyword arguments::

    import repro

    outcome = repro.simulate(repro.Scenario(station_count=40), seed=7)
    assert outcome.result.collision_free

    # Stream a trace and fold metric timelines while it runs:
    from repro.obs import Instrumentation, MetricTimelines
    timelines = MetricTimelines(station_count=40)
    outcome = repro.simulate(
        repro.Scenario(station_count=40),
        seed=7,
        instrumentation=Instrumentation((timelines,)),
    )

Everything stays bit-reproducible: the same scenario and seed produce
the same replay digest regardless of which sinks (if any) observe the
run, and fault plans compile through the seed tree exactly as the
experiment layer's do.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.net.network import (
    MacFactory,
    Network,
    NetworkConfig,
    NetworkResult,
    build_network,
)
from repro.net.traffic import PoissonTraffic
from repro.obs.api import Instrumentation
from repro.propagation.geometry import Placement, uniform_disk
from repro.propagation.models import PropagationModel
from repro.sim.streams import RandomStreams

__all__ = ["Scenario", "SimulationOutcome", "simulate"]


@dataclass(frozen=True)
class Scenario:
    """A declarative description of one simulated deployment.

    Attributes:
        station_count: number of stations (ignored when ``placement``
            is given).
        radius_m: radius of the uniform-disk deployment area (ignored
            when ``placement`` is given).
        load_packets_per_slot: per-station Poisson arrival rate in
            packets per slot (ignored when ``traffic`` is given).
        duration_slots: run length in slot times.
        config: network configuration; ``None`` derives
            ``NetworkConfig(seed=seed)`` from the simulate seed.
        model: propagation model (free space when ``None``).
        mac: which channel access scheme to run — a registered MAC
            name (see :func:`repro.mac.mac_names`) or an explicit
            per-station factory (the paper's scheme when ``None``).
        mac_factory: deprecated alias for passing a factory as
            ``mac``.
        placement: explicit station positions overriding the uniform
            disk.
        traffic: custom traffic installer called as
            ``traffic(network, seed)`` instead of the default uniform
            Poisson load; install sources with ``network.add_traffic``.
    """

    station_count: int = 100
    radius_m: float = 1000.0
    load_packets_per_slot: float = 0.05
    duration_slots: float = 500.0
    config: Optional[NetworkConfig] = None
    model: Optional[PropagationModel] = None
    mac: Union[str, MacFactory, None] = None
    placement: Optional[Placement] = None
    traffic: Optional[Callable[[Network, int], None]] = None
    mac_factory: Optional[MacFactory] = None

    def __post_init__(self) -> None:
        if self.mac_factory is not None:
            if self.mac is not None:
                raise ValueError(
                    "pass either mac= or the deprecated mac_factory=, "
                    "not both"
                )
            warnings.warn(
                "Scenario(mac_factory=...) is deprecated; pass the "
                "factory (or a registered MAC name) as mac=",
                DeprecationWarning,
                stacklevel=3,
            )
            object.__setattr__(self, "mac", self.mac_factory)
        if self.placement is None and self.station_count < 2:
            raise ValueError("need at least two stations")
        if self.radius_m <= 0.0:
            raise ValueError("radius must be positive")
        if self.traffic is None and self.load_packets_per_slot <= 0.0:
            raise ValueError("load must be positive")
        if self.duration_slots <= 0.0:
            raise ValueError("duration must be positive")


@dataclass(frozen=True)
class SimulationOutcome:
    """What :func:`simulate` hands back.

    Attributes:
        network: the assembled (and now finished) network, for deeper
            inspection — routing tables, stations, the medium.
        result: the run's aggregate :class:`NetworkResult`.
        instrumentation: the facade the run emitted through; query it
            (``of_kind``/``kinds``) or read its sinks.
        injector: the installed fault injector, or ``None`` when the
            run had no faults.
    """

    network: Network
    result: NetworkResult
    instrumentation: Instrumentation
    injector: Optional[object] = None


def simulate(
    scenario: Scenario,
    *,
    seed: int,
    faults: Optional[Sequence[object]] = None,
    instrumentation: Optional[Instrumentation] = None,
    trace: bool = False,
    mac: Union[str, MacFactory, None] = None,
) -> SimulationOutcome:
    """Build, load, (optionally) fault, and run one scenario.

    Args:
        scenario: the deployment to simulate.
        seed: master seed; placement, configuration, traffic and fault
            expansion all derive from it deterministically.
        mac: override the scenario's channel access scheme for this run
            — a registered MAC name (see :func:`repro.mac.mac_names`)
            or an explicit per-station factory; ``None`` keeps
            ``scenario.mac``.  Lets one frozen scenario fan out across
            the whole MAC registry.
        faults: declarative fault specs (e.g.
            :class:`repro.faults.StationChurn`), compiled through the
            seed tree and installed before the run; ``None`` installs
            nothing (bit-identical to a run without fault support).
        instrumentation: typed-event facade whose sinks observe the
            run; ``None`` (with ``trace=False``) disables emission
            entirely at zero cost.
        trace: guarantee an in-memory sink so
            ``outcome.instrumentation.of_kind(...)`` queries work.

    Returns:
        A :class:`SimulationOutcome` bundling the network, the
        aggregate result, the instrumentation facade and any installed
        fault injector.
    """
    placement = scenario.placement
    if placement is None:
        placement = uniform_disk(
            scenario.station_count, radius=scenario.radius_m, seed=seed
        )
    config = scenario.config or NetworkConfig(seed=seed)
    network = build_network(
        placement,
        config,
        model=scenario.model,
        mac=mac if mac is not None else scenario.mac,
        trace=trace,
        instrumentation=instrumentation,
    )

    if scenario.traffic is not None:
        scenario.traffic(network, seed)
    else:
        rng = RandomStreams(seed + 1).stream("traffic")
        rate = scenario.load_packets_per_slot / network.budget.slot_time
        destinations = list(range(network.station_count))
        for origin in range(network.station_count):
            network.add_traffic(
                PoissonTraffic(
                    origin=origin,
                    rate=rate,
                    destinations=destinations,
                    size_bits=config.packet_size_bits,
                    rng=rng,
                )
            )

    injector = None
    if faults:
        from repro.faults import compile_plan, install_faults
        from repro.parallel.seedtree import derive_seed

        plan = compile_plan(
            list(faults),
            seed=derive_seed(seed, "simulate", "faults"),
            station_count=network.station_count,
        )
        injector = install_faults(network, plan)

    result = network.run(scenario.duration_slots * network.budget.slot_time)
    return SimulationOutcome(
        network=network,
        result=result,
        instrumentation=network.instrumentation,
        injector=injector,
    )
