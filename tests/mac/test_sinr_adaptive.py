"""Tests for the SINR-adaptive persistence MAC."""

import numpy as np
import pytest

from repro.experiments.simsetup import add_uniform_poisson, standard_network
from repro.mac.sinr_adaptive import SinrAdaptiveMac
from repro.net.network import NetworkConfig, build_network
from repro.net.traffic import CbrTraffic
from repro.obs import Instrumentation, MetricTimelines
from repro.propagation.geometry import uniform_disk
from repro.sim.sanitizer import sanitized
from repro.sim.streams import RandomStreams


def budget_stub():
    from repro.net.network import LinkBudget

    return LinkBudget(
        sir_threshold=0.05,
        data_rate_bps=1e4,
        slot_time=0.4,
        packet_airtime=0.1,
        min_gain=1e-9,
        interference_bounds=np.ones(4),
        thermal_noise_w=1e-9,
        processing_gain_db=20.0,
        target_delivered_w=1.0,
    )


def adaptive_run(seed=37, count=12, load=0.2, duration_slots=60.0):
    timelines = MetricTimelines(station_count=count)
    with sanitized(True):
        network = standard_network(
            count,
            seed,
            NetworkConfig(seed=seed),
            mac="sinr_adaptive",
            trace=False,
            instrumentation=Instrumentation((timelines,)),
        )
        add_uniform_poisson(network, load, seed + 1)
        network.run(duration_slots * network.budget.slot_time)
        digest = network.env.replay_digest()
    return network, timelines, digest


class TestValidation:
    def test_parameter_ranges(self):
        rng = np.random.default_rng(1)
        budget = budget_stub()
        with pytest.raises(ValueError):
            SinrAdaptiveMac(rng, budget, p_max=0.0)
        with pytest.raises(ValueError):
            SinrAdaptiveMac(rng, budget, p_min=0.0)
        with pytest.raises(ValueError):
            SinrAdaptiveMac(rng, budget, p_min=0.9, p_max=0.5)
        with pytest.raises(ValueError):
            SinrAdaptiveMac(rng, budget, margin=0.5)
        with pytest.raises(ValueError):
            SinrAdaptiveMac(rng, budget, ewma_alpha=0.0)
        with pytest.raises(ValueError):
            SinrAdaptiveMac(rng, budget, max_defer=0)


class TestBehaviour:
    def test_delivers_on_quiet_channel(self):
        # With no contention the predicted SINR clears the margin and
        # persistence sits at p_max: every packet goes out.
        seed = 19
        placement = uniform_disk(12, radius=600.0, seed=seed)
        streams = RandomStreams(seed)
        network = build_network(
            placement, NetworkConfig(seed=seed), mac="sinr_adaptive", trace=True
        )
        network.add_traffic(
            CbrTraffic(
                origin=0,
                destination=int(network.tables[0].neighbors_in_use()[0]),
                interval=20 * network.budget.slot_time,
                size_bits=network.config.packet_size_bits,
                limit=5,
            )
        )
        result = network.run(200 * network.budget.slot_time)
        assert result.hop_deliveries == 5
        assert result.losses_total == 0

    def test_backs_off_under_load_but_still_delivers(self):
        _network, timelines, _digest = adaptive_run()
        assert timelines.end_to_end_deliveries > 0
        assert timelines.transmissions > 0


class TestDeterminism:
    def test_replay_digest_bit_identical(self):
        _n1, t1, d1 = adaptive_run()
        _n2, t2, d2 = adaptive_run()
        assert d1 == d2
        assert t1.end_to_end_deliveries == t2.end_to_end_deliveries

    def test_t7_rows_identical_jobs_1_vs_2(self):
        from repro.experiments.t7_baselines import run

        kwargs = dict(
            loads_packets_per_slot=(0.05, 0.1),
            station_count=12,
            duration_slots=80.0,
            macs=("sinr_adaptive",),
        )
        assert run(jobs=1, **kwargs).rows == run(jobs=2, **kwargs).rows
