"""Tests for packets and hop records."""

import pytest

from repro.net.packet import HopRecord, Packet


def make_packet(**overrides):
    params = dict(source=0, destination=5, size_bits=1000.0, created_at=2.0)
    params.update(overrides)
    return Packet(**params)


class TestPacket:
    def test_airtime(self):
        assert make_packet().airtime(1e4) == pytest.approx(0.1)

    def test_airtime_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            make_packet().airtime(0.0)

    def test_unique_ids(self):
        assert make_packet().packet_id != make_packet().packet_id

    def test_rejects_self_addressed(self):
        with pytest.raises(ValueError):
            make_packet(destination=0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_packet(size_bits=0.0)

    def test_data_kind_default(self):
        assert not make_packet().is_control

    def test_control_kind(self):
        assert make_packet(kind="rts").is_control


class TestJourney:
    def test_delay_from_hops(self):
        packet = make_packet(created_at=1.0)
        packet.hops.append(HopRecord(0, 3, start=2.0, end=2.5, power_w=1.0))
        packet.hops.append(HopRecord(3, 5, start=4.0, end=4.5, power_w=1.0))
        assert packet.delay() == pytest.approx(3.5)
        assert packet.hop_count == 2
        assert packet.delivered_at == 4.5

    def test_delay_without_hops_raises(self):
        with pytest.raises(ValueError):
            make_packet().delay()

    def test_energy_accumulates(self):
        packet = make_packet()
        packet.hops.append(HopRecord(0, 1, start=0.0, end=2.0, power_w=3.0))
        packet.hops.append(HopRecord(1, 5, start=3.0, end=4.0, power_w=1.0))
        assert packet.total_radiated_energy_j() == pytest.approx(7.0)

    def test_hop_record_properties(self):
        hop = HopRecord(0, 1, start=1.0, end=3.0, power_w=2.0)
        assert hop.airtime == 2.0
        assert hop.energy_j == 4.0
