"""Named, independently seeded random streams.

Experiments need several sources of randomness (placement, traffic,
clock offsets, schedule keys...) that must be decoupled: changing the
traffic seed must not perturb the placement.  ``RandomStreams`` derives
an independent :class:`numpy.random.Generator` per name from one master
seed using NumPy's ``SeedSequence.spawn`` discipline keyed by the
stream name, so every stream is reproducible in isolation.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of named, reproducible random generators.

    Args:
        seed: master seed for the whole family.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use, then cached)."""
        if not name:
            raise ValueError("stream name must be non-empty")
        if name not in self._streams:
            # Derive a child seed from (master seed, name) so that each
            # named stream is independent and stable across runs.
            name_key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence([self._seed, name_key])
            self._streams[name] = np.random.default_rng(sequence)
        return self._streams[name]

    def integer_seed(self, name: str, bits: int = 63) -> int:
        """A reproducible integer seed derived from ``name``.

        Useful for components that keep their own RNG (e.g. schedule
        hash keys), without consuming draws from the named stream.
        """
        if not 1 <= bits <= 63:
            raise ValueError("bits must be between 1 and 63")
        name_key = zlib.crc32(("seed:" + name).encode("utf-8"))
        sequence = np.random.SeedSequence([self._seed, name_key])
        return int(sequence.generate_state(1, dtype=np.uint64)[0] >> (64 - bits))
