"""Tests for over-the-air distance-vector route computation."""

import copy

import pytest

from repro.experiments.simsetup import standard_network
from repro.net.network import NetworkConfig
from repro.routing.overlay import DistanceVectorOverlay


@pytest.fixture(scope="module")
def converged():
    """A bootstrapped 15-station network, run to route convergence."""
    config = NetworkConfig(seed=23, calibrate_all_links=True)
    network = standard_network(15, 23, config)
    reference = {
        index: copy.deepcopy(table) for index, table in network.tables.items()
    }
    overlay = DistanceVectorOverlay(network)
    overlay.install()
    network.start()
    env = network.env
    slot = network.budget.slot_time
    for _ in range(30):
        before = overlay.last_change_at
        env.run(until=env.now + 50 * slot)
        if overlay.last_change_at == before:
            break
    return network, overlay, reference


class TestConvergence:
    def test_tables_match_centralized_next_hops(self, converged):
        _network, overlay, reference = converged
        stats = overlay.agreement_with(reference)
        assert stats["missing"] == 0
        assert stats["next_hop_agreement"] == 1.0

    def test_costs_match_exactly(self, converged):
        _network, overlay, reference = converged
        assert overlay.agreement_with(reference)["cost_agreement"] == 1.0

    def test_bootstrap_was_loss_free(self, converged):
        network, _overlay, _reference = converged
        assert network.medium.losses == []

    def test_adverts_were_real_transmissions(self, converged):
        network, overlay, _reference = converged
        assert overlay.adverts_sent > 0
        assert network.medium.deliveries >= overlay.adverts_sent


class TestValidation:
    def test_oversized_advert_rejected(self):
        network = standard_network(8, 29, NetworkConfig(seed=29), trace=False)
        with pytest.raises(ValueError, match="quarter-slot"):
            DistanceVectorOverlay(
                network, control_size_bits=10 * network.config.packet_size_bits
            )

    def test_bad_interval_rejected(self):
        network = standard_network(8, 29, NetworkConfig(seed=29), trace=False)
        with pytest.raises(ValueError):
            DistanceVectorOverlay(network, advert_interval_slots=0.0)


class TestStationControlPlumbing:
    def test_send_control_rejects_data_packets(self):
        from repro.net.packet import Packet

        network = standard_network(8, 31, NetworkConfig(seed=31), trace=False)
        station = network.stations[0]
        data = Packet(source=0, destination=1, size_bits=10.0, created_at=0.0)
        with pytest.raises(ValueError):
            station.send_control(1, data)

    def test_register_control_handler_validates_kind(self):
        network = standard_network(8, 31, NetworkConfig(seed=31), trace=False)
        with pytest.raises(ValueError):
            network.stations[0].register_control_handler("", lambda tx: None)
