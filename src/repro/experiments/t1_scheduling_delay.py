"""Experiment T1: scheduling overlap and delay statistics (Section 7.2).

Pins the paper's quantitative scheduling claims against measurements on
real schedule pairs:

* pairwise overlap fraction p(1-p) = 0.21 at p = 0.3;
* usable fraction ~15% with quarter-slot packets;
* expected wait 1/(p(1-p)) = 4.76 slots;
* the wait distribution is "fairly well modeled by a Bernoulli
  process" (geometric), checked bin by bin.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.scheduling_stats import (
    expected_wait_slots,
    geometric_wait_pmf,
    measure_overlap,
    measure_slot_waits,
    measure_waits,
    pairwise_overlap_fraction,
    usable_fraction,
)
from repro.clock.clock import Clock
from repro.core.schedule import Schedule
from repro.experiments.runner import ExperimentReport, register

__all__ = ["run"]


@register("T1")
def run(
    receive_fraction: float = 0.3,
    pairs: int = 12,
    arrivals_per_pair: int = 300,
    horizon_slots: int = 20_000,
    seed: int = 17,
) -> ExperimentReport:
    """Measure overlap and wait statistics over random schedule pairs."""
    if pairs < 1:
        raise ValueError("need at least one pair")
    report = ExperimentReport(
        experiment_id="T1",
        title="Scheduling overlap and delay vs the Bernoulli model (Section 7.2)",
        columns=("pair", "overlap measured", "overlap p(1-p)", "mean wait (slots)"),
    )
    rng = np.random.default_rng(seed)
    schedule = Schedule(slot_time=1.0, receive_fraction=receive_fraction, key=seed)
    slot_waits = []
    continuous_waits = []
    overlaps = []
    for pair in range(pairs):
        sender = Clock(offset=float(rng.uniform(0.0, 1e5)))
        receiver = Clock(offset=float(rng.uniform(0.0, 1e5)))
        overlap = measure_overlap(schedule, sender, receiver, horizon_slots)
        waits = measure_slot_waits(
            schedule, sender, receiver, arrivals=arrivals_per_pair, rng=rng
        )
        continuous = measure_waits(
            schedule, sender, receiver, arrivals=arrivals_per_pair, rng=rng
        )
        slot_waits.extend(waits)
        continuous_waits.extend(continuous)
        overlaps.append(overlap.overlap_fraction)
        report.add_row(
            pair, overlap.overlap_fraction, overlap.expected, float(np.mean(waits))
        )

    p = receive_fraction
    report.claim(
        "overlap fraction p(1-p)",
        pairwise_overlap_fraction(p),
        float(np.mean(overlaps)),
    )
    report.claim(
        "usable fraction with quarter-slot packets (~15% at p=0.3)",
        usable_fraction(p),
        float(np.mean(overlaps)) * 0.75,
    )
    report.claim(
        "expected wait slots 1/(p(1-p)) (slotted model)",
        expected_wait_slots(p),
        float(np.mean(slot_waits)) + 1.0,  # model counts the sending slot
    )
    report.claim(
        "continuous scheduler does at least as well (mean wait, slots)",
        f"<= {expected_wait_slots(p):.2f}",
        float(np.mean(continuous_waits)),
    )

    # Wait distribution vs geometric, bin by whole slots waited.
    max_bin = 12
    pmf = geometric_wait_pmf(p, max_bin)
    counts = np.zeros(max_bin)
    for wait in slot_waits:
        if wait < max_bin:
            counts[wait] += 1
    empirical = counts / len(slot_waits)
    worst = float(np.max(np.abs(empirical - np.asarray(pmf))))
    report.claim(
        "worst per-slot deviation from geometric pmf ('fairly well modeled')",
        "< ~0.1",
        worst,
    )
    report.notes.append(
        "Slotted waits count whole sender slots skipped before the first "
        "usable one (the paper's Bernoulli trial); the continuous rows "
        "measure the implementation's actual wait, which may straddle "
        "slot boundaries and is therefore shorter."
    )
    return report
