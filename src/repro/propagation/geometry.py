"""Station placement generators and planar geometry helpers.

Section 4 analyses "M interfering stations distributed randomly within a
circle of radius R"; Section 6 reasons about stations "distributed
randomly and independently in the plane at density rho".  This module
provides those placements (and a few structured alternatives useful for
experiments) as ``(M, 2)`` NumPy arrays, plus the derived quantities the
paper's formulas use: density, the characteristic nearest-neighbour
length ``R0 = 1/sqrt(rho)``, and pairwise distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "Placement",
    "uniform_disk",
    "uniform_square",
    "jittered_grid",
    "clustered",
    "characteristic_length",
    "pairwise_distances",
]


def characteristic_length(density: float) -> float:
    """The paper's characteristic length ``R0 = 1/sqrt(rho)``.

    At uniform density ``rho``, a circle of this radius around a station
    holds pi (~3.14) other stations in expectation; the nearest
    neighbour sits at roughly this distance (Section 4, Eq. 8-10).
    """
    if density <= 0.0:
        raise ValueError("density must be positive")
    return 1.0 / math.sqrt(density)


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Symmetric matrix of Euclidean distances between stations.

    The diagonal is zero.  Input must be an ``(M, 2)`` array.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions must be an (M, 2) array")
    deltas = positions[:, None, :] - positions[None, :, :]
    return np.sqrt((deltas**2).sum(axis=-1))


@dataclass(frozen=True)
class Placement:
    """A set of station positions together with the region they occupy.

    Attributes:
        positions: ``(M, 2)`` array of station coordinates (metres).
        region_radius: radius of the circle the analysis treats as the
            interference region (the paper's ``R``); for non-disk
            placements it is the circumradius of the region.
    """

    positions: np.ndarray
    region_radius: float

    def __post_init__(self) -> None:
        positions = np.asarray(self.positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError("positions must be an (M, 2) array")
        if self.region_radius <= 0.0:
            raise ValueError("region radius must be positive")
        object.__setattr__(self, "positions", positions)

    @property
    def count(self) -> int:
        """Number of stations M."""
        return int(self.positions.shape[0])

    @property
    def density(self) -> float:
        """Average station density over the interference disk."""
        return self.count / (math.pi * self.region_radius**2)

    @property
    def characteristic_length(self) -> float:
        """``R0 = 1/sqrt(rho)`` for this placement."""
        return characteristic_length(self.density)

    def distances(self) -> np.ndarray:
        """Pairwise distance matrix for the stations."""
        return pairwise_distances(self.positions)

    def nearest_neighbor_distances(self) -> np.ndarray:
        """Distance from each station to its nearest other station."""
        if self.count < 2:
            raise ValueError("need at least two stations")
        dist = self.distances()
        np.fill_diagonal(dist, np.inf)
        return dist.min(axis=1)

    def neighbors_within(self, station: int, radius: float) -> np.ndarray:
        """Indices of other stations within ``radius`` of ``station``."""
        if not 0 <= station < self.count:
            raise IndexError("station index out of range")
        if radius <= 0.0:
            raise ValueError("radius must be positive")
        deltas = self.positions - self.positions[station]
        dist = np.sqrt((deltas**2).sum(axis=1))
        mask = (dist <= radius) & (np.arange(self.count) != station)
        return np.nonzero(mask)[0]


def _rng(seed: Optional[int | np.random.Generator]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_disk(
    count: int,
    radius: float = 1.0,
    seed: Optional[int | np.random.Generator] = None,
) -> Placement:
    """Stations placed uniformly at random inside a disk (the paper's model)."""
    if count < 1:
        raise ValueError("need at least one station")
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    rng = _rng(seed)
    # Inverse-CDF sampling: area-uniform radius is sqrt(U) * R.
    r = radius * np.sqrt(rng.random(count))
    theta = rng.random(count) * 2.0 * math.pi
    positions = np.column_stack([r * np.cos(theta), r * np.sin(theta)])
    return Placement(positions, radius)


def uniform_square(
    count: int,
    side: float = 1.0,
    seed: Optional[int | np.random.Generator] = None,
) -> Placement:
    """Stations placed uniformly in a square centred on the origin."""
    if count < 1:
        raise ValueError("need at least one station")
    if side <= 0.0:
        raise ValueError("side must be positive")
    rng = _rng(seed)
    positions = (rng.random((count, 2)) - 0.5) * side
    return Placement(positions, side * math.sqrt(2.0) / 2.0)


def jittered_grid(
    per_side: int,
    spacing: float = 1.0,
    jitter: float = 0.0,
    seed: Optional[int | np.random.Generator] = None,
) -> Placement:
    """A ``per_side x per_side`` grid with optional uniform jitter.

    Models the "running cables between buildings" deployment of the
    introduction: roughly regular urban station placement.

    Args:
        per_side: stations along each axis.
        spacing: grid pitch.
        jitter: maximum displacement applied to each coordinate, as an
            absolute distance (0 gives a perfect grid).
    """
    if per_side < 1:
        raise ValueError("grid must have at least one station per side")
    if spacing <= 0.0:
        raise ValueError("spacing must be positive")
    if jitter < 0.0:
        raise ValueError("jitter must be non-negative")
    rng = _rng(seed)
    axis = (np.arange(per_side) - (per_side - 1) / 2.0) * spacing
    xs, ys = np.meshgrid(axis, axis)
    positions = np.column_stack([xs.ravel(), ys.ravel()])
    if jitter > 0.0:
        positions = positions + rng.uniform(-jitter, jitter, positions.shape)
    half_span = (per_side - 1) / 2.0 * spacing + jitter
    radius = max(half_span * math.sqrt(2.0), spacing / 2.0)
    return Placement(positions, radius)


def clustered(
    cluster_count: int,
    per_cluster: int,
    radius: float = 1.0,
    cluster_spread: float = 0.05,
    seed: Optional[int | np.random.Generator] = None,
) -> Placement:
    """A Thomas-process-like clustered placement.

    Section 6 warns that "variations in density will at some stations
    require reaching farther"; clustered placements exercise exactly
    that non-uniformity for the connectivity and power-control
    experiments.

    Args:
        cluster_count: number of cluster centres (uniform in the disk).
        per_cluster: stations per cluster.
        radius: disk radius for the cluster centres.
        cluster_spread: standard deviation of the Gaussian scatter of
            stations about their cluster centre, as a fraction of
            ``radius``.
    """
    if cluster_count < 1 or per_cluster < 1:
        raise ValueError("need at least one cluster and one station per cluster")
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    if cluster_spread <= 0.0:
        raise ValueError("cluster spread must be positive")
    rng = _rng(seed)
    centres = uniform_disk(cluster_count, radius, rng).positions
    sigma = cluster_spread * radius
    offsets = rng.normal(0.0, sigma, (cluster_count, per_cluster, 2))
    positions = (centres[:, None, :] + offsets).reshape(-1, 2)
    max_extent = float(np.sqrt((positions**2).sum(axis=1)).max())
    return Placement(positions, max(radius, max_extent))
