"""Propagation models: mappings from distance to power gain.

Section 3.3 simplifies the general linear time-invariant propagation
model down to scalar path gains, and Section 3.5 calibrates them:
``h_ij`` proportional to ``1/r_ij`` in amplitude, i.e. ``1/r^2`` in
power — exact in free space, and an *overestimate* of distant
interference when there are obstructions, which keeps the analysis
pessimistic.

All models return dimensionless *power* gains (received power equals
transmitted power times gain).  Amplitude gains — the paper's ``h_ij``
— are the square roots.  A small near-field clamp distance keeps gains
finite for co-located stations; the clamp default (1 m) is far below
the inter-station distances of any experiment in this repository.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "PropagationModel",
    "FreeSpace",
    "PathLossExponent",
    "AttenuatedFreeSpace",
    "ObstructedUrban",
]


class PropagationModel(ABC):
    """Base class: distance -> power gain, scalar or vectorised."""

    #: Distances below this are clamped to it, keeping gains finite.
    near_field_clamp: float = 1.0

    @abstractmethod
    def _gain_clamped(self, distance: np.ndarray) -> np.ndarray:
        """Power gain for distances already clamped away from zero."""

    def power_gain(self, distance: float | np.ndarray) -> float | np.ndarray:
        """Power gain at the given distance(s)."""
        arr = np.asarray(distance, dtype=float)
        if np.any(arr < 0.0):
            raise ValueError("distance must be non-negative")
        clamped = np.maximum(arr, self.near_field_clamp)
        gain = self._gain_clamped(clamped)
        if np.isscalar(distance) or arr.ndim == 0:
            return float(gain)
        return gain

    def amplitude_gain(self, distance: float | np.ndarray) -> float | np.ndarray:
        """The paper's ``h_ij``: amplitude gain, sqrt of the power gain."""
        return np.sqrt(self.power_gain(distance))

    def gain_matrix(self, distances: np.ndarray) -> np.ndarray:
        """Power-gain matrix for a pairwise distance matrix.

        The diagonal (self-propagation) is set to zero: a station's own
        transmitter is handled as the special Type 3 case, not through
        the gain matrix.
        """
        distances = np.asarray(distances, dtype=float)
        if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
            raise ValueError("distances must be a square matrix")
        gains = np.asarray(self.power_gain(distances), dtype=float)
        np.fill_diagonal(gains, 0.0)
        return gains


@dataclass
class FreeSpace(PropagationModel):
    """Free-space loss: power gain ``constant / r^2`` (the paper's model).

    Note the paper works with *amplitude* falling as ``1/r``; since its
    receivers care about power, the operative law is ``1/r^2`` in power
    over the plane (see Section 4's interference integral, which uses
    ``1/r^2`` per unit area).

    Attributes:
        constant: the paper's ``alpha``; use
            :func:`repro.radio.antenna.friis_constant` for physical
            units, or leave at 1.0 for the paper's normalised analysis.
    """

    constant: float = 1.0
    near_field_clamp: float = 1.0

    def __post_init__(self) -> None:
        if self.constant <= 0.0:
            raise ValueError("propagation constant must be positive")
        if self.near_field_clamp <= 0.0:
            raise ValueError("near-field clamp must be positive")

    def _gain_clamped(self, distance: np.ndarray) -> np.ndarray:
        return self.constant / distance**2


@dataclass
class PathLossExponent(PropagationModel):
    """Generalised power-law loss: gain ``constant / r^n``.

    Exponents above 2 model cluttered environments; the paper's
    free-space assumption (n = 2) is the pessimistic extreme for
    aggregate interference because real clutter attenuates distant
    interferers faster.

    Attributes:
        exponent: the path-loss exponent n (typically 2-4).
        constant: gain at the clamp distance scale.
    """

    exponent: float = 2.0
    constant: float = 1.0
    near_field_clamp: float = 1.0

    def __post_init__(self) -> None:
        if self.exponent < 1.0:
            raise ValueError("path-loss exponent below 1 is unphysical")
        if self.constant <= 0.0:
            raise ValueError("propagation constant must be positive")
        if self.near_field_clamp <= 0.0:
            raise ValueError("near-field clamp must be positive")

    def _gain_clamped(self, distance: np.ndarray) -> np.ndarray:
        return self.constant / distance**self.exponent


@dataclass
class AttenuatedFreeSpace(PropagationModel):
    """Free-space loss with exponential atmospheric attenuation.

    Section 4 observes that "the slightest bit of atmospheric
    attenuation, which would introduce an ``e^-epsilon*r`` factor to the
    integrand, would make the integral converge".  This model realises
    that factor so the noise-growth experiments can demonstrate the
    convergence.

    Attributes:
        epsilon: attenuation rate per unit distance (power domain).
        constant: free-space constant.
    """

    epsilon: float = 0.01
    constant: float = 1.0
    near_field_clamp: float = 1.0

    def __post_init__(self) -> None:
        if self.epsilon < 0.0:
            raise ValueError("attenuation rate must be non-negative")
        if self.constant <= 0.0:
            raise ValueError("propagation constant must be positive")
        if self.near_field_clamp <= 0.0:
            raise ValueError("near-field clamp must be positive")

    def _gain_clamped(self, distance: np.ndarray) -> np.ndarray:
        return self.constant * np.exp(-self.epsilon * distance) / distance**2


class ObstructedUrban(PropagationModel):
    """Free space with per-link log-normal obstruction (shadowing).

    Section 3.5: "Actual propagation in most cases will either be nearly
    equal to the free space propagation (when the antennas are within
    radio line of sight) or will be attenuated (when there are
    obstructions)."  Each ordered pair of endpoints gets a reproducible
    attenuation factor <= 1 drawn from a clipped log-normal, seeded by
    the pair, so that the matrix stays reciprocal (h_ij == h_ji) and
    repeated queries agree.

    Args:
        shadowing_db: standard deviation of the obstruction loss in dB.
        constant: free-space constant.
        seed: base seed for the per-link draws.
    """

    def __init__(
        self,
        shadowing_db: float = 6.0,
        constant: float = 1.0,
        seed: int = 0,
        near_field_clamp: float = 1.0,
    ) -> None:
        if shadowing_db < 0.0:
            raise ValueError("shadowing spread must be non-negative")
        if constant <= 0.0:
            raise ValueError("propagation constant must be positive")
        if near_field_clamp <= 0.0:
            raise ValueError("near-field clamp must be positive")
        self.shadowing_db = shadowing_db
        self.constant = constant
        self.seed = seed
        self.near_field_clamp = near_field_clamp
        self._free_space = FreeSpace(constant, near_field_clamp=near_field_clamp)

    def _gain_clamped(self, distance: np.ndarray) -> np.ndarray:
        # Distance-only queries cannot be link-reciprocal; they return
        # the free-space gain (obstruction is applied per link in
        # gain_matrix, where link identity is known).
        return self.constant / distance**2

    def _attenuations(self, count: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        loss_db = np.abs(rng.normal(0.0, self.shadowing_db, (count, count)))
        loss_db = np.triu(loss_db, k=1)
        loss_db = loss_db + loss_db.T  # reciprocity: h_ij == h_ji
        return 10.0 ** (-loss_db / 10.0)

    def gain_matrix(self, distances: np.ndarray) -> np.ndarray:
        gains = self._free_space.gain_matrix(distances)
        return gains * self._attenuations(gains.shape[0])


def model_from_name(name: str, **kwargs: float) -> PropagationModel:
    """Build a propagation model from a short name (for CLIs/configs)."""
    registry = {
        "free_space": FreeSpace,
        "path_loss": PathLossExponent,
        "attenuated": AttenuatedFreeSpace,
        "obstructed": ObstructedUrban,
    }
    try:
        cls = registry[name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise ValueError(f"unknown propagation model {name!r}; known: {known}")
    return cls(**kwargs)  # type: ignore[arg-type]


__all__.append("model_from_name")
