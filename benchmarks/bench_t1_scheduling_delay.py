"""Bench T1: scheduling overlap/delay vs the Bernoulli model (§7.2)."""

import pytest

from repro.experiments import get_experiment


def test_bench_t1_scheduling_delay(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("T1")(pairs=12, arrivals_per_pair=300),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    paper, measured = report.claims["overlap fraction p(1-p)"]
    assert measured == pytest.approx(paper, abs=0.02)
    paper, measured = report.claims["expected wait slots 1/(p(1-p)) (slotted model)"]
    assert measured == pytest.approx(paper, abs=1.0)
