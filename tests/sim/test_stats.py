"""Tests for streaming statistics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Histogram, TimeWeighted, Welford


class TestWelford:
    def test_empty_is_nan(self):
        acc = Welford()
        assert math.isnan(acc.mean)
        assert math.isnan(acc.variance)

    def test_single_value(self):
        acc = Welford()
        acc.add(7.0)
        assert acc.mean == 7.0
        assert math.isnan(acc.variance)

    def test_min_max(self):
        acc = Welford()
        acc.extend([3.0, -1.0, 9.0])
        assert acc.minimum == -1.0
        assert acc.maximum == 9.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_matches_numpy(self, values):
        acc = Welford()
        acc.extend(values)
        assert acc.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)
        assert acc.variance == pytest.approx(
            float(np.var(values, ddof=1)), rel=1e-6, abs=1e-6
        )


class TestTimeWeighted:
    def test_constant_signal(self):
        signal = TimeWeighted(initial_value=5.0)
        signal.update(10.0, 5.0)
        assert signal.average() == pytest.approx(5.0)

    def test_step_signal(self):
        signal = TimeWeighted(initial_value=0.0)
        signal.update(4.0, 10.0)   # zero for 4 units
        signal.update(6.0, 0.0)    # ten for 2 units
        assert signal.average() == pytest.approx(20.0 / 6.0)

    def test_average_extends_to_now(self):
        signal = TimeWeighted(initial_value=2.0)
        assert signal.average(now=10.0) == pytest.approx(2.0)

    def test_no_elapsed_is_nan(self):
        assert math.isnan(TimeWeighted().average())

    def test_time_reversal_rejected(self):
        signal = TimeWeighted()
        signal.update(5.0, 1.0)
        with pytest.raises(ValueError):
            signal.update(4.0, 2.0)


class TestHistogram:
    def test_binning(self):
        hist = Histogram(low=0.0, high=10.0, bins=10)
        for value in (0.5, 1.5, 1.6, 9.9):
            hist.add(value)
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2
        assert hist.counts[9] == 1

    def test_overflow_underflow(self):
        hist = Histogram(low=0.0, high=1.0, bins=2)
        hist.add(-5.0)
        hist.add(2.0)
        hist.add(1.0)  # boundary goes to overflow (half-open range)
        assert hist.underflow == 1
        assert hist.overflow == 2

    def test_total(self):
        hist = Histogram(low=0.0, high=1.0, bins=4)
        for value in (-1.0, 0.1, 0.9, 5.0):
            hist.add(value)
        assert hist.total == 4

    def test_normalized(self):
        hist = Histogram(low=0.0, high=2.0, bins=2)
        hist.add(0.5)
        hist.add(1.5)
        hist.add(1.6)
        assert hist.normalized() == pytest.approx([1 / 3, 2 / 3])

    def test_normalized_empty(self):
        assert Histogram(0.0, 1.0, 3).normalized() == [0.0, 0.0, 0.0]

    def test_bin_edges(self):
        assert Histogram(0.0, 1.0, 2).bin_edges() == [0.0, 0.5, 1.0]

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            Histogram(low=1.0, high=0.0, bins=2)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_every_value_lands_somewhere(self, value):
        hist = Histogram(low=-1.0, high=1.0, bins=7)
        hist.add(value)
        assert hist.total == 1
