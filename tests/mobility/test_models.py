"""Mobility model mechanics: confinement, determinism, moved sets."""

import numpy as np
import pytest

from repro.mobility import ClusterDrift, RandomWaypoint

RADIUS = 100.0


def _positions(count, seed=3):
    rng = np.random.default_rng(seed)
    r = RADIUS * np.sqrt(rng.random(count))
    theta = 2.0 * np.pi * rng.random(count)
    return np.column_stack((r * np.cos(theta), r * np.sin(theta)))


class TestRandomWaypoint:
    def test_static_never_moves(self):
        model = RandomWaypoint(speed=0.0)
        assert model.is_static
        positions = _positions(8)
        model.prepare(positions, RADIUS, np.random.default_rng(0))
        before = positions.copy()
        moved = model.step(positions, 5.0, np.random.default_rng(0))
        assert moved.size == 0
        np.testing.assert_array_equal(positions, before)

    def test_stays_inside_disk(self):
        model = RandomWaypoint(speed=2.0)
        positions = _positions(10)
        rng = np.random.default_rng(1)
        model.prepare(positions, RADIUS, rng)
        for _ in range(200):
            model.step(positions, 1.0, rng)
            radii = np.sqrt((positions**2).sum(axis=1))
            assert (radii <= RADIUS + 1e-9).all()

    def test_pause_holds_station_after_arrival(self):
        model = RandomWaypoint(speed=5.0, pause_slots=10.0)
        positions = np.zeros((1, 2))
        rng = np.random.default_rng(2)
        model.prepare(positions, RADIUS, rng)
        # Walk long enough to certainly arrive somewhere and pause.
        for _ in range(200):
            model.step(positions, 1.0, rng)
            if (model._pause_left > 0).any():
                break
        assert (model._pause_left > 0).any()
        held = positions.copy()
        model.step(positions, 1.0, rng)
        np.testing.assert_array_equal(positions, held)

    def test_same_rng_same_trajectory(self):
        a = _positions(6)
        b = a.copy()
        model_a = RandomWaypoint(speed=1.5)
        model_b = RandomWaypoint(speed=1.5)
        model_a.prepare(a, RADIUS, np.random.default_rng(9))
        model_b.prepare(b, RADIUS, np.random.default_rng(9))
        for _ in range(50):
            model_a.step(a, 2.0, np.random.default_rng(7))
            model_b.step(b, 2.0, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_rejects_negative_speed(self):
        with pytest.raises(ValueError):
            RandomWaypoint(speed=-1.0)


class TestClusterDrift:
    def test_stays_inside_disk_via_reflection(self):
        model = ClusterDrift(speed=3.0, clusters=3, redirect_slots=20.0)
        positions = _positions(12)
        rng = np.random.default_rng(4)
        model.prepare(positions, RADIUS, rng)
        for _ in range(300):
            model.step(positions, 1.0, rng)
            radii = np.sqrt((positions**2).sum(axis=1))
            assert (radii <= RADIUS + 1e-9).all()

    def test_moves_whole_clusters_coherently(self):
        model = ClusterDrift(speed=1.0, clusters=2, redirect_slots=1e9)
        positions = _positions(10)
        rng = np.random.default_rng(5)
        model.prepare(positions, RADIUS, rng)
        before = positions.copy()
        moved = model.step(positions, 1.0, rng)
        assert moved.size == 10
        displacement = positions - before
        for cluster in range(2):
            members = model._assignment == cluster
            if members.sum() < 2:
                continue
            deltas = displacement[members]
            # Interior members share the cluster heading exactly.
            interior = (
                np.sqrt((positions[members] ** 2).sum(axis=1)) < RADIUS
            )
            if interior.sum() >= 2:
                first = deltas[interior][0]
                np.testing.assert_allclose(
                    deltas[interior],
                    np.broadcast_to(first, deltas[interior].shape),
                    atol=1e-12,
                )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ClusterDrift(speed=1.0, clusters=0)
        with pytest.raises(ValueError):
            ClusterDrift(speed=1.0, redirect_slots=0.0)
