"""Experiment F3: the minimum-energy relay rule (Figure 3, Section 6.2).

Three claims made executable:

* a relay strictly inside the circle whose diameter is the
  sender-receiver segment always lowers total energy under 1/r^2 loss
  (and one outside never does);
* a perfectly centred relay cuts the energy exactly in half ("the total
  energy ... will be reduced by a factor of two");
* minimum-energy routes computed from the propagation matrix obey the
  rule: no hop of a min-energy route skips over a relay that the circle
  criterion says should be used.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.runner import ExperimentReport, register
from repro.propagation.geometry import uniform_disk
from repro.propagation.matrix import PropagationMatrix
from repro.propagation.models import FreeSpace
from repro.routing.min_energy import min_energy_tables, relay_helps, route_energy
from repro.routing.table import trace_route

__all__ = ["run"]


@register("F3")
def run(
    trials: int = 2000,
    station_count: int = 60,
    seed: int = 11,
) -> ExperimentReport:
    """Verify the relay-circle rule geometrically and against routes."""
    report = ExperimentReport(
        experiment_id="F3",
        title="Minimum-energy relay rule (Figure 3)",
        columns=("check", "cases", "agreements"),
    )
    rng = np.random.default_rng(seed)

    # Geometric rule vs direct energy comparison on random triples.
    agreements = 0
    for _ in range(trials):
        a = rng.uniform(-1.0, 1.0, 2)
        c = rng.uniform(-1.0, 1.0, 2)
        b = rng.uniform(-1.0, 1.0, 2)
        direct = float(((c - a) ** 2).sum())  # 1/g = r^2
        relayed = float(((b - a) ** 2).sum() + ((c - b) ** 2).sum())
        if (relayed < direct) == relay_helps(a, b, c):
            agreements += 1
    report.add_row("circle criterion == energy comparison", trials, agreements)

    # The centred relay halves the energy.
    a, c = np.array([0.0, 0.0]), np.array([2.0, 0.0])
    midpoint = (a + c) / 2.0
    direct = float(((c - a) ** 2).sum())
    relayed = float(((midpoint - a) ** 2).sum() + ((c - midpoint) ** 2).sum())
    report.claim("centred relay energy ratio", 0.5, relayed / direct)

    # Min-energy routes never skip a helpful relay.
    placement = uniform_disk(station_count, radius=100.0, seed=seed)
    matrix = PropagationMatrix.from_placement(
        placement, FreeSpace(near_field_clamp=1e-6)
    )
    tables = min_energy_tables(matrix)
    violations = 0
    hops_checked = 0
    positions = placement.positions
    for source, table in tables.items():
        for destination, next_hop in table.next_hops.items():
            hops_checked += 1
            # If any third station strictly inside the hop's circle
            # offers a cheaper two-leg path, the hop was suboptimal.
            for relay in range(station_count):
                if relay in (source, next_hop):
                    continue
                if relay_helps(
                    positions[source], positions[relay], positions[next_hop]
                ):
                    violations += 1
                    break
    report.add_row("route hops with an unused in-circle relay", hops_checked, violations)
    report.claim("unused-relay violations", 0, violations)

    # Worked route-energy example: a relayed path costs less.
    example = _sample_route(tables, matrix, station_count, rng)
    if example is not None:
        source, destination, path, energy, direct_energy = example
        report.claim(
            f"route {source}->{destination} energy vs direct",
            "route <= direct",
            f"{energy:.4g} <= {direct_energy:.4g}"
            if energy <= direct_energy
            else f"VIOLATION {energy:.4g} > {direct_energy:.4g}",
        )
    report.notes.append(
        "Energies are reciprocal path gains (Section 6.2): proportional to "
        "radiated energy under constant-delivered-power control."
    )
    return report


def _sample_route(tables, matrix, station_count: int, rng) -> Optional[tuple]:
    for _ in range(50):
        source = int(rng.integers(station_count))
        destination = int(rng.integers(station_count))
        if source == destination or not tables[source].has_route(destination):
            continue
        path = trace_route(tables, source, destination)
        if len(path) < 3:
            continue
        energy = route_energy(matrix, path)
        direct = 1.0 / matrix.gain(destination, source)
        return source, destination, path, energy, direct
    return None
