"""Bench F3: the minimum-energy relay rule (Figure 3)."""

import pytest

from repro.experiments import get_experiment


def test_bench_fig3_min_energy_relay(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("F3")(trials=2000, station_count=60),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    assert report.claims["centred relay energy ratio"][1] == pytest.approx(0.5)
    assert report.claims["unused-relay violations"][1] == 0
