"""Tests for the propagation matrix H."""

import numpy as np
import pytest

from repro.propagation.geometry import uniform_disk
from repro.propagation.matrix import PropagationMatrix
from repro.propagation.models import FreeSpace


def make_matrix(count=10, seed=0):
    placement = uniform_disk(count, radius=100.0, seed=seed)
    return PropagationMatrix.from_placement(placement, FreeSpace(near_field_clamp=1e-6))


class TestConstruction:
    def test_symmetric(self):
        matrix = make_matrix()
        assert np.allclose(matrix.gains, matrix.gains.T)

    def test_zero_diagonal_required(self):
        with pytest.raises(ValueError):
            PropagationMatrix(np.ones((2, 2)))

    def test_rejects_negative_gains(self):
        gains = np.zeros((2, 2))
        gains[0, 1] = -1.0
        with pytest.raises(ValueError):
            PropagationMatrix(gains)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            PropagationMatrix(np.zeros((2, 3)))


class TestQueries:
    def test_gain_lookup(self):
        matrix = make_matrix()
        assert matrix.gain(1, 2) == matrix.gains[1, 2]

    def test_self_gain_is_an_error(self):
        with pytest.raises(ValueError):
            make_matrix().gain(3, 3)

    def test_amplitude_is_sqrt_of_gain(self):
        matrix = make_matrix()
        assert matrix.amplitude(0, 1) == pytest.approx(np.sqrt(matrix.gain(0, 1)))

    def test_received_powers_eq2(self):
        # Eq. 2 in the power domain: y_i = sum_j g_ij P_j.
        matrix = make_matrix(count=4)
        powers = np.array([1.0, 2.0, 0.0, 0.5])
        received = matrix.received_powers(powers)
        manual = np.array(
            [
                sum(matrix.gains[i, j] * powers[j] for j in range(4))
                for i in range(4)
            ]
        )
        assert np.allclose(received, manual)

    def test_received_powers_excludes_self(self):
        matrix = make_matrix(count=3)
        powers = np.array([5.0, 0.0, 0.0])
        assert matrix.received_powers(powers)[0] == 0.0

    def test_received_powers_shape_check(self):
        with pytest.raises(ValueError):
            make_matrix(count=3).received_powers(np.ones(4))

    def test_neighbors_above_threshold(self):
        matrix = make_matrix(count=20, seed=3)
        threshold = float(np.median(matrix.gains[matrix.gains > 0]))
        neighbors = matrix.neighbors(0, threshold)
        for n in neighbors:
            assert matrix.gain(0, int(n)) >= threshold
        assert 0 not in neighbors


class TestObserved:
    def test_censoring_removes_weak_links(self):
        matrix = make_matrix(count=15, seed=4)
        threshold = float(np.median(matrix.gains[matrix.gains > 0]))
        observed = matrix.observed(min_gain=threshold)
        weak = (matrix.gains > 0) & (matrix.gains < threshold)
        assert np.all(observed.gains[weak] == 0.0)

    def test_measurement_noise_is_reciprocal(self):
        matrix = make_matrix(count=8, seed=5)
        observed = matrix.observed(measurement_sigma_db=3.0, seed=11)
        assert np.allclose(observed.gains, observed.gains.T)

    def test_measurement_noise_reproducible(self):
        matrix = make_matrix(count=8, seed=5)
        a = matrix.observed(measurement_sigma_db=3.0, seed=11)
        b = matrix.observed(measurement_sigma_db=3.0, seed=11)
        assert np.array_equal(a.gains, b.gains)

    def test_noise_free_observation_is_identity(self):
        matrix = make_matrix(count=6, seed=6)
        assert np.array_equal(matrix.observed().gains, matrix.gains)
