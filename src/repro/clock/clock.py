"""Free-running station clocks.

Section 7: "Global clock synchronization is not required. Only the
ability to relate one station's clock with another's is required."  And
(footnote 12): a *clock* here "just means something that advances at
some known rate" — no relation to wall time is implied.

A :class:`Clock` is an affine map from true simulated time to the
station's local reading: ``reading = offset + (1 + rate_error) * t``.
Rate errors model oscillator tolerance (tens of parts per million for
quartz).  Measurement jitter is applied where readings are *exchanged*
(see :mod:`repro.clock.sync`), keeping the underlying clock invertible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Clock", "random_clock"]


@dataclass(frozen=True)
class Clock:
    """An affine local clock.

    Attributes:
        offset: reading at true time zero.  Section 7.1 requires clocks
            to be "set independently to a random value" with enough
            high-order bits that neighbours' offsets almost surely
            differ by more than a slot.
        rate_error: fractional frequency error; the clock advances at
            ``(1 + rate_error)`` local seconds per true second.
    """

    offset: float = 0.0
    rate_error: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_error <= -1.0:
            raise ValueError("a clock must advance forward")

    @property
    def rate(self) -> float:
        """Local seconds per true second."""
        return 1.0 + self.rate_error

    def reading(self, true_time: float) -> float:
        """The clock's reading at the given true time."""
        return self.offset + self.rate * true_time

    def true_time(self, reading: float) -> float:
        """The true time at which the clock shows ``reading``."""
        return (reading - self.offset) / self.rate

    def elapsed_local(self, true_duration: float) -> float:
        """Local time elapsed over a true duration."""
        return self.rate * true_duration

    def offset_from(self, other: "Clock", true_time: float) -> float:
        """Instantaneous reading difference (self minus other)."""
        return self.reading(true_time) - other.reading(true_time)


def random_clock(
    rng: np.random.Generator,
    offset_span: float = 1e6,
    rate_error_ppm: float = 50.0,
    significant_bits: Optional[int] = None,
) -> Clock:
    """Draw an independently set clock (Section 7.1).

    Args:
        rng: source of randomness.
        offset_span: offsets are uniform over ``[0, offset_span)``.
            Ignored when ``significant_bits`` is given.
        rate_error_ppm: rate errors are uniform over ``+/-`` this many
            parts per million (quartz-grade by default).
        significant_bits: when given, the offset is an integer with this
            many random bits — the paper's "each additional high-order
            bit added and initialized randomly" construction, used by
            the clock-collision experiment (T11).
    """
    if significant_bits is not None:
        if significant_bits < 1:
            raise ValueError("need at least one random offset bit")
        offset = float(rng.integers(0, 2**significant_bits))
    else:
        if offset_span <= 0.0:
            raise ValueError("offset span must be positive")
        offset = float(rng.uniform(0.0, offset_span))
    if rate_error_ppm < 0.0:
        raise ValueError("rate error spread must be non-negative")
    rate_error = float(rng.uniform(-rate_error_ppm, rate_error_ppm)) * 1e-6
    return Clock(offset=offset, rate_error=rate_error)
