"""Experiment F2: the collision taxonomy on constructed scenes (Figure 2).

Figure 2 is a diagram of the three collision types.  This experiment
makes it executable: three four-station scenes are simulated on the
physical medium, each engineered to produce exactly one collision type,
and the loss classifier must name it correctly.  A fourth scene shows
the paper's Type 1 *tolerance* claim: a distant interferer overlapping
a reception does not destroy it once spread-spectrum margin exists.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.collisions import CollisionType
from repro.net.medium import LossRecord, Medium
from repro.net.packet import Packet
from repro.radio.spreadspectrum import DespreaderBank
from repro.sim.engine import Environment
from repro.sim.process import ProcessGenerator

__all__ = ["run"]

from repro.experiments.runner import ExperimentReport, register


class _Everyone:
    """Listen-always stub standing in for stations in the mini-scenes."""

    def __init__(self, banks: "list[DespreaderBank]") -> None:
        self.banks = banks

    def listen(self, _station: int, _now: float) -> bool:
        return True

    def bank(self, station: int) -> DespreaderBank:
        return self.banks[station]


def _mini_medium(
    gains: np.ndarray, threshold: float, channels: int = 1
) -> Tuple[Environment, Medium]:
    env = Environment()
    count = gains.shape[0]
    banks = [DespreaderBank(capacity=channels) for _ in range(count)]
    world = _Everyone(banks)
    medium = Medium(
        env=env,
        gains=gains,
        thermal_noise_w=1e-9,
        sir_thresholds=np.full(count, threshold),
        listen_query=world.listen,
        channel_query=world.bank,
    )
    return env, medium


def _line_gains(positions) -> np.ndarray:
    positions = np.asarray(positions, dtype=float)
    count = len(positions)
    gains = np.zeros((count, count))
    for i in range(count):
        for j in range(count):
            if i != j:
                gains[i, j] = 1.0 / max(abs(positions[i] - positions[j]), 1e-6) ** 2
    return gains


def _packet(src: int, dst: int, env: Environment) -> Packet:
    return Packet(source=src, destination=dst, size_bits=100.0, created_at=env.now)


@register("F2")
def run(threshold: float = 0.1) -> ExperimentReport:
    """Stage each collision type and check the classifier (Figure 2)."""
    report = ExperimentReport(
        experiment_id="F2",
        title="Collision taxonomy on constructed scenes (Figure 2)",
        columns=("scene", "expected", "observed reason", "observed types"),
    )

    # Scene 1 — Type 1: stations on a line [0, 1, 2(rx), 3]; 1 sends to
    # 0 while 3 sends to 2; 3's signal is strong, but 1's transmission
    # (addressed elsewhere, very near 2) crushes 2's reception.
    env, medium = _mini_medium(_line_gains([0.0, 10.0, 11.0, 21.0]), threshold)

    def scene1(env: Environment, medium: Medium) -> ProcessGenerator:
        yield env.timeout(1.0)
        medium.transmit(3, 2, _packet(3, 2, env), power_w=100.0, duration=1.0)
        yield env.timeout(0.2)
        medium.transmit(1, 0, _packet(1, 0, env), power_w=5000.0, duration=0.5)
        yield env.timeout(2.0)

    env.process(scene1(env, medium))
    env.run()
    _report_scene(report, "1: bystander interferer", CollisionType.TYPE_1, medium)

    # Scene 2 — Type 2: two senders to one receiver with a single
    # despreading channel; the second arrival finds the bank full.
    env, medium = _mini_medium(
        _line_gains([0.0, 10.0, 20.0]), threshold, channels=1
    )

    def scene2(env: Environment, medium: Medium) -> ProcessGenerator:
        yield env.timeout(1.0)
        medium.transmit(0, 1, _packet(0, 1, env), power_w=50.0, duration=1.0)
        yield env.timeout(0.1)
        medium.transmit(2, 1, _packet(2, 1, env), power_w=50.0, duration=1.0)
        yield env.timeout(2.0)

    env.process(scene2(env, medium))
    env.run()
    _report_scene(report, "2: two senders, one receiver", CollisionType.TYPE_2, medium)

    # Scene 3 — Type 3: the receiver is transmitting when the packet
    # arrives; its own transmitter self-jams the reception.
    env, medium = _mini_medium(_line_gains([0.0, 10.0, 20.0]), threshold)

    def scene3(env: Environment, medium: Medium) -> ProcessGenerator:
        yield env.timeout(1.0)
        medium.transmit(1, 2, _packet(1, 2, env), power_w=50.0, duration=1.0)
        yield env.timeout(0.1)
        medium.transmit(0, 1, _packet(0, 1, env), power_w=50.0, duration=0.5)
        yield env.timeout(2.0)

    env.process(scene3(env, medium))
    env.run()
    _report_scene(report, "3: receiver transmitting", CollisionType.TYPE_3, medium)

    # Scene 4 — Type 1 tolerance: the same bystander geometry as scene
    # 1 but with the interferer at the paper's "not so near" distance;
    # the reception must survive (spread spectrum absorbs it).
    env, medium = _mini_medium(_line_gains([0.0, 200.0, 11.0, 21.0]), threshold)

    def scene4(env: Environment, medium: Medium) -> ProcessGenerator:
        yield env.timeout(1.0)
        medium.transmit(3, 2, _packet(3, 2, env), power_w=100.0, duration=1.0)
        yield env.timeout(0.2)
        medium.transmit(1, 0, _packet(1, 0, env), power_w=5000.0, duration=0.5)
        yield env.timeout(2.0)

    env.process(scene4(env, medium))
    env.run()
    ok = medium.deliveries >= 1 and not any(
        rec.transmission.destination == 2 for rec in medium.losses
    )
    report.add_row(
        "4: distant bystander (no collision)",
        "reception survives",
        "survived" if ok else "LOST",
        "-",
    )
    report.notes.append(
        "Scenes are minimal constructions; the taxonomy classifier runs on "
        "the physical medium's loss records, not on scripted labels."
    )
    return report


def _report_scene(
    report: ExperimentReport,
    label: str,
    expected: CollisionType,
    medium: Medium,
) -> None:
    loss = _first_loss(medium)
    if loss is None:
        report.add_row(label, str(expected), "NO LOSS", "-")
        return
    types = ", ".join(str(t) for t in sorted(loss.collision_types, key=lambda t: t.value))
    report.add_row(label, str(expected), loss.reason, types or "-")


def _first_loss(medium: Medium) -> "LossRecord | None":
    return medium.losses[0] if medium.losses else None
