#!/usr/bin/env python
"""Neighbourhood mesh: the paper's motivating deployment.

The introduction imagines spread-spectrum radios "purchased and
installed by the users" as "an alternative for running cables between
buildings": a roughly grid-like urban neighbourhood, with a couple of
dense clusters (apartment blocks), everyone reaching the internet
gateway at the corner.  This example builds that scenario end to end:

* jittered-grid placement plus two clusters, obstructed (log-normal
  shadowed) propagation rather than clean free space;
* hotspot traffic: 70% of every station's packets go to the gateway;
* imperfect clock models fitted from noisy rendezvous exchanges.

It reports how the scheme holds up: losses (still zero), the gateway's
despreader usage (Type 2 absorption at the traffic hotspot), delays by
distance from the gateway, and the route structure.

Run::

    python examples/neighborhood_mesh.py
"""

import numpy as np

import repro
from repro.net import HotspotTraffic, NetworkConfig
from repro.propagation import Placement, ObstructedUrban, jittered_grid
from repro.routing import trace_route
from repro.sim import RandomStreams


def build_neighborhood(seed: int = 11) -> Placement:
    """An 8x8 block grid with two apartment clusters appended."""
    rng = np.random.default_rng(seed)
    grid = jittered_grid(8, spacing=120.0, jitter=25.0, seed=seed)
    cluster_centres = np.array([[260.0, 310.0], [-330.0, -180.0]])
    cluster_points = np.vstack(
        [
            centre + rng.normal(0.0, 18.0, (6, 2))
            for centre in cluster_centres
        ]
    )
    positions = np.vstack([grid.positions, cluster_points])
    return Placement(positions, region_radius=grid.region_radius * 1.2)


def main() -> None:
    placement = build_neighborhood()
    count = placement.count
    gateway = 0  # the corner station with the wired uplink

    config = NetworkConfig(
        seed=11,
        # Real oscillators, real rendezvous: offsets modelled from
        # eight noisy exchanges, with a guard band absorbing the error.
        rendezvous_jitter=1e-3,
        rendezvous_count=8,
        guard_fraction=0.03,
        # The gateway needs headroom: many stations converge on it.
        despreader_channels=12,
    )
    def hotspot_traffic(network, _seed):
        rng = RandomStreams(13).stream("traffic")
        budget = network.budget
        for origin in range(count):
            if origin == gateway:
                continue
            network.add_traffic(
                HotspotTraffic(
                    origin=origin,
                    rate=0.03 / budget.slot_time,
                    hotspot=gateway,
                    hotspot_fraction=0.7,
                    destinations=list(range(count)),
                    size_bits=config.packet_size_bits,
                    rng=rng,
                )
            )

    outcome = repro.simulate(
        repro.Scenario(
            placement=placement,
            duration_slots=800.0,
            config=config,
            model=ObstructedUrban(
                shadowing_db=6.0, seed=3, near_field_clamp=1e-6
            ),
            traffic=hotspot_traffic,
        ),
        seed=11,
        trace=True,
    )
    network, result = outcome.network, outcome.result
    budget = network.budget

    print(f"Neighbourhood mesh: {count} stations, gateway at index {gateway}")
    print(f"  processing gain  : {budget.processing_gain_db:.1f} dB")
    print(f"  raw data rate    : {budget.data_rate_bps:,.0f} bit/s")

    print("\nTraffic outcome")
    print(f"  originated          : {result.originated}")
    print(f"  end-to-end delivered: {result.delivered_end_to_end}")
    print(f"  losses              : {result.losses_total}")
    print(f"  mean hops           : {result.mean_hops:.2f}")

    gateway_station = network.stations[gateway]
    print("\nGateway under hotspot load")
    print(f"  packets terminated  : {gateway_station.stats.delivered_to_me}")
    print(f"  peak despreader use : {gateway_station.bank.peak_busy} "
          f"of {config.despreader_channels} channels")
    print(f"  bank rejections     : {gateway_station.bank.rejections}")

    # Delay vs distance from the gateway: multihop in action.
    print("\nDelay by distance ring (delivered-to-gateway packets)")
    distances = np.sqrt(
        ((placement.positions - placement.positions[gateway]) ** 2).sum(axis=1)
    )
    rings = [(0, 300.0), (300.0, 600.0), (600.0, 2000.0)]
    delays_by_origin = {}
    for record in network.trace.of_kind("delivered"):
        if record.data["station"] != gateway:
            continue
        delays_by_origin.setdefault(record.data["hops"], []).append(
            record.data["delay"]
        )
    for hops in sorted(delays_by_origin):
        delays = delays_by_origin[hops]
        print(
            f"  {hops}-hop routes: {len(delays):4d} packets, "
            f"mean delay {np.mean(delays) / budget.slot_time:6.1f} slots"
        )

    # A sample route toward the gateway.
    far_station = int(np.argmax(distances))
    path = trace_route(network.tables, far_station, gateway)
    print(f"\nFarthest station ({far_station}, {distances[far_station]:.0f} m out) "
          f"routes via {len(path) - 1} hops: {' -> '.join(map(str, path))}")

    assert result.collision_free
    print("\nZero collisions despite shadowed propagation, hotspot "
          "convergence, and noisy clock models.")


if __name__ == "__main__":
    main()
