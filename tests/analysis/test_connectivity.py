"""Tests for connectivity-versus-reach analysis."""

import math

import pytest

from repro.analysis.connectivity import (
    connectivity_sweep,
    largest_component_fraction,
)
from repro.propagation.geometry import Placement, uniform_disk

import numpy as np


class TestGiantComponent:
    def test_fully_connected_pair(self):
        placement = Placement(np.array([[0.0, 0.0], [1.0, 0.0]]), region_radius=2.0)
        assert largest_component_fraction(placement, reach=1.5) == 1.0

    def test_disconnected_pair(self):
        placement = Placement(np.array([[0.0, 0.0], [10.0, 0.0]]), region_radius=20.0)
        assert largest_component_fraction(placement, reach=1.0) == 0.5

    def test_three_clusters(self):
        positions = np.array(
            [[0.0, 0.0], [0.5, 0.0], [100.0, 0.0], [100.5, 0.0], [200.0, 0.0]]
        )
        placement = Placement(positions, region_radius=300.0)
        assert largest_component_fraction(placement, reach=1.0) == pytest.approx(0.4)

    def test_rejects_bad_reach(self):
        placement = uniform_disk(5, seed=0)
        with pytest.raises(ValueError):
            largest_component_fraction(placement, reach=0.0)


class TestSweep:
    def test_expected_neighbors_formula(self):
        placement = uniform_disk(300, seed=1)
        points = connectivity_sweep(placement, [1.0, 2.0])
        assert points[0].expected_neighbors == pytest.approx(math.pi)
        assert points[1].expected_neighbors == pytest.approx(4 * math.pi)

    def test_measured_neighbors_track_expected(self):
        placement = uniform_disk(1500, radius=1000.0, seed=2)
        points = connectivity_sweep(placement, [1.0, 2.0])
        for point in points:
            # Edge effects depress the measurement slightly.
            assert point.mean_neighbors == pytest.approx(
                point.expected_neighbors, rel=0.2
            )

    def test_connectivity_improves_with_reach(self):
        placement = uniform_disk(400, radius=1000.0, seed=3)
        points = connectivity_sweep(placement, [0.5, 1.0, 2.0, 3.0])
        fractions = [p.giant_component_fraction for p in points]
        assert fractions == sorted(fractions)

    def test_paper_reach_2_connects(self):
        # Section 6: doubling to 2/sqrt(rho) "should suffice in most
        # situations".
        placement = uniform_disk(500, radius=1000.0, seed=4)
        point = connectivity_sweep(placement, [2.0])[0]
        assert point.giant_component_fraction > 0.97
        assert point.isolated_fraction < 0.01

    def test_rejects_empty_factors(self):
        with pytest.raises(ValueError):
            connectivity_sweep(uniform_disk(10, seed=5), [])
