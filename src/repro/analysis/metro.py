"""Metro-scale performance: the abstract's projection, and a runnable
metro scene (experiment T8).

The abstract's claim: "with a modest fraction of the radio spectrum,
pessimistic assumptions about propagation resulting in maximum-possible
self-interference, and an optimistic view of future signal processing
capabilities ... a self-organizing packet radio network may scale to
millions of stations within a metro area with raw per-station rates in
the hundreds of megabits per second."

:class:`MetroProjection` walks that arithmetic end to end: Section 4's
SNR at scale, the Section 6 margins, Shannon back to a rate per hertz,
times the allotted bandwidth, times the per-station transmit share.

:func:`build_metro_scene` / :func:`run_metro_scene` then put a large
slice of that claim on the simulator: a fixed-density uniform disk of
up to 10^5+ stations whose gain structure is built *chunked* (never an
O(M^2) array) into a horizon-culled
:class:`~repro.propagation.sparse.SparseGainField`, driven through the
real :class:`~repro.net.medium.Medium` physics with the paper's hashed
transmit/receive schedules and per-station clock offsets.  The link
budget is calibrated against the sparse field's *culling-inclusive*
interference bound, so the zero-collision outcome survives the
approximation by construction.  Everything here is wall-clock-free;
``repro.analysis.perf`` owns the timing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.analysis.capacity import spectral_efficiency
from repro.core.intervals import Interval
from repro.core.noise import snr_nearest_neighbor
from repro.core.reception import shannon_capacity
from repro.core.schedule import DEFAULT_RECEIVE_FRACTION, Schedule
from repro.net.medium import Medium
from repro.net.packet import Packet
from repro.propagation.geometry import Placement, uniform_disk
from repro.propagation.horizon import (
    DEFAULT_ANTENNA_HEIGHT_M,
    mutual_radio_horizon_m,
)
from repro.propagation.models import FreeSpace, PropagationModel
from repro.propagation.sparse import DEFAULT_CHUNK_COLUMNS, SparseGainField
from repro.radio.signal import linear_to_db
from repro.radio.spreadspectrum import DespreaderBank
from repro.radio.thermal import thermal_noise_power
from repro.sim.engine import Environment
from repro.sim.streams import RandomStreams

__all__ = [
    "MetroProjection",
    "MetroScene",
    "MetroRunResult",
    "build_metro_scene",
    "run_metro_scene",
    "LEGACY_SCENE_DENSITY",
]

#: Station density of the repository's standard simulation scene (500
#: stations in a 1 km-radius disk), reused at metro scale so that
#: larger populations mean a *larger city*, not a denser one — exactly
#: the paper's fixed-rho scaling argument.
LEGACY_SCENE_DENSITY = 500.0 / (math.pi * 1000.0**2)


@dataclass(frozen=True)
class MetroProjection:
    """Projected performance of a metro-scale deployment.

    The defaults instantiate the abstract's optimistic case: beta = 1
    ("an optimistic view of future signal processing capabilities" —
    detection at the Shannon bound) and no reach margin (rate quoted at
    the characteristic hop), with 1 GHz of spectrum ("a modest fraction"
    of the tens of GHz usable at microwave).  The conservative variant
    (beta = 3, one reach doubling) is what the benches also report.

    Attributes:
        station_count: stations in the metro interference circle.
        bandwidth_hz: spectrum allotted to the system.
        duty_cycle: average transmit duty cycle eta.
        beta: detection margin above the Shannon bound (linear).
        reach_doublings: hop-reach margin beyond the characteristic
            distance (Section 6 budgets one doubling).
    """

    station_count: float = 1e6
    bandwidth_hz: float = 1e9
    duty_cycle: float = 0.35
    beta: float = 1.0
    reach_doublings: float = 0.0

    def __post_init__(self) -> None:
        if self.station_count <= math.e:
            raise ValueError("projection needs M > e")
        if self.bandwidth_hz <= 0.0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")
        if self.beta < 1.0:
            raise ValueError("beta must be >= 1")
        if self.reach_doublings < 0.0:
            raise ValueError("reach doublings must be non-negative")

    @property
    def snr(self) -> float:
        """Section 4 SNR at the characteristic hop distance."""
        return snr_nearest_neighbor(self.station_count, self.duty_cycle)

    @property
    def worst_case_snr(self) -> float:
        """SNR at the farthest design neighbour, after margins.

        Divides by beta (detection margin) and by 4 per reach doubling
        (6 dB each), leaving the SNR the rate must be designed for.
        """
        return self.snr / (self.beta * 4.0**self.reach_doublings)

    @property
    def raw_rate_bps(self) -> float:
        """Raw link rate while transmitting (the 'hundreds of Mb/s')."""
        return self.bandwidth_hz * spectral_efficiency(self.worst_case_snr)

    @property
    def sustained_rate_bps(self) -> float:
        """Long-run per-station send rate: raw rate times duty cycle."""
        return self.raw_rate_bps * self.duty_cycle

    @property
    def aggregate_rate_bps(self) -> float:
        """Simultaneous network-wide send rate across all stations.

        This is the spatial-reuse payoff: every station's sustained
        rate counts because the interference of everyone transmitting
        is already in the SNR.
        """
        return self.sustained_rate_bps * self.station_count

    @property
    def processing_gain_db(self) -> float:
        """Spreading ratio implied by the design rate."""
        efficiency = spectral_efficiency(self.worst_case_snr)
        if efficiency <= 0.0:
            return math.inf
        return 10.0 * math.log10(1.0 / efficiency)

    def thermal_noise_check(
        self, area_km2: float = 1000.0, transmit_power_w: float = 1.0
    ) -> float:
        """Ratio of aggregate interference to thermal noise at a receiver.

        Section 4 ignores thermal noise on the grounds that the
        interference din dominates; this returns by how many dB it does
        for a concrete physical instantiation (free-space constant from
        a 1 GHz carrier, unity-gain antennas).
        """
        from repro.radio.antenna import friis_constant

        if area_km2 <= 0.0 or transmit_power_w <= 0.0:
            raise ValueError("area and power must be positive")
        density = self.station_count / (area_km2 * 1e6)
        alpha = friis_constant(1e9)
        # Eq. 11-13 with physical units: N = pi eta rho alpha P ln M.
        interference = (
            math.pi
            * self.duty_cycle
            * density
            * alpha
            * transmit_power_w
            * math.log(self.station_count)
        )
        thermal = thermal_noise_power(self.bandwidth_hz)
        return linear_to_db(interference / thermal)

    def summary(self) -> dict:
        """All projection lines as a dict (for the T8 bench rows)."""
        return {
            "station_count": self.station_count,
            "bandwidth_mhz": self.bandwidth_hz / 1e6,
            "duty_cycle": self.duty_cycle,
            "snr_db": linear_to_db(self.snr),
            "design_snr_db": linear_to_db(self.worst_case_snr),
            "processing_gain_db": self.processing_gain_db,
            "raw_rate_mbps": self.raw_rate_bps / 1e6,
            "sustained_rate_mbps": self.sustained_rate_bps / 1e6,
            "aggregate_rate_gbps": self.aggregate_rate_bps / 1e9,
        }


@dataclass(frozen=True)
class MetroScene:
    """A built, calibrated metro-scale scene, ready to simulate.

    Construction never materialises an O(M^2) array: the gain structure
    is streamed into a CSR sparse field in ``(M, chunk)`` slabs, and
    every design quantity below is derived from that field.

    Attributes:
        placement: station positions (fixed legacy density by default).
        model: the propagation model the field was built under.
        gain_field: horizon-culled CSR gains with error accounting.
        nearest: per-station strongest-gain neighbour (the traffic
            destination; under a monotone path loss, also the nearest).
        powers: per-station transmit power (power-controlled to deliver
            ``target_delivered_w`` at the nearest neighbour, capped).
        sir_threshold: calibrated reception threshold, sound against
            the culling-inclusive interference bound.
        data_rate_bps: fixed design rate implied by the threshold.
        slot_time: schedule slot length (airtime / packet fraction).
        packet_airtime: airtime of the standard packet.
        thermal_noise_w: receiver thermal noise floor.
        receive_fraction: schedule receive duty cycle.
        schedule_key: shared schedule hash key.
        clock_offsets: per-station clock offsets (local = global +
            offset); spanning many slots decorrelates schedules (§7.1).
        packet_size_bits: standard packet size.
        seed: the build seed (placement and clocks derive from it).
    """

    placement: Placement
    model: PropagationModel
    gain_field: SparseGainField
    nearest: np.ndarray
    powers: np.ndarray
    sir_threshold: float
    data_rate_bps: float
    slot_time: float
    packet_airtime: float
    thermal_noise_w: float
    receive_fraction: float
    schedule_key: int
    clock_offsets: np.ndarray
    packet_size_bits: float
    seed: int

    @property
    def station_count(self) -> int:
        """Number of stations M."""
        return self.placement.count

    def schedule(self) -> Schedule:
        """The shared hashed transmit/receive schedule."""
        return Schedule(
            slot_time=self.slot_time,
            receive_fraction=self.receive_fraction,
            key=self.schedule_key,
        )

    def summary(self) -> Dict[str, float]:
        """Key scene figures for reports and bench notes."""
        sizes = self.gain_field.column_sizes()
        return {
            "stations": float(self.station_count),
            "region_radius_m": float(self.placement.region_radius),
            "density_per_m2": float(self.placement.density),
            "nnz": float(self.gain_field.nnz),
            "mean_interferers": float(sizes.mean()) if sizes.size else 0.0,
            "max_interferers": float(sizes.max()) if sizes.size else 0.0,
            "csr_memory_mb": self.gain_field.memory_bytes / 1e6,
            "dense_memory_mb": 8.0 * self.station_count**2 / 1e6,
            "sir_threshold_db": linear_to_db(self.sir_threshold),
            "data_rate_bps": self.data_rate_bps,
            "slot_time_s": self.slot_time,
        }


@dataclass(frozen=True)
class MetroRunResult:
    """Outcome of one simulated metro run.

    Attributes:
        stations: network size M.
        duration_slots: simulated horizon in slots.
        offered_packets: Poisson arrivals drawn over the horizon.
        transmitted: packets that found a joint schedule window and
            went on the air before the horizon.
        unscheduled: arrivals that could not start before the horizon
            (backlog carried past the end; not losses).
        deliveries: successful receptions (medium-verified SIR).
        losses_total: lost transmissions.
        losses_by_reason: loss tally per mechanical reason.
        events: simulation events processed (the perf work unit).
        max_field_error_bound_w: largest value of the medium's
            provable sparse-culling error bound observed at any
            transmission start — the witness that the approximation
            stayed within its accounted budget.
        digest: replay digest (only under the determinism sanitizer).
    """

    stations: int
    duration_slots: float
    offered_packets: int
    transmitted: int
    unscheduled: int
    deliveries: int
    losses_total: int
    losses_by_reason: Dict[str, int]
    events: int
    max_field_error_bound_w: float
    digest: Optional[str]

    @property
    def collision_free(self) -> bool:
        """Whether every transmitted packet was delivered."""
        return self.losses_total == 0


def build_metro_scene(
    station_count: int,
    seed: int = 7,
    density: float = LEGACY_SCENE_DENSITY,
    cull_fraction: float = 0.02,
    bandwidth_hz: float = 1e6,
    beta: float = 3.0,
    safety_margin: float = 2.0,
    packet_size_bits: float = 1000.0,
    packet_slot_fraction: float = 0.25,
    receive_fraction: float = DEFAULT_RECEIVE_FRACTION,
    schedule_key: int = 1,
    target_delivered_w: float = 1.0,
    thermal_fraction: float = 1e-6,
    clock_offset_span_slots: float = 1000.0,
    antenna_height_m: float = DEFAULT_ANTENNA_HEIGHT_M,
    chunk_columns: int = DEFAULT_CHUNK_COLUMNS,
    model: Optional[PropagationModel] = None,
) -> MetroScene:
    """Build a metro scene at fixed density, chunked end to end.

    The disk radius grows as ``sqrt(M / (pi * density))`` so the
    population scales the city, not the crowding; at ~14 km radius
    (10^5 stations at legacy density) the mutual radio horizon starts
    culling cross-city links exactly as Section 4 describes.

    Culling: links weaker than ``cull_fraction`` times the gain at the
    characteristic length are dropped from the CSR structure but
    accounted, and links beyond the mutual radio horizon are zeroed as
    physics.  The link budget below calibrates the SIR threshold
    against :meth:`SparseGainField.interference_bound_w`, which charges
    for the culled mass — so a zero-loss run is sound evidence, not an
    artifact of dropped interference.
    """
    if station_count < 2:
        raise ValueError("a metro scene needs at least two stations")
    if density <= 0.0:
        raise ValueError("density must be positive")
    if cull_fraction < 0.0:
        raise ValueError("cull fraction must be non-negative")
    if safety_margin < 1.0:
        raise ValueError("safety margin must be >= 1")
    if clock_offset_span_slots < 2.0:
        raise ValueError(
            "offsets under two slots risk correlated schedules (Section 7.1)"
        )
    radius = math.sqrt(station_count / (math.pi * density))
    placement = uniform_disk(station_count, radius=radius, seed=seed)
    model = model or FreeSpace(near_field_clamp=1e-6)
    characteristic = placement.characteristic_length
    cull_gain = cull_fraction * float(model.power_gain(characteristic))
    horizon = mutual_radio_horizon_m(antenna_height_m, antenna_height_m)
    gain_field = SparseGainField.from_placement(
        placement,
        model,
        cull_gain=cull_gain,
        horizon_m=horizon,
        chunk_columns=chunk_columns,
    )

    # Traffic sink and power control: each station talks to its
    # strongest stored neighbour.  Free space is monotone in distance,
    # so argmax gain == nearest station.
    nearest = np.zeros(station_count, dtype=np.intp)
    gain_to_nearest = np.zeros(station_count)
    for station in range(station_count):
        rows, vals = gain_field.column(station)
        if rows.size == 0:
            raise ValueError(
                f"station {station} has no stored neighbours; the cull "
                "threshold is too aggressive for this density"
            )
        best = int(np.argmax(vals))
        nearest[station] = rows[best]
        gain_to_nearest[station] = vals[best]

    # Section 6 power control with the network builder's cap: nobody
    # radiates more than twice the power the weakest usable link needs.
    min_gain = float(model.power_gain(2.0 * characteristic))
    max_power = 2.0 * target_delivered_w / min_gain
    powers = np.minimum(target_delivered_w / gain_to_nearest, max_power)

    # Link budget against the culling-inclusive worst case: every
    # station radiating at once, culled gains charged at peak power.
    bounds = gain_field.interference_bound_w(powers)
    thermal = thermal_fraction * float(bounds.min())
    worst = float(bounds.max()) + thermal
    delivered = powers * gain_to_nearest
    sir_threshold = float(delivered.min()) / (safety_margin * worst)
    data_rate = shannon_capacity(bandwidth_hz, sir_threshold / beta)
    airtime = packet_size_bits / data_rate
    slot_time = airtime / packet_slot_fraction

    offsets_rng = RandomStreams(seed).stream("metro-clocks")
    clock_offsets = offsets_rng.uniform(
        0.0, clock_offset_span_slots * slot_time, station_count
    )

    return MetroScene(
        placement=placement,
        model=model,
        gain_field=gain_field,
        nearest=nearest,
        powers=powers,
        sir_threshold=sir_threshold,
        data_rate_bps=data_rate,
        slot_time=slot_time,
        packet_airtime=airtime,
        thermal_noise_w=thermal,
        receive_fraction=receive_fraction,
        schedule_key=schedule_key,
        clock_offsets=clock_offsets,
        packet_size_bits=packet_size_bits,
        seed=seed,
    )


def _first_joint_start(
    schedule: Schedule,
    sender_offset: float,
    receiver_offset: float,
    earliest: float,
    airtime: float,
    guard: float,
    deadline: float,
) -> float:
    """Earliest global time >= ``earliest`` at which a burst of
    ``airtime`` fits inside the sender's transmit window AND the
    receiver's receive window (each in its own clock domain).

    Two-pointer sweep over the two stations' merged window streams;
    ``guard`` insets every window edge so clock-offset float round
    trips can never flip a designation at the boundary.

    Returns ``inf`` when no joint window opens before ``deadline``.
    This is not just a horizon cutoff: all stations share one schedule
    function, so a pair whose clock offsets differ by less than about
    one slot has *correlated* designations (the §7.1 hazard) and may
    never open a joint window at all — the deadline is what keeps the
    sweep finite for such pairs.
    """
    sender: Iterator[Interval] = schedule.windows(
        earliest + sender_offset, receive=False
    )
    receiver: Iterator[Interval] = schedule.windows(
        earliest + receiver_offset, receive=True
    )
    tx_a, tx_b = next(sender)
    rx_a, rx_b = next(receiver)
    while True:
        # Convert both windows to global time and inset the guard.
        lo = max(tx_a - sender_offset, rx_a - receiver_offset) + guard
        hi = min(tx_b - sender_offset, rx_b - receiver_offset) - guard
        start = max(lo, earliest)
        if start >= deadline:
            return math.inf
        if hi - start >= airtime:
            return start
        if tx_b - sender_offset <= rx_b - receiver_offset:
            tx_a, tx_b = next(sender)
        else:
            rx_a, rx_b = next(receiver)


def run_metro_scene(
    scene: MetroScene,
    load: float = 0.05,
    duration_slots: float = 30.0,
    traffic_seed: int = 99,
    despreader_channels: int = 12,
    guard_fraction: float = 0.01,
    resync_events: Optional[int] = 4096,
    env: Optional[Environment] = None,
) -> MetroRunResult:
    """Simulate a metro scene under Poisson nearest-neighbour traffic.

    Arrivals are pre-drawn and pre-scheduled: for each packet the
    sender picks the earliest instant at which its own transmit window
    and the destination's receive window jointly fit the burst (the
    paper's scheme — senders consult the published schedules, nothing
    is contended).  The event loop then drives the real medium: every
    transmission pays its CSR column scatter, every in-progress
    reception is SIR-checked continuously, and losses are classified
    by the Section 5 taxonomy.  Type 3 self-jamming is impossible by
    construction (transmit and receive windows are disjoint per
    station), so a zero-loss run checks the full Section 7 claim.

    Args:
        scene: a built metro scene.
        load: offered load in packets per slot per station.
        duration_slots: arrival horizon in slots (transmissions that
            start before the horizon run to completion).
        traffic_seed: seed for the Poisson arrival draw.
        despreader_channels: per-station despreader bank capacity.
        guard_fraction: window-edge inset as a fraction of a slot.
        resync_events: medium drift-guard cadence.
        env: simulation environment (one is built when omitted; pass
            ``Environment(sanitize=True)`` to force the sanitizer).
    """
    if load <= 0.0:
        raise ValueError("load must be positive")
    if duration_slots <= 0.0:
        raise ValueError("duration must be positive")
    count = scene.station_count
    schedule = scene.schedule()
    offsets = scene.clock_offsets
    airtime = scene.packet_airtime
    guard = guard_fraction * scene.slot_time
    horizon = duration_slots * scene.slot_time

    # Pre-draw all arrivals in one vectorised pass: per-station Poisson
    # counts, then uniform times, grouped by station and time-sorted.
    rng = RandomStreams(traffic_seed).stream("metro-traffic")
    arrivals_per_station = rng.poisson(load * duration_slots, count)
    offered = int(arrivals_per_station.sum())
    stations_of = np.repeat(np.arange(count, dtype=np.intp), arrivals_per_station)
    times = rng.uniform(0.0, horizon, offered)
    order = np.lexsort((times, stations_of))
    stations_of = stations_of[order]
    times = times[order]

    # Serialize each station's backlog through the joint-window search:
    # a packet starts no earlier than its arrival and no earlier than
    # the end of the station's previous burst.
    next_free = np.zeros(count)
    starts = []
    sources = []
    unscheduled = 0
    for position in range(offered):
        station = int(stations_of[position])
        earliest = max(float(times[position]), float(next_free[station]))
        start = _first_joint_start(
            schedule,
            float(offsets[station]),
            float(offsets[scene.nearest[station]]),
            earliest,
            airtime,
            guard,
            deadline=horizon,
        )
        if start >= horizon:
            unscheduled += 1
            continue
        next_free[station] = start + airtime
        starts.append(start)
        sources.append(station)

    transmit_order = np.lexsort((np.asarray(sources), np.asarray(starts)))

    env = env or Environment()
    banks = [DespreaderBank(capacity=despreader_channels) for _ in range(count)]
    medium = Medium(
        env=env,
        gains=scene.gain_field,
        thermal_noise_w=scene.thermal_noise_w,
        sir_thresholds=np.full(count, scene.sir_threshold),
        listen_query=lambda station, now: schedule.is_receiving_at(
            now + offsets[station]
        ),
        channel_query=lambda station: banks[station],
        resync_events=resync_events,
    )

    max_bound = 0.0

    def driver():
        nonlocal max_bound
        for position in transmit_order:
            index = int(position)
            start = float(starts[index])
            source = sources[index]
            destination = int(scene.nearest[source])
            if start > env.now:
                yield env.timeout(start - env.now)
            medium.transmit(
                source,
                destination,
                Packet(
                    source=source,
                    destination=destination,
                    size_bits=scene.packet_size_bits,
                    created_at=env.now,
                ),
                float(scene.powers[source]),
                airtime,
            )
            bound = medium.field_error_bound_w()
            if bound > max_bound:
                max_bound = bound

    env.process(driver())
    env.run(until=None)

    return MetroRunResult(
        stations=count,
        duration_slots=duration_slots,
        offered_packets=offered,
        transmitted=len(starts),
        unscheduled=unscheduled,
        deliveries=medium.deliveries,
        losses_total=len(medium.losses),
        losses_by_reason=medium.loss_counts_by_reason(),
        events=env.events_processed,
        max_field_error_bound_w=max_bound,
        digest=env.replay_digest() if env.sanitizing else None,
    )
