"""Integration tests for the ablation experiments (small parameters)."""

import pytest

from repro.experiments import get_experiment


class TestA1GuardJitter:
    @pytest.fixture(scope="class")
    def report(self):
        # Keep the committed default parameterisation: the zero-loss
        # corner is a statistical statement about tail clock-model
        # errors, verified at these exact parameters.
        return get_experiment("A1")(
            rendezvous_counts=(2, 8),
            guard_fractions=(0.0, 0.1),
        )

    def test_sloppy_corner_loses(self, report):
        assert report.claims["losses with 2 exchanges, guard 0.0"][1] > 0

    def test_robust_corner_lossless(self, report):
        assert report.claims["losses with 8 exchanges, guard 0.1"][1] == 0

    def test_robustness_also_buys_throughput(self, report):
        assert (
            report.claims[
                "robust corner also delivers more (ratio best/worst)"
            ][1]
            > 1.0
        )


class TestA2DespreaderSizing:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("A2")(
            channel_counts=(1, 6), station_count=20, duration_slots=250
        )

    def test_single_channel_overflows(self, report):
        assert report.claims["Type 2 losses with 1 channel(s)"][1] > 0

    def test_enough_channels_eliminate_type2(self, report):
        assert report.claims["Type 2 losses with 6 channels"][1] == 0

    def test_gateway_tracks_parallel_receptions(self, report):
        six_channel_row = next(r for r in report.rows if r[0] == 6)
        assert six_channel_row[2] >= 2  # peak busy beyond one channel


class TestA3CourtesyRate:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("A3")(station_counts=(25,), duration_slots=150)

    def test_rate_gain(self, report):
        assert (
            report.claims["design-rate gain from the courtesy (ratio on/off)"][1]
            > 1.0
        )

    def test_both_variants_lossless(self, report):
        loss_rows = [row[5] for row in report.rows]
        assert all(losses == 0 for losses in loss_rows)


class TestA5FixedRatePenalty:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("A5")(station_count=60, seeds=(109,))

    def test_fixed_rate_leaves_capacity(self, report):
        assert (
            report.claims["aggregate capacity left on the table (uniform)"][1] > 1.0
        )

    def test_clustering_worsens_penalty(self, report):
        assert (
            report.claims[
                "penalty grows with density variation (clustered / uniform)"
            ][1]
            > 1.0
        )

    def test_fixed_rate_is_minimum_achievable(self, report):
        for row in report.rows:
            _label, fixed, median, best, _penalty = row
            assert fixed <= median <= best


class TestA6SpatialReuse:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("A6")(station_count=25, duration_slots=200)

    def test_structured_schemes_reuse_space(self, report):
        shepard, tdma = report.claims[
            "both structured schemes exceed single-channel use (concurrency > 1)"
        ][1]
        assert shepard > 1.0
        assert tdma > 1.0

    def test_scheme_beats_tdma_throughput(self, report):
        assert (
            report.claims["scheme outdelivers TDMA at equal physics (ratio)"][1]
            > 1.0
        )

    def test_tdma_also_loss_free(self, report):
        tdma_row = next(r for r in report.rows if r[0] == "tdma")
        assert tdma_row[4] == 0

    def test_aloha_loses(self, report):
        aloha_row = next(r for r in report.rows if r[0] == "aloha")
        assert aloha_row[4] > 0


class TestA4TargetSirPolicy:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("A4")()

    def test_adaptive_saves_power(self, report):
        assert (
            report.claims["radiated-power saving (constant / adaptive)"][1] > 1.0
        )

    def test_adaptive_never_under_delivers(self, report):
        assert report.claims["adaptive rule still clears every threshold"][1] >= 1.0

    def test_constant_rule_over_delivers_somewhere(self, report):
        constant_row = next(r for r in report.rows if "constant" in r[0])
        assert constant_row[3] > 2.0  # max over-delivery factor
