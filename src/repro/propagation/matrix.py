"""The propagation matrix H (power-gain form) and its estimation.

Section 3.2 collects all pairwise propagation into the matrix ``H`` of
amplitude gains ``h_ij``; after the Section 3.3 simplification these are
scalars and the power-domain quantity ``g_ij = h_ij^2`` is what both the
reception criterion (Eq. 6) and minimum-energy routing (Section 6.2)
consume.  This module builds the power-gain matrix from a placement and
a propagation model, and models the paper's observation that "stations
may observe the actual propagation between stations that are capable of
direct communication": :meth:`PropagationMatrix.observed` returns a
noisy, threshold-censored estimate such as real stations would have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.propagation.geometry import Placement
from repro.propagation.models import PropagationModel

__all__ = ["PropagationMatrix"]


@dataclass(frozen=True)
class PropagationMatrix:
    """Symmetric matrix of pairwise power gains, zero diagonal.

    Attributes:
        gains: ``(M, M)`` array, ``gains[i, j]`` = power gain from
            station j's transmitter to station i's receiver.
    """

    gains: np.ndarray
    #: Lazily built transposed contiguous copy backing :meth:`column`;
    #: pure cache, excluded from equality.
    _columns: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Per-threshold cache of per-station neighbor arrays backing
    #: :meth:`neighbors`/:meth:`neighbor_lists`; pure cache, excluded
    #: from equality.
    _neighbor_cache: Dict[float, List[np.ndarray]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        gains = np.asarray(self.gains, dtype=float)
        if gains.ndim != 2 or gains.shape[0] != gains.shape[1]:
            raise ValueError("gain matrix must be square")
        if np.any(gains < 0.0):
            raise ValueError("power gains must be non-negative")
        if np.any(np.diagonal(gains) != 0.0):
            raise ValueError("diagonal (self-gain) must be zero")
        object.__setattr__(self, "gains", gains)

    @classmethod
    def from_placement(
        cls, placement: Placement, model: PropagationModel
    ) -> "PropagationMatrix":
        """Build the matrix for a placement under a propagation model."""
        return cls(model.gain_matrix(placement.distances()))

    @property
    def count(self) -> int:
        """Number of stations M."""
        return int(self.gains.shape[0])

    def gain(self, receiver: int, transmitter: int) -> float:
        """Power gain from ``transmitter`` to ``receiver``."""
        if receiver == transmitter:
            raise ValueError("self-gain is undefined; Type 3 is handled locally")
        return float(self.gains[receiver, transmitter])

    def amplitude(self, receiver: int, transmitter: int) -> float:
        """The paper's ``h_ij`` (amplitude gain)."""
        return float(np.sqrt(self.gain(receiver, transmitter)))

    def received_powers(self, transmit_powers: np.ndarray) -> np.ndarray:
        """Received power at every station given all transmit powers.

        Implements Eq. 2 in the power domain: station i receives
        ``sum_j g_ij P_j`` (self term excluded by the zero diagonal).
        """
        powers = np.asarray(transmit_powers, dtype=float)
        if powers.shape != (self.count,):
            raise ValueError(f"expected {self.count} transmit powers")
        if np.any(powers < 0.0):
            raise ValueError("transmit powers must be non-negative")
        return self.gains @ powers

    def column(self, transmitter: int) -> np.ndarray:
        """Gain from ``transmitter`` into every receiver: ``gains[:, j]``.

        This is the axpy vector of the incremental interference field
        (one transmission's contribution to every receiver).  Columns
        of a C-contiguous matrix stride across rows, so the first call
        caches a transposed contiguous copy and returns its rows —
        contiguous views, no per-call allocation.
        """
        if not 0 <= transmitter < self.count:
            raise ValueError("transmitter index out of range")
        if self._columns is None:
            object.__setattr__(
                self, "_columns", np.ascontiguousarray(self.gains.T)
            )
        assert self._columns is not None
        return self._columns[transmitter]

    def usable_links(self, min_gain: float) -> np.ndarray:
        """Boolean adjacency of links with gain at least ``min_gain``.

        "Stations may observe the actual propagation between stations
        that are capable of direct communication" — links below the
        usability threshold are simply not part of a station's world.
        """
        if min_gain <= 0.0:
            raise ValueError("minimum gain must be positive")
        usable = self.gains >= min_gain
        np.fill_diagonal(usable, False)
        return usable

    def neighbors(self, station: int, min_gain: float) -> np.ndarray:
        """Stations with a usable link to ``station``.

        Reads one cached per-station array (built lazily per threshold
        by :meth:`neighbor_lists`) instead of re-deriving the full
        M x M adjacency on every call, which routing's repeated
        column slicing used to pay for.
        """
        if not 0 <= station < self.count:
            raise ValueError("station index out of range")
        return self.neighbor_lists(min_gain)[station]

    def neighbor_lists(self, min_gain: float) -> List[np.ndarray]:
        """Per-station neighbor arrays at a usability threshold, cached.

        One O(M^2) pass builds every station's sorted neighbor array;
        subsequent queries at the same threshold are O(1) lookups.  The
        returned arrays are shared cache state — treat them as
        read-only.
        """
        if min_gain <= 0.0:
            raise ValueError("minimum gain must be positive")
        key = float(min_gain)
        cached = self._neighbor_cache.get(key)
        if cached is None:
            cached = []
            for station in range(self.count):
                row = self.gains[station] >= key
                row[station] = False
                cached.append(np.nonzero(row)[0])
            self._neighbor_cache[key] = cached
        return cached

    def to_sparse(
        self,
        cull_gain: float = 0.0,
        horizon_m: Optional[float] = None,
        distances: Optional[np.ndarray] = None,
    ):
        """CSR form of this matrix for the sparse medium.

        Entries below ``cull_gain`` are dropped but accounted (the
        bounded-error machinery of
        :class:`repro.propagation.sparse.SparseGainField`); with the
        default threshold of 0.0 the conversion is lossless and the
        sparse medium is bit-identical to the dense one.
        """
        from repro.propagation.sparse import SparseGainField

        return SparseGainField.from_dense(
            self.gains,
            cull_gain=cull_gain,
            horizon_m=horizon_m,
            distances=distances,
        )

    def observed(
        self,
        measurement_sigma_db: float = 0.0,
        min_gain: float = 0.0,
        seed: Optional[int] = None,
    ) -> "PropagationMatrix":
        """A station's-eye view of the matrix: noisy and censored.

        Args:
            measurement_sigma_db: log-normal measurement error applied
                symmetrically (a link is measured once, both ends agree).
            min_gain: gains below this are unobservable and reported as
                zero (the stations cannot hear each other to measure).
            seed: RNG seed for reproducible noise.
        """
        if measurement_sigma_db < 0.0:
            raise ValueError("measurement spread must be non-negative")
        if min_gain < 0.0:
            raise ValueError("minimum gain must be non-negative")
        gains = self.gains.copy()
        if measurement_sigma_db > 0.0:
            rng = np.random.default_rng(seed)
            error_db = rng.normal(0.0, measurement_sigma_db, gains.shape)
            error_db = np.triu(error_db, k=1)
            error_db = error_db + error_db.T
            gains = gains * 10.0 ** (error_db / 10.0)
        if min_gain > 0.0:
            gains[gains < min_gain] = 0.0
        np.fill_diagonal(gains, 0.0)
        return PropagationMatrix(gains)
