"""reproflow — whole-program static analysis for the repro codebase.

Where :mod:`tools.reprolint` is a per-file AST lint (each rule sees one
module at a time), reproflow parses the *entire* ``src/repro`` package
once into a project-wide symbol table plus import- and call-graph, and
runs four interprocedural passes over it:

==========  ==============================================================
Pass        What it proves
==========  ==============================================================
seeds       Seed provenance: every ``random.Random`` / numpy-RNG
            construction traces back to an approved root (the seed tree,
            an experiment ``seed`` parameter, or the named streams) —
            across assignment chains, function returns, and call sites.
schema      Event-schema contracts: every ``instr.emit(<Event>(...))``
            call site matches the frozen dataclass in ``obs/events.py``,
            the ``EVENT_TYPES`` registry is complete, and the committed
            ``schema.lock`` fingerprint matches (changing an event's
            fields without bumping its ``kind/vN`` id fails).
fork        Fork-safety: no function reachable from the parallel task
            entry points writes module-level mutable state that would
            diverge between spawn workers — the jobs-invariance witness,
            proved statically instead of only by digest comparison.
api         API-surface lock: the public surface (``__all__`` names,
            signatures, deprecations) matches the committed ``api.lock``,
            so accidental facade breaks are caught at lint time.
==========  ==============================================================

Run as ``python -m tools.reproflow`` (or ``repro lint --deep``).
Regenerate the lock files after an intentional change with
``python -m tools.reproflow --write-locks``.  Suppress a single finding
with an inline ``# reproflow: disable=<pass>`` comment on the flagged
line, or baseline it with a one-line justification in
``tools/reproflow/baseline.json``; unused suppressions and baseline
entries are themselves reported.
"""

from tools.reproflow.findings import Finding
from tools.reproflow.project import ModuleInfo, Project, load_project
from tools.reproflow.runner import ReproflowConfig, analyze, main

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "ReproflowConfig",
    "analyze",
    "load_project",
    "main",
]
