"""Instrumentation must be non-perturbing: replay digests are
bit-identical with every sink attached or none at all.

This is the zero-cost-when-disabled guarantee from the observability
redesign, checked the strongest way available: the engine's sanitized
replay digest hashes every event execution (time, priority, process),
so any instrumentation code path that touched the wheel or an RNG
would change it.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.simsetup import add_uniform_poisson, standard_network
from repro.net.network import NetworkConfig
from repro.obs import (
    BinarySink,
    Instrumentation,
    JsonlSink,
    MemorySink,
    MetricTimelines,
    read_binary,
    read_jsonl,
)
from repro.sim.sanitizer import sanitized


def digest_of(seed, load, duration_slots, instrumentation):
    with sanitized(True):
        network = standard_network(
            12,
            seed,
            NetworkConfig(seed=seed),
            trace=False,
            instrumentation=instrumentation,
        )
        add_uniform_poisson(network, load, seed + 1)
        network.run(duration_slots * network.budget.slot_time)
        return network.env.replay_digest()


class TestDigestInvariance:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(1, 10**6),
        load=st.sampled_from([0.02, 0.08, 0.2]),
        duration=st.sampled_from([40.0, 90.0]),
    )
    def test_sinks_do_not_perturb_the_run(self, seed, load, duration):
        bare = digest_of(seed, load, duration, None)
        instrumented = digest_of(
            seed,
            load,
            duration,
            Instrumentation((MemorySink(), MetricTimelines(station_count=12))),
        )
        assert instrumented == bare

    def test_disabled_facade_matches_no_facade(self):
        bare = digest_of(5, 0.1, 60.0, None)
        disabled = digest_of(
            5, 0.1, 60.0, Instrumentation((MemorySink(),), enabled=False)
        )
        assert disabled == bare


class TestFileSinksMatchTheRun:
    def test_jsonl_and_binary_decode_to_the_same_sequence(self, tmp_path):
        jsonl_path = str(tmp_path / "run.jsonl")
        binary_path = str(tmp_path / "run.npz")
        memory = MemorySink()
        instrumentation = Instrumentation(
            (memory, JsonlSink(jsonl_path), BinarySink(binary_path))
        )
        digest = digest_of(9, 0.1, 60.0, instrumentation)
        instrumentation.close()

        assert digest == digest_of(9, 0.1, 60.0, None)

        live = memory.events()
        assert live, "the run must have emitted events"
        from_jsonl = read_jsonl(jsonl_path)
        from_binary = read_binary(binary_path)
        assert len(from_jsonl) == len(live) == len(from_binary)
        for a, b, c in zip(live, from_jsonl, from_binary):
            assert type(a) is type(b) is type(c)
            assert a.time == b.time == c.time
            for key, value in a.payload().items():
                got_j, got_b = getattr(b, key), getattr(c, key)
                if isinstance(value, float) and math.isnan(value):
                    assert math.isnan(got_j) and math.isnan(got_b)
                else:
                    assert value == got_j == got_b
