"""Tests for the min-hop routing baseline."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.propagation.geometry import uniform_disk
from repro.propagation.matrix import PropagationMatrix
from repro.propagation.models import FreeSpace
from repro.routing.min_hop import hop_costs, min_hop_tables
from repro.routing.table import trace_route


def usable_threshold(matrix):
    return float(np.percentile(matrix.gains[matrix.gains > 0], 60))


def random_matrix(count=20, seed=0):
    placement = uniform_disk(count, radius=100.0, seed=seed)
    return PropagationMatrix.from_placement(
        placement, FreeSpace(near_field_clamp=1e-6)
    )


class TestHopCosts:
    def test_unit_costs(self):
        matrix = random_matrix(8, seed=1)
        threshold = usable_threshold(matrix)
        costs = hop_costs(matrix, threshold)
        usable = matrix.gains >= threshold
        np.fill_diagonal(usable, False)
        assert np.all(costs[usable] == 1.0)
        assert np.all(np.isinf(costs[~usable]))

    def test_requires_threshold(self):
        with pytest.raises(ValueError):
            hop_costs(random_matrix(5), 0.0)


class TestMinHopTables:
    def test_depths_match_networkx(self):
        matrix = random_matrix(20, seed=2)
        threshold = usable_threshold(matrix)
        tables = min_hop_tables(matrix, threshold)
        graph = nx.Graph()
        graph.add_nodes_from(range(20))
        usable = matrix.gains >= threshold
        for i in range(20):
            for j in range(i + 1, 20):
                if usable[i, j]:
                    graph.add_edge(i, j)
        lengths = dict(nx.all_pairs_shortest_path_length(graph))
        for source in range(20):
            for destination in range(20):
                if source == destination:
                    continue
                expected = lengths[source].get(destination)
                if expected is None:
                    assert not tables[source].has_route(destination)
                else:
                    assert tables[source].cost(destination) == expected

    def test_routes_are_followable(self):
        matrix = random_matrix(15, seed=3)
        threshold = usable_threshold(matrix)
        tables = min_hop_tables(matrix, threshold)
        for source in range(15):
            for destination in range(15):
                if source != destination and tables[source].has_route(destination):
                    path = trace_route(tables, source, destination)
                    assert len(path) - 1 == tables[source].cost(destination)
