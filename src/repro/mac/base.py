"""The MAC-protocol interface: pluggable station behaviour.

Every channel access scheme in this repository — the paper's
schedule-based scheme and the classical baselines it displaces — is a
:class:`MacProtocol`: an object bound to one station that provides

* the station's transmit behaviour, as a simulation process
  (:meth:`run`), and
* the station's listening state (:meth:`is_listening`), which the
  medium consults when a transmission addressed to the station begins.

Everything else (queues, routing, forwarding, the physical layer) is
shared, so protocol comparisons differ *only* in channel access.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.sim.process import ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.station import Station

__all__ = ["MacProtocol"]


class MacProtocol(ABC):
    """Base class for channel access behaviours."""

    #: Human-readable protocol name, used in experiment report rows.
    name: str = "abstract"

    #: Whether this MAC plans transmissions from neighbour schedule
    #: state that a §7.1 re-convergence invalidates.  When True,
    #: :meth:`repro.net.network.Network.reconverge` interrupts and
    #: respawns the MAC process (unless mid-burst) so stale candidate
    #: windows are re-derived; contention MACs hold no such state and
    #: must not be kicked (an interrupt would orphan a popped packet).
    replan_on_reconverge: bool = False

    def __init__(self) -> None:
        self._station: "Station | None" = None

    @property
    def station(self) -> "Station":
        """The station this protocol instance is bound to."""
        if self._station is None:
            raise RuntimeError("protocol is not bound to a station yet")
        return self._station

    def bind(self, station: "Station") -> None:
        """Attach this protocol instance to its station (once)."""
        if self._station is not None:
            raise RuntimeError("protocol already bound")
        self._station = station

    @abstractmethod
    def run(self) -> ProcessGenerator:
        """The station's transmit loop (a simulation process)."""

    @abstractmethod
    def is_listening(self, now: float) -> bool:
        """Whether the station will lock onto a transmission addressed
        to it that begins at ``now``."""

    def on_control(self, tx) -> None:
        """Handle a received MAC-level control frame (default: ignore).

        ``tx`` is the :class:`~repro.net.medium.Transmission` carrying
        the frame; the frame itself is ``tx.packet``.
        """

