"""The seed tree: stable, path-keyed, process-independent seeds."""

import subprocess
import sys

import pytest

from repro.parallel.seedtree import SeedTree, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "T7", 0, 2) == derive_seed(7, "T7", 0, 2)

    def test_root_matters(self):
        assert derive_seed(7, "T7") != derive_seed(8, "T7")

    def test_path_matters(self):
        assert derive_seed(7, "T7", 0) != derive_seed(7, "T7", 1)
        assert derive_seed(7, "T2") != derive_seed(7, "T7")

    def test_order_sensitive(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_prefix_stable(self):
        # Extending a path never changes the seeds of its siblings.
        before = derive_seed(3, "exp", 0)
        derive_seed(3, "exp", 0, "deeper", 5)
        assert derive_seed(3, "exp", 0) == before

    def test_63_bit_range(self):
        for path in (("x",), (0,), (1.5,), ("a", 2, 0.25)):
            seed = derive_seed(12345, *path)
            assert 0 <= seed < 2**63

    def test_float_labels_by_bits(self):
        assert derive_seed(0, 0.1) != derive_seed(0, 0.2)
        # A float and the int it equals are distinct labels.
        assert derive_seed(0, 1.0) != derive_seed(0, 1)
        # And distinct from the string that formats the same.
        assert derive_seed(0, 0.25) != derive_seed(0, "0.25")

    def test_rejects_bool_and_other_types(self):
        with pytest.raises(TypeError):
            derive_seed(0, True)
        with pytest.raises(TypeError):
            derive_seed(0, None)
        with pytest.raises(TypeError):
            derive_seed(0, (1, 2))

    def test_identical_across_interpreters(self):
        # The whole point: no PYTHONHASHSEED dependence.  A fresh
        # interpreter (different hash salt) derives the same seed.
        expected = derive_seed(42, "T7", 3, 0.1)
        script = (
            "from repro.parallel.seedtree import derive_seed;"
            "print(derive_seed(42, 'T7', 3, 0.1))"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert int(output) == expected


class TestSeedTree:
    def test_child_matches_full_path(self):
        tree = SeedTree(7)
        assert tree.child("T7").seed(0, 2) == tree.seed("T7", 0, 2)
        assert tree.child("T7", 0).seed(2) == derive_seed(7, "T7", 0, 2)

    def test_root_and_path_properties(self):
        node = SeedTree(5, "a", 1)
        assert node.root == 5
        assert node.path == ("a", 1)

    def test_repr_mentions_root_and_path(self):
        assert "root=5" in repr(SeedTree(5, "a"))
