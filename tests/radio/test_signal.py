"""Tests for decibel arithmetic and the Signal value object."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.radio.signal import (
    Signal,
    add_powers_db,
    combine_powers,
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    power_rise_db,
    watts_to_dbm,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == 1.0

    def test_ten_db_is_factor_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_minus_three_db_is_half(self):
        assert db_to_linear(-3.0103) == pytest.approx(0.5, rel=1e-4)

    def test_linear_to_db_of_hundred(self):
        assert linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    @given(st.floats(min_value=-120.0, max_value=120.0))
    def test_roundtrip(self, value_db):
        assert linear_to_db(db_to_linear(value_db)) == pytest.approx(
            value_db, abs=1e-9
        )

    def test_dbm_zero_is_one_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_to_dbm_roundtrip(self):
        assert watts_to_dbm(dbm_to_watts(17.0)) == pytest.approx(17.0)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)


class TestPowerCombination:
    def test_combine_sums(self):
        assert combine_powers([1.0, 2.0, 3.0]) == 6.0

    def test_combine_empty_is_zero(self):
        assert combine_powers([]) == 0.0

    def test_combine_rejects_negative(self):
        with pytest.raises(ValueError):
            combine_powers([1.0, -0.5])

    def test_paper_example_20_plus_10_db(self):
        # Section 7.3: 20 dB + 10 dB = 20.4 dB, "barely significant".
        assert add_powers_db(20.0, 10.0) == pytest.approx(20.414, abs=1e-3)

    def test_add_powers_db_equal_signals_gain_3db(self):
        assert add_powers_db(10.0, 10.0) == pytest.approx(13.0103, abs=1e-3)

    def test_add_powers_db_requires_input(self):
        with pytest.raises(ValueError):
            add_powers_db()

    def test_one_db_rise_needs_quarter_power(self):
        # Section 7.3: a 1 dB rise requires the addition to be at least
        # about one fourth of the existing power.
        assert power_rise_db(1.0, 0.259) == pytest.approx(1.0, abs=0.01)

    def test_tiny_addition_is_insignificant(self):
        assert power_rise_db(1.0, 0.01) < 0.05

    def test_power_rise_rejects_zero_base(self):
        with pytest.raises(ValueError):
            power_rise_db(0.0, 1.0)

    @given(
        st.floats(min_value=1e-6, max_value=1e6),
        st.floats(min_value=0.0, max_value=1e6),
    )
    def test_power_rise_nonnegative(self, base, addition):
        assert power_rise_db(base, addition) >= 0.0


class TestSignal:
    def test_attenuated_scales_power(self):
        signal = Signal(power_w=2.0, bandwidth_hz=1e6)
        assert signal.attenuated(0.25).power_w == 0.5

    def test_attenuated_keeps_bandwidth(self):
        signal = Signal(power_w=2.0, bandwidth_hz=1e6)
        assert signal.attenuated(0.25).bandwidth_hz == 1e6

    def test_scaled_db(self):
        signal = Signal(power_w=1.0, bandwidth_hz=1e6)
        assert signal.scaled_db(-20.0).power_w == pytest.approx(0.01)

    def test_power_dbm(self):
        assert Signal(1.0, 1e6).power_dbm == pytest.approx(30.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            Signal(power_w=-1.0, bandwidth_hz=1e6)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            Signal(power_w=1.0, bandwidth_hz=0.0)

    def test_rejects_negative_gain(self):
        with pytest.raises(ValueError):
            Signal(1.0, 1e6).attenuated(-0.1)
