#!/usr/bin/env python
"""Long-haul operation: imperfect clocks, drift, and online rendezvous.

The paper's scheme rests on each station predicting its neighbours'
schedules from fitted clock models (Section 7).  Over a long run, the
residual error of the fitted clock *rate* grows without bound — so a
deployment needs the maintenance loop the paper sketches: stations
"occasionally rendezvous and exchange clock readings".

This example runs the same 15-station network three ways, with
deliberately poor oscillators (200 ppm) and noisy clock exchanges:

1. pre-run rendezvous only — the models go stale and hops start
   missing their windows;
2. with a periodic online refresh — operation stays (near-)lossless;
3. refresh plus propagation-delay compensation (Section 3.3's remark),
   the full long-haul configuration.

Run::

    python examples/long_haul_operation.py
"""

import repro
from repro.experiments.simsetup import standard_network
from repro.net import NetworkConfig
from repro.obs import Instrumentation, MetricTimelines


def run_variant(label, slot, refresh, model_delay):
    config = NetworkConfig(
        seed=7,
        rendezvous_jitter=0.02 * slot,
        rendezvous_count=4,
        guard_fraction=0.05,
        clock_rate_error_ppm=200.0,
        rendezvous_refresh_slots=refresh,
        model_propagation_delay=model_delay,
    )
    timelines = MetricTimelines(station_count=15)
    outcome = repro.simulate(
        repro.Scenario(
            station_count=15,
            load_packets_per_slot=0.04,
            duration_slots=1500,
            config=config,
        ),
        seed=7,
        instrumentation=Instrumentation((timelines,)),
    )
    missed = timelines.losses_by_reason().get("not_listening", 0)
    print(
        f"  {label:<38s} losses {timelines.losses_total:4d} "
        f"(missed windows {missed:4d}), hop deliveries {timelines.hop_deliveries}"
    )
    return outcome.result


def main() -> None:
    slot = standard_network(15, 7, NetworkConfig(seed=7), trace=False).budget.slot_time
    print(
        "15 stations, 1500 slots, 200 ppm oscillators, 0.02-slot exchange "
        "jitter\n"
    )
    stale = run_variant("pre-run rendezvous only", slot, None, False)
    fresh = run_variant("+ online refresh every 100 slots", slot, 100.0, False)
    full = run_variant("+ refresh + delay compensation", slot, 100.0, True)

    print()
    improvement = stale.losses_total / max(fresh.losses_total, 1)
    print(
        f"Online rendezvous reduced losses {improvement:.0f}x "
        f"({stale.losses_total} -> {fresh.losses_total}); with delay "
        f"compensation the full configuration lost {full.losses_total}."
    )
    print(
        "\nThe failure mode is specific: every stale-model loss is a "
        "'not_listening' record — a burst that arrived outside the "
        "receiver's true window.  No SIR or Type 2/3 losses occur; the "
        "scheme degrades only through clock-model error, exactly where "
        "Section 7 says maintenance must happen."
    )


if __name__ == "__main__":
    main()
