"""Distributed distance-vector route computation.

Section 6.2 (footnote 11) points at "the Distributed Asynchronous
Bellman-Ford Algorithm" as the way stations would actually compute
minimum-energy routes: each station repeatedly tells its neighbours its
current cost-to-destination vector, and each updates
``cost(d) = min over neighbours n of (link_cost(n) + n's cost(d))``.

Two implementations are provided:

* :func:`synchronous_rounds` — the textbook round-based iteration,
  convenient for tests (converges in at most diameter rounds);
* :class:`DistributedBellmanFord` — an event-driven version where each
  station holds only local state and processes neighbour advertisements
  one at a time in an arbitrary (seeded) order, demonstrating that the
  computation needs no global coordination, matching the paper's
  decentralisation requirement.

Both agree with the centralised Dijkstra result (a test asserts it).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.routing.table import RoutingTable

__all__ = ["synchronous_rounds", "DistributedBellmanFord"]


def _neighbors(costs: np.ndarray, station: int) -> List[int]:
    return [
        int(v) for v in np.nonzero(np.isfinite(costs[station]))[0] if v != station
    ]


def synchronous_rounds(
    costs: np.ndarray, max_rounds: Optional[int] = None
) -> Tuple[Dict[int, RoutingTable], int]:
    """Round-synchronous distance-vector iteration to a fixed point.

    Returns ``(tables, rounds_used)``.  Raises ``RuntimeError`` if no
    fixed point is reached within ``max_rounds`` (default: station
    count, the Bellman-Ford bound).
    """
    costs = np.asarray(costs, dtype=float)
    count = costs.shape[0]
    if costs.ndim != 2 or costs.shape[1] != count:
        raise ValueError("cost matrix must be square")
    limit = max_rounds if max_rounds is not None else count
    # distance[i, d]: station i's current estimate to destination d.
    distance = np.full((count, count), math.inf)
    next_hop = np.full((count, count), -1, dtype=int)
    np.fill_diagonal(distance, 0.0)

    for round_index in range(1, limit + 1):
        changed = False
        # Every station consults every neighbour's previous-round vector.
        previous = distance.copy()
        for station in range(count):
            for neighbor in _neighbors(costs, station):
                candidate = costs[station, neighbor] + previous[neighbor]
                better = candidate < distance[station] - 1e-15
                if np.any(better):
                    distance[station][better] = candidate[better]
                    next_hop[station][better] = neighbor
                    changed = True
        if not changed:
            return _to_tables(distance, next_hop), round_index
    raise RuntimeError(f"no fixed point within {limit} rounds")


def _to_tables(
    distance: np.ndarray, next_hop: np.ndarray
) -> Dict[int, RoutingTable]:
    count = distance.shape[0]
    tables: Dict[int, RoutingTable] = {}
    for station in range(count):
        table = RoutingTable(station)
        for destination in range(count):
            if destination == station:
                continue
            if math.isfinite(distance[station, destination]):
                table.set_route(
                    destination,
                    int(next_hop[station, destination]),
                    float(distance[station, destination]),
                )
        tables[station] = table
    return tables


class DistributedBellmanFord:
    """Asynchronous, message-driven distance-vector computation.

    Each station holds a distance vector and advertises it to its
    neighbours whenever it improves; advertisements are queued and
    processed one at a time.  With a seeded shuffle of the queue, the
    convergence result is order-independent (the fixed point is unique
    for positive link costs), demonstrating the algorithm's tolerance of
    asynchrony.

    Args:
        costs: link-cost matrix (+inf for unusable links).
        rng: optional generator used to randomise message ordering.
    """

    def __init__(
        self, costs: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> None:
        costs = np.asarray(costs, dtype=float)
        count = costs.shape[0]
        if costs.ndim != 2 or costs.shape[1] != count:
            raise ValueError("cost matrix must be square")
        finite = costs[np.isfinite(costs)]
        if np.any(finite <= 0.0):
            raise ValueError("link costs must be positive")
        self.costs = costs
        self.count = count
        self.rng = rng
        self.distance = np.full((count, count), math.inf)
        self.next_hop = np.full((count, count), -1, dtype=int)
        np.fill_diagonal(self.distance, 0.0)
        self.messages_processed = 0
        # Seed the queue: every station advertises its trivial vector.
        self._queue: deque = deque(
            (station, neighbor)
            for station in range(count)
            for neighbor in _neighbors(costs, station)
        )

    def _process(self, advertiser: int, listener: int) -> None:
        """``listener`` absorbs ``advertiser``'s current vector."""
        link = self.costs[listener, advertiser]
        candidate = link + self.distance[advertiser]
        better = candidate < self.distance[listener] - 1e-15
        better[listener] = False
        if not np.any(better):
            return
        self.distance[listener][better] = candidate[better]
        self.next_hop[listener][better] = advertiser
        for neighbor in _neighbors(self.costs, listener):
            self._queue.append((listener, neighbor))

    def run(self, max_messages: Optional[int] = None) -> Dict[int, RoutingTable]:
        """Process advertisements until quiescence; returns the tables."""
        limit = max_messages if max_messages is not None else 100 * self.count**2
        while self._queue:
            if self.messages_processed >= limit:
                raise RuntimeError(f"no quiescence within {limit} messages")
            if self.rng is not None and len(self._queue) > 1:
                # Rotate by a random amount: cheap order randomisation.
                self._queue.rotate(int(self.rng.integers(len(self._queue))))
            advertiser, listener = self._queue.popleft()
            self.messages_processed += 1
            self._process(advertiser, listener)
        return _to_tables(self.distance, self.next_hop)
