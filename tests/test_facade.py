"""The repro.simulate one-call facade."""

import pytest

import repro
from repro.experiments.simsetup import add_uniform_poisson, standard_network
from repro.faults import StationCrash
from repro.net import HotspotTraffic, NetworkConfig
from repro.obs import Instrumentation, MetricTimelines
from repro.propagation import uniform_disk
from repro.sim.sanitizer import sanitized


SCENARIO = repro.Scenario(
    station_count=14, load_packets_per_slot=0.08, duration_slots=80.0
)


class TestSimulate:
    def test_exported_at_top_level(self):
        assert repro.simulate is not None
        assert repro.Scenario is not None
        assert repro.SimulationOutcome is not None

    def test_returns_a_finished_run(self):
        outcome = repro.simulate(SCENARIO, seed=3)
        assert outcome.result.originated > 0
        assert outcome.result.duration == pytest.approx(
            80.0 * outcome.network.budget.slot_time
        )
        assert outcome.injector is None

    def test_same_seed_same_digest(self):
        with sanitized(True):
            one = repro.simulate(SCENARIO, seed=3)
            two = repro.simulate(SCENARIO, seed=3)
            assert (
                one.network.env.replay_digest()
                == two.network.env.replay_digest()
            )

    def test_trace_true_enables_queries(self):
        outcome = repro.simulate(SCENARIO, seed=3, trace=True)
        assert outcome.instrumentation.count("tx_start") > 0
        assert outcome.instrumentation.of_kind("delivered")

    def test_instrumentation_sink_observes_the_run(self):
        timelines = MetricTimelines(station_count=14)
        outcome = repro.simulate(
            SCENARIO, seed=3, instrumentation=Instrumentation((timelines,))
        )
        assert timelines.transmissions == outcome.result.transmissions
        assert timelines.hop_deliveries == outcome.result.hop_deliveries
        assert (
            timelines.end_to_end_deliveries
            == outcome.result.delivered_end_to_end
        )

    def test_matches_legacy_pipeline_bit_exactly(self):
        """seed=N must reproduce the simsetup convention: placement
        seed N, traffic seed N+1, config seed N."""
        with sanitized(True):
            outcome = repro.simulate(
                repro.Scenario(
                    station_count=14,
                    load_packets_per_slot=0.08,
                    duration_slots=80.0,
                ),
                seed=9,
            )
            legacy = standard_network(
                14, 9, NetworkConfig(seed=9), trace=False
            )
            add_uniform_poisson(legacy, 0.08, 10)
            legacy.run(80.0 * legacy.budget.slot_time)
            assert (
                outcome.network.env.replay_digest()
                == legacy.env.replay_digest()
            )

    def test_faults_install_an_injector(self):
        outcome = repro.simulate(
            repro.Scenario(
                station_count=14,
                load_packets_per_slot=0.08,
                duration_slots=120.0,
            ),
            seed=3,
            faults=[StationCrash(station=2, at_slot=30.0,
                                 recover_after_slots=40.0)],
            trace=True,
        )
        assert outcome.injector is not None
        assert outcome.instrumentation.count("station_down") == 1
        assert outcome.instrumentation.count("fault_inject") == 1

    def test_custom_placement_and_traffic(self):
        placement = uniform_disk(10, radius=500.0, seed=21)
        installed = []

        def traffic(network, seed):
            installed.append(seed)
            for origin in range(1, network.station_count):
                network.add_traffic(
                    HotspotTraffic(
                        origin=origin,
                        rate=0.02 / network.budget.slot_time,
                        hotspot=0,
                        hotspot_fraction=1.0,
                        destinations=list(range(network.station_count)),
                        size_bits=network.config.packet_size_bits,
                        rng=repro.sim.RandomStreams(seed).stream("traffic"),
                    )
                )

        outcome = repro.simulate(
            repro.Scenario(
                placement=placement, traffic=traffic, duration_slots=60.0
            ),
            seed=21,
        )
        assert installed == [21]
        assert outcome.network.station_count == 10

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            repro.Scenario(station_count=1)
        with pytest.raises(ValueError):
            repro.Scenario(load_packets_per_slot=0.0)
        with pytest.raises(ValueError):
            repro.Scenario(duration_slots=0.0)
