"""Typed trace events: the observability layer's vocabulary.

Every observable occurrence in a run — a burst starting, a reception
failing with its SIR reason, a packet entering a queue, a fault being
injected — is one frozen dataclass here.  Each event type carries a
stable ``KIND`` tag (the wire name, identical to the strings the old
``TraceRecorder`` call sites used, so recorded histories stay
comparable across releases) and a ``SCHEMA`` version that is bumped
whenever the field set changes; together they form the
:attr:`TraceEvent.schema_id` that sinks persist.

Events are plain data: emitting one never touches the event wheel or
any random stream, which is what makes instrumentation non-perturbing
(replay digests are bit-identical with sinks on or off; the property
test in ``tests/obs`` enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Tuple, Type

from repro.sim.trace import TraceRecord

__all__ = [
    "TraceEvent",
    "TxStart",
    "TxEnd",
    "TxAbort",
    "TxOutcome",
    "RxLock",
    "RxOk",
    "RxFail",
    "Delivered",
    "QueueEnter",
    "QueueLeave",
    "QueueFlush",
    "SlotClaim",
    "SlotYield",
    "ControlSent",
    "Unreachable",
    "DropNoRoute",
    "DropOverflow",
    "DropStationDown",
    "StationDown",
    "StationUp",
    "FaultInject",
    "FaultRecover",
    "ChannelUpdate",
    "NeighborTurnover",
    "RendezvousReacquire",
    "ArqRetry",
    "ArqGiveUp",
    "TxPowerLevel",
    "SicCancel",
    "EVENT_TYPES",
    "event_from_payload",
]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base class of every typed trace event.

    Attributes:
        time: simulated time of the occurrence (always the first field,
            so sinks can treat it as the row key).
    """

    KIND = "event"
    SCHEMA = 1

    time: float

    @property
    def schema_id(self) -> str:
        """Stable ``kind/vN`` identifier of this event's field layout."""
        return f"{self.KIND}/v{self.SCHEMA}"

    def payload(self) -> Dict[str, Any]:
        """The event's fields minus ``time``, in declaration order."""
        return {
            f.name: getattr(self, f.name) for f in fields(self)[1:]
        }

    def to_record(self) -> TraceRecord:
        """Downgrade to the legacy :class:`TraceRecord` shape.

        Tuples become lists so the ``data`` dict is byte-identical to
        what the old string-kind ``trace.record`` call sites produced.
        """
        data = {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in self.payload().items()
        }
        return TraceRecord(self.time, self.KIND, data)


@dataclass(frozen=True, slots=True)
class TxStart(TraceEvent):
    """A transmission burst entered the air."""

    KIND = "tx_start"

    source: int
    destination: int
    power_w: float
    packet: int


@dataclass(frozen=True, slots=True)
class TxEnd(TraceEvent):
    """A transmission burst ran to completion and left the air."""

    KIND = "tx_end"

    source: int
    destination: int


@dataclass(frozen=True, slots=True)
class TxAbort(TraceEvent):
    """A burst was cut short mid-flight (its source crashed)."""

    KIND = "tx_abort"

    source: int
    destination: int


@dataclass(frozen=True, slots=True)
class TxOutcome(TraceEvent):
    """A station's transmit attempt finished, successfully or not.

    Emitted exactly where ``StationStats.sent`` increments, so counting
    these events reproduces the legacy ``transmissions`` total bit-for-
    bit (bursts still in flight at the run horizon, and bursts aborted
    by faults, appear in neither).
    """

    KIND = "tx_outcome"

    station: int
    next_hop: int
    ok: bool


@dataclass(frozen=True, slots=True)
class RxLock(TraceEvent):
    """A receiver's despreading channel locked onto a burst."""

    KIND = "rx_lock"

    receiver: int
    source: int
    channel: int


@dataclass(frozen=True, slots=True)
class RxOk(TraceEvent):
    """A reception satisfied the continuous SIR criterion end to end."""

    KIND = "rx_ok"

    receiver: int
    source: int
    min_sir: float
    packet: int


@dataclass(frozen=True, slots=True)
class RxFail(TraceEvent):
    """A hop was lost, with the Section 5 taxonomy attached.

    Attributes:
        reason: mechanical reason string (``"sir"``,
            ``"self_transmitting"``, ``"no_channel"``,
            ``"not_listening"``, ``"receiver_down"``, ``"source_down"``,
            ``"corrupted"``).
        types: sorted collision-type values responsible, when
            interference caused the loss.
        min_sir: worst SIR observed (NaN when never locked).
    """

    KIND = "rx_fail"

    receiver: int
    source: int
    reason: str
    types: Tuple[int, ...]
    packet: int
    min_sir: float


@dataclass(frozen=True, slots=True)
class Delivered(TraceEvent):
    """A packet reached its final destination."""

    KIND = "delivered"

    station: int
    packet: int
    delay: float
    hops: int
    energy_j: float


@dataclass(frozen=True, slots=True)
class QueueEnter(TraceEvent):
    """A packet was accepted into a station's transmit backlog.

    Attributes:
        origin: True when the packet originated here (first hop).
        control: True for MAC/network control frames.
        depth: total backlog depth after the enqueue.
        retry: True when the ARQ sublayer re-enqueued the packet after
            a failed attempt (v2; such enqueues are neither origins nor
            forwards, so counters must not double-count them).
    """

    KIND = "queue_enter"
    SCHEMA = 2

    station: int
    next_hop: int
    packet: int
    origin: bool
    control: bool
    depth: int
    retry: bool = False


@dataclass(frozen=True, slots=True)
class QueueLeave(TraceEvent):
    """A packet left a station's backlog for transmission."""

    KIND = "queue_leave"

    station: int
    next_hop: int
    packet: int
    depth: int


@dataclass(frozen=True, slots=True)
class QueueFlush(TraceEvent):
    """A station discarded its whole backlog at once.

    Attributes:
        reason: ``"station_down"`` (a fault crashed the station) or
            ``"unreachable"`` (every queued neighbour lacked schedule
            overlap).
        count: packets discarded.
    """

    KIND = "queue_flush"

    station: int
    reason: str
    count: int


@dataclass(frozen=True, slots=True)
class SlotClaim(TraceEvent):
    """The scheduled MAC committed to a transmit window."""

    KIND = "slot_claim"

    station: int
    next_hop: int
    start: float
    duration: float


@dataclass(frozen=True, slots=True)
class SlotYield(TraceEvent):
    """The scheduled MAC deferred: the next feasible window is later."""

    KIND = "slot_yield"

    station: int
    next_hop: int
    until: float


@dataclass(frozen=True, slots=True)
class ControlSent(TraceEvent):
    """A MAC-level control frame was sent (e.g. MACA's RTS/CTS)."""

    KIND = "control_sent"

    station: int
    peer: int
    frame: str


@dataclass(frozen=True, slots=True)
class Unreachable(TraceEvent):
    """A queued neighbour had no schedule overlap within the horizon."""

    KIND = "unreachable"

    station: int
    next_hop: int


@dataclass(frozen=True, slots=True)
class DropNoRoute(TraceEvent):
    """A packet was dropped for lack of a route to its destination."""

    KIND = "drop_no_route"

    station: int
    destination: int


@dataclass(frozen=True, slots=True)
class DropOverflow(TraceEvent):
    """A packet was rejected by a full transmit queue."""

    KIND = "drop_overflow"

    station: int
    next_hop: int


@dataclass(frozen=True, slots=True)
class DropStationDown(TraceEvent):
    """A packet was rejected because the station is down (faulted)."""

    KIND = "drop_station_down"

    station: int
    destination: int


@dataclass(frozen=True, slots=True)
class StationDown(TraceEvent):
    """A station crashed (fault lifecycle)."""

    KIND = "station_down"

    station: int


@dataclass(frozen=True, slots=True)
class StationUp(TraceEvent):
    """A crashed station recovered."""

    KIND = "station_up"

    station: int


@dataclass(frozen=True, slots=True)
class FaultInject(TraceEvent):
    """The fault injector applied a degradation.

    Attributes:
        fault: fault family (``"down"``, ``"fade"``, ``"clock_step"``,
            ``"corrupt"``).
        station: primary affected station (-1 when network-wide).
        peer: secondary station for link faults (-1 otherwise).
        value: fault magnitude (fade factor, step slots, probability).
    """

    KIND = "fault_inject"

    fault: str
    station: int = -1
    peer: int = -1
    value: float = 0.0


@dataclass(frozen=True, slots=True)
class FaultRecover(TraceEvent):
    """The fault injector applied a recovery action.

    Attributes:
        fault: the fault family being recovered from (``"down"``,
            ``"clock_step"``, ``"corrupt"``, or ``"route"`` for a
            routing re-derivation).
        station: affected station (-1 when network-wide).
    """

    KIND = "fault_recover"

    fault: str
    station: int = -1


@dataclass(frozen=True, slots=True)
class ChannelUpdate(TraceEvent):
    """The continuous channel process applied one tick of dynamics.

    Attributes:
        moved: stations whose positions changed this tick.
        links: link gains re-written into the medium this tick.
    """

    KIND = "channel_update"

    moved: int
    links: int


@dataclass(frozen=True, slots=True)
class NeighborTurnover(TraceEvent):
    """A station's hearable-neighbour set changed under mobility.

    Attributes:
        station: the station whose neighbourhood turned over.
        gained: neighbours that drifted into reach since the last scan.
        lost: neighbours that drifted out of reach.
    """

    KIND = "neighbor_turnover"

    station: int
    gained: int
    lost: int


@dataclass(frozen=True, slots=True)
class RendezvousReacquire(TraceEvent):
    """The network re-converged its §7.1 state onto the live channel.

    Attributes:
        stations: stations whose turnover triggered this re-acquisition.
        new_pairs: hearable pairs that fitted a clock model for the
            first time.
        kicked: MACs interrupted so stale candidate windows are
            re-derived.
    """

    KIND = "rendezvous_reacquire"

    stations: int
    new_pairs: int
    kicked: int


@dataclass(frozen=True, slots=True)
class ArqRetry(TraceEvent):
    """The ARQ sublayer scheduled a bounded retransmission.

    Attributes:
        attempt: 1-based count of failed attempts so far.
    """

    KIND = "arq_retry"

    station: int
    next_hop: int
    packet: int
    attempt: int


@dataclass(frozen=True, slots=True)
class ArqGiveUp(TraceEvent):
    """The ARQ sublayer exhausted its retry budget for a packet.

    Attributes:
        attempts: total failed attempts when the packet was abandoned.
    """

    KIND = "arq_give_up"

    station: int
    next_hop: int
    packet: int
    attempts: int


@dataclass(frozen=True, slots=True)
class TxPowerLevel(TraceEvent):
    """A multi-level power MAC drew a transmit power level.

    Attributes:
        level: 0-based ladder index (0 = full calibrated power).
        scale: linear factor applied to the power-controlled level.
    """

    KIND = "tx_power_level"

    station: int
    next_hop: int
    level: int
    scale: float


@dataclass(frozen=True, slots=True)
class SicCancel(TraceEvent):
    """An SIC receiver cancelled interferers during one reception.

    Emitted once per tracked reception when it ends, carrying the peak
    cancellation the successive-cancellation pipeline achieved over the
    reception's lifetime.

    Attributes:
        cancelled: maximum interferers subtracted at any one
            interference change.
        ok: whether the reception ultimately satisfied the SIR
            criterion.
    """

    KIND = "sic_cancel"

    receiver: int
    source: int
    cancelled: int
    ok: bool


#: Registry of every event type, keyed by its ``KIND`` tag.
EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.KIND: cls
    for cls in (
        TxStart,
        TxEnd,
        TxAbort,
        TxOutcome,
        RxLock,
        RxOk,
        RxFail,
        Delivered,
        QueueEnter,
        QueueLeave,
        QueueFlush,
        SlotClaim,
        SlotYield,
        ControlSent,
        Unreachable,
        DropNoRoute,
        DropOverflow,
        DropStationDown,
        StationDown,
        StationUp,
        FaultInject,
        FaultRecover,
        ChannelUpdate,
        NeighborTurnover,
        RendezvousReacquire,
        ArqRetry,
        ArqGiveUp,
        TxPowerLevel,
        SicCancel,
    )
}


def event_from_payload(
    kind: str, time: float, payload: Dict[str, Any]
) -> TraceEvent:
    """Rebuild a typed event from a decoded sink row.

    Lists decode back to tuples (JSON has no tuple type), so a
    round-tripped event compares equal to the original.
    """
    try:
        event_type = EVENT_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown event kind {kind!r}") from None
    coerced = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in payload.items()
    }
    return event_type(time, **coerced)
