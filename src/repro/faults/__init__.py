"""Deterministic fault injection and graceful degradation.

The paper's central systems claim (Sections 6-7) is that the channel
access scheme is decentralized and self-organizing: stations fit
neighbours' clocks, publish receive windows, and route around each
other with no central point of failure.  This package supplies the
machinery to *test* that claim: declarative fault specifications
(:mod:`repro.faults.spec`) compile — through the seed tree, so fault
runs are bit-reproducible and jobs-invariant like everything else —
into a concrete :class:`~repro.faults.spec.FaultPlan`, which a
:class:`~repro.faults.injector.FaultInjector` walks as an ordinary
maintenance process: station crash/recover churn, link fade episodes
that scale gain-matrix entries, clock step faults followed by model
re-fits, and packet-corruption windows.

An empty plan installs nothing at all — no process, no extra events —
so the fault layer is provably zero-cost when unused: replay digests
of existing experiments are bit-identical with and without this
package imported.
"""

from repro.faults.injector import FaultInjector, install_faults
from repro.faults.resilience import ResilienceLog, ResilienceReport
from repro.faults.spec import (
    ClockStep,
    FaultEvent,
    FaultPlan,
    LinkFade,
    PacketCorruption,
    StationChurn,
    StationCrash,
    compile_plan,
)

__all__ = [
    "ClockStep",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkFade",
    "PacketCorruption",
    "ResilienceLog",
    "ResilienceReport",
    "StationChurn",
    "StationCrash",
    "compile_plan",
    "install_faults",
]
