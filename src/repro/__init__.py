"""repro: a reproduction of Shepard's SIGCOMM 1996 channel access scheme
for large dense packet radio networks.

The package is organised as the paper is:

* :mod:`repro.radio` — signals, spread spectrum, radios (Section 3.1);
* :mod:`repro.propagation` — placements, path loss, the H matrix
  (Sections 3.2-3.5, 4);
* :mod:`repro.clock` — free-running clocks and neighbour clock models
  (Section 7);
* :mod:`repro.sim` — the discrete-event substrate;
* :mod:`repro.core` — the reception model, noise-growth analysis,
  collision taxonomy, pseudo-random schedules, and the collision-free
  access scheme (Sections 3-7);
* :mod:`repro.routing` — minimum-energy routing and baselines
  (Section 6.2);
* :mod:`repro.mac` — the scheme and the classical MACs it displaces;
* :mod:`repro.net` — stations, the physical medium, network assembly;
* :mod:`repro.analysis` — the paper's closed-form arguments;
* :mod:`repro.experiments` — one module per figure/table reproduced.

Quickstart::

    import repro

    outcome = repro.simulate(repro.Scenario(station_count=100), seed=1)
    assert outcome.result.collision_free

:func:`simulate` is the one-call front door — placement, the Section 6
design calibration, traffic, optional fault plans and observability
sinks all hang off one :class:`Scenario` plus keyword arguments.  The
layered API underneath (``build_network`` et al.) remains for anything
the facade does not cover.
"""

__version__ = "1.0.0"

from repro.core import Schedule, ScheduleView, find_transmit_window
from repro.facade import Scenario, SimulationOutcome, simulate
from repro.net import NetworkConfig, build_network

__all__ = [
    "NetworkConfig",
    "Scenario",
    "Schedule",
    "ScheduleView",
    "SimulationOutcome",
    "__version__",
    "build_network",
    "find_transmit_window",
    "simulate",
]
