"""A first-principles delay model for the scheme (§6.2, §7.2).

The paper discusses delay qualitatively: the scheduling scheme adds "a
Bernoulli process" wait per hop, and minimum-energy routing's "multitude
of store-and-forward delays ... will adversely affect delay".  This
module combines the two into a quantitative light-load prediction:

    per-hop delay  ~=  (1/(p(1-p)) + packet_fraction) slots
    end-to-end     ~=  hops x per-hop

The Bernoulli term is the §7.2 expected wait for a usable slot; the
``packet_fraction`` term is the airtime itself.  The prediction is an
*upper* estimate: the implementation schedules continuously (it can
straddle slot boundaries), so simulated delays land 10-20% below the
model at light load — experiment A7 measures exactly that gap.
Queueing delay is excluded; the model applies while utilisation is low.
"""

from __future__ import annotations

from repro.analysis.scheduling_stats import expected_wait_slots

__all__ = ["per_hop_delay_slots", "end_to_end_delay_slots", "max_light_load"]


def per_hop_delay_slots(p: float, packet_fraction: float = 0.25) -> float:
    """Expected light-load per-hop delay in slots (Bernoulli model)."""
    if not 0.0 < packet_fraction <= 1.0:
        raise ValueError("packet fraction must be in (0, 1]")
    return expected_wait_slots(p) + packet_fraction


def end_to_end_delay_slots(
    hops: float, p: float, packet_fraction: float = 0.25
) -> float:
    """Expected light-load end-to-end delay in slots."""
    if hops < 1.0:
        raise ValueError("a route has at least one hop")
    return hops * per_hop_delay_slots(p, packet_fraction)


def max_light_load(p: float, mean_hops: float, packet_fraction: float = 0.25) -> float:
    """Per-station origination rate (packets/slot) below which the
    light-load model applies.

    Each originated packet consumes ``mean_hops`` transmissions of
    ``packet_fraction`` slots somewhere in the network, and a station
    pair offers ``p(1-p)`` usable time; utilisation stays low when the
    origination rate is well under the pairwise service capacity.  The
    returned value is the rate at which per-pair utilisation reaches
    ~25%, a practical validity edge for the no-queueing assumption.
    """
    if mean_hops < 1.0:
        raise ValueError("mean hops must be at least one")
    service_rate = p * (1.0 - p) / packet_fraction  # packets per slot per pair
    return 0.25 * service_rate / mean_hops
