"""Typed receiver capture/cancellation models.

The despreader bank (:mod:`repro.radio.spreadspectrum`) models *how
many* transmissions a receiver can track at once; a
:class:`ReceiverModel` models *what the demodulator does with the
interference* while tracking one of them.  The default model is the
plain Section 3.4 receiver: interference is noise, full stop.  The
``sic`` model implements successive interference cancellation (Li &
Dai's SIC-Aloha receiver): at every interference change it decodes the
strongest interferer that clears the modem threshold, subtracts its
contribution, and retries the remainder, up to a bounded cancellation
depth.

Design rules the medium relies on:

* Models are **pure and stateless**: :meth:`ReceiverModel.resolve_interference`
  is a function of its arguments only, so one frozen instance is safely
  shared by every station in a network and replay digests cannot depend
  on sharing.
* Cancellation is **per-receiver local**.  The model returns a reduced
  interference level for *one* reception; the medium's shared
  incremental field (``gains @ powers``) is never mutated — other
  receivers still see every watt actually radiated.
* The order is **deterministic**: candidates sort by descending
  received power with the transmission sequence number as the
  tie-break, so equal-power interferers cancel in a reproducible
  order at any worker count.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

__all__ = [
    "ReceiverModel",
    "DefaultReceiver",
    "SicReceiver",
    "receiver_model_names",
    "build_receiver_model",
]


class ReceiverModel(ABC):
    """How one receiver's demodulator treats concurrent interference.

    Attributes:
        name: registry name of the model.
        cancels: whether the model can reduce interference below the
            physical aggregate.  ``False`` lets the medium skip the
            per-reception hook entirely (the zero-cost default path).
    """

    name: str = "abstract"
    cancels: bool = False

    @abstractmethod
    def resolve_interference(
        self,
        wanted_signal_w: float,
        interference_w: float,
        thermal_w: float,
        threshold: float,
        contributions: Sequence[Tuple[float, int]],
    ) -> Tuple[float, int]:
        """Reduce the interference seen by one tracked reception.

        Args:
            wanted_signal_w: received power of the wanted signal.
            interference_w: aggregate interference at the receiver
                right now, excluding the wanted signal (but including
                self-coupling and any contributions the model may not
                cancel).
            thermal_w: receiver thermal noise floor.
            threshold: the receiver's required SIR (interferers are
                decoded by the same modem, so the same threshold
                gates their cancellation).
            contributions: cancellable interferers as
                ``(received_power_w, seq)`` pairs, in any order.  The
                medium excludes the wanted transmission and the
                receiver's own keyed transmitter (the Type 3 self-jam
                is unconditional; a station cannot despread anything —
                its own signal included — while transmitting).

        Returns:
            ``(reduced_interference_w, cancelled_count)`` where the
            reduced level is what the SIR criterion should see
            (``0 <= reduced <= interference_w``).
        """


@dataclass(frozen=True)
class DefaultReceiver(ReceiverModel):
    """The plain Section 3.4 receiver: interference is noise.

    Bit-identical to running with no model at all — the medium's hook
    never fires because :attr:`cancels` is False.
    """

    name: str = "default"
    cancels: bool = False

    def resolve_interference(
        self,
        wanted_signal_w: float,
        interference_w: float,
        thermal_w: float,
        threshold: float,
        contributions: Sequence[Tuple[float, int]],
    ) -> Tuple[float, int]:
        return interference_w, 0


@dataclass(frozen=True)
class SicReceiver(ReceiverModel):
    """Successive interference cancellation (Li & Dai).

    At each interference change the receiver considers the cancellable
    interferers strongest-first.  An interferer is decodable — and
    therefore removable — iff its own SIR against *everything else
    still on the air at this receiver* (the wanted signal included)
    clears the modem threshold:

        p_j >= threshold * (residual_total - p_j + thermal)

    where ``residual_total`` is the wanted signal plus the not-yet-
    cancelled interference.  Decoding stops at the first undecodable
    candidate (successive cancellation cannot skip ahead: the next-
    strongest signal is by definition even harder to decode) or at
    :attr:`depth` cancellations.  Ties in received power break on the
    transmission sequence number, ascending, so the order is exact and
    reproducible.

    Attributes:
        depth: maximum interferers cancelled per reception per
            interference change (bounded hardware pipeline).
    """

    name: str = "sic"
    cancels: bool = True
    depth: int = 4

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("cancellation depth must be at least 1")

    def resolve_interference(
        self,
        wanted_signal_w: float,
        interference_w: float,
        thermal_w: float,
        threshold: float,
        contributions: Sequence[Tuple[float, int]],
    ) -> Tuple[float, int]:
        if not contributions or interference_w <= 0.0:
            return interference_w, 0
        ordered: List[Tuple[float, int]] = sorted(
            contributions, key=lambda entry: (-entry[0], entry[1])
        )
        # What the front end sees besides thermal noise: the wanted
        # signal is real power to an interferer's decoder.
        residual_total = wanted_signal_w + interference_w
        cancelled_power = 0.0
        cancelled = 0
        for power, _seq in ordered:
            if cancelled >= self.depth:
                break
            if power <= 0.0:
                break
            others = residual_total - power
            if power >= threshold * (others + thermal_w):
                residual_total -= power
                cancelled_power += power
                cancelled += 1
            else:
                break
        if cancelled == 0:
            return interference_w, 0
        return max(interference_w - cancelled_power, 0.0), cancelled


_MODELS: Dict[str, Callable[[], ReceiverModel]] = {
    "default": DefaultReceiver,
    "sic": SicReceiver,
}


def receiver_model_names() -> Tuple[str, ...]:
    """Registered receiver model names, in registration order."""
    return tuple(_MODELS)


def build_receiver_model(name: str) -> ReceiverModel:
    """Instantiate a receiver model by registry name.

    Raises:
        ValueError: for an unknown name (the known names are listed).
    """
    try:
        factory = _MODELS[name]
    except KeyError:
        known = ", ".join(sorted(_MODELS))
        raise ValueError(
            f"unknown receiver model {name!r}; known models: {known}"
        ) from None
    return factory()
