"""Mobility models: deterministic station trajectories over the disk.

The paper (Section 2) targets *slowly moving* stations — slow enough
that the §7.1 clock-model maintenance can track neighbours, fast
enough that neighbour sets eventually turn over.  These models supply
that motion as pure state machines: every random draw comes from the
generator handed in by the channel process (which derives it from the
seed tree), so trajectories are bit-reproducible and jobs-invariant
like everything else in the repository.

Two classic models are provided:

* :class:`RandomWaypoint` — each station independently picks a target
  uniform in the disk, walks to it at constant speed, pauses, and
  repeats.  The standard churn workload: neighbour sets decay
  station-by-station.
* :class:`ClusterDrift` — stations are partitioned into clusters that
  drift coherently with periodically redrawn headings, reflecting off
  the region boundary.  Models convoys/platoons: whole neighbourhoods
  move together, so intra-cluster links are stable while inter-cluster
  links churn en masse.

Speeds are expressed in metres per *slot* so that experiment churn
rates stay meaningful across link-budget changes; the channel process
advances models by its tick interval measured in slots.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

__all__ = ["MobilityModel", "RandomWaypoint", "ClusterDrift"]


class MobilityModel(ABC):
    """Base class: in-place position updates driven by an external RNG.

    Lifecycle: :meth:`prepare` once with the initial positions, then
    :meth:`step` per channel tick.  Models keep their state (targets,
    headings, pause timers) internally; positions live in the caller's
    array and are mutated in place.
    """

    #: Model name, for experiment payloads.
    name: str = "static"

    #: Speed in metres per slot; 0.0 means the model is inert.
    speed: float = 0.0

    @property
    def is_static(self) -> bool:
        """Whether the model can never move a station.

        A static model is *inert*: :func:`~repro.mobility.channel
        .install_channel` installs nothing for it, preserving the
        zero-cost guarantee.
        """
        return self.speed == 0.0

    @abstractmethod
    def prepare(
        self,
        positions: np.ndarray,
        region_radius: float,
        rng: np.random.Generator,
    ) -> None:
        """Initialise per-station state for the given starting layout."""

    @abstractmethod
    def step(
        self,
        positions: np.ndarray,
        dt_slots: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Advance ``dt_slots`` of motion, mutating ``positions``.

        Returns the indices of stations that actually moved, so the
        caller can restrict gain recomputation to touched links — with
        an empty return the channel tick writes back bitwise-identical
        gains.
        """


def _uniform_in_disk(
    count: int, radius: float, rng: np.random.Generator
) -> np.ndarray:
    """``count`` points uniform over the disk of ``radius`` (area-true)."""
    r = radius * np.sqrt(rng.random(count))
    theta = 2.0 * np.pi * rng.random(count)
    return np.column_stack((r * np.cos(theta), r * np.sin(theta)))


@dataclass
class RandomWaypoint(MobilityModel):
    """Independent waypoint walks: pick a target, walk, pause, repeat.

    Attributes:
        speed: walking speed in metres per slot.
        pause_slots: dwell time at each reached waypoint, in slots.
    """

    speed: float = 0.0
    pause_slots: float = 0.0
    name: str = field(default="waypoint", init=False)

    def __post_init__(self) -> None:
        if self.speed < 0.0:
            raise ValueError("speed must be non-negative")
        if self.pause_slots < 0.0:
            raise ValueError("pause must be non-negative")

    def prepare(
        self,
        positions: np.ndarray,
        region_radius: float,
        rng: np.random.Generator,
    ) -> None:
        count = positions.shape[0]
        self._radius = float(region_radius)
        self._targets = _uniform_in_disk(count, self._radius, rng)
        self._pause_left = np.zeros(count)

    def step(
        self,
        positions: np.ndarray,
        dt_slots: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if self.speed == 0.0 or dt_slots <= 0.0:
            return np.empty(0, dtype=np.intp)
        paused = self._pause_left > 0.0
        self._pause_left[paused] -= dt_slots
        walking = np.nonzero(~paused)[0]
        if walking.size == 0:
            return np.empty(0, dtype=np.intp)
        delta = self._targets[walking] - positions[walking]
        dist = np.sqrt((delta**2).sum(axis=1))
        step_len = self.speed * dt_slots
        arrive = dist <= step_len
        # Walkers that do not reach their target this tick move along
        # the straight line; arrivals snap to the target, start their
        # pause, and draw the next waypoint (consumed when it ends).
        far = walking[~arrive]
        if far.size:
            unit = delta[~arrive] / dist[~arrive, None]
            positions[far] += unit * step_len
        near = walking[arrive]
        if near.size:
            positions[near] = self._targets[near]
            self._pause_left[near] = self.pause_slots
            self._targets[near] = _uniform_in_disk(
                near.size, self._radius, rng
            )
        moved = walking[dist > 0.0]
        return moved

    def _state_summary(self) -> dict:
        """Small introspection hook for tests."""
        return {
            "targets": self._targets.copy(),
            "pause_left": self._pause_left.copy(),
        }


@dataclass
class ClusterDrift(MobilityModel):
    """Clusters of stations drifting coherently, reflecting at the rim.

    Attributes:
        speed: drift speed in metres per slot (shared by all clusters).
        clusters: number of coherent groups stations are split into.
        redirect_slots: interval between heading redraws, in slots.
    """

    speed: float = 0.0
    clusters: int = 4
    redirect_slots: float = 50.0
    name: str = field(default="cluster", init=False)

    def __post_init__(self) -> None:
        if self.speed < 0.0:
            raise ValueError("speed must be non-negative")
        if self.clusters < 1:
            raise ValueError("need at least one cluster")
        if self.redirect_slots <= 0.0:
            raise ValueError("redirect interval must be positive")

    def prepare(
        self,
        positions: np.ndarray,
        region_radius: float,
        rng: np.random.Generator,
    ) -> None:
        count = positions.shape[0]
        self._radius = float(region_radius)
        self._assignment = rng.integers(0, self.clusters, size=count)
        self._headings = self._draw_headings(rng)
        self._until_redirect = self.redirect_slots

    def _draw_headings(self, rng: np.random.Generator) -> np.ndarray:
        theta = 2.0 * np.pi * rng.random(self.clusters)
        return np.column_stack((np.cos(theta), np.sin(theta)))

    def step(
        self,
        positions: np.ndarray,
        dt_slots: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if self.speed == 0.0 or dt_slots <= 0.0:
            return np.empty(0, dtype=np.intp)
        self._until_redirect -= dt_slots
        if self._until_redirect <= 0.0:
            self._headings = self._draw_headings(rng)
            self._until_redirect = self.redirect_slots
        positions += self._headings[self._assignment] * (
            self.speed * dt_slots
        )
        # Stations carried past the rim are mirrored back across it
        # (position-only reflection; the cluster heading is redrawn on
        # its own cadence, so escapees re-reflect until then).
        r = np.sqrt((positions**2).sum(axis=1))
        outside = r > self._radius
        if outside.any():
            factor = (2.0 * self._radius - r[outside]) / r[outside]
            # A station carried beyond 2R would mirror through the
            # origin; clamp the reflection to the rim instead.
            factor = np.maximum(factor, 0.0)
            positions[outside] *= factor[:, None]
        return np.arange(positions.shape[0], dtype=np.intp)
