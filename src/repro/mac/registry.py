"""Declarative MAC registry: the plug-in surface for channel access.

Every contender — the paper's scheme and each baseline — registers a
:class:`MacDescriptor` here under a stable name, carrying both the
capability flags experiments care about (slotted?  needs a
despreader-bank receiver model?) and the recipe for building one bound
instance per station.  Experiments enumerate and build by name
(:func:`mac_names` / :func:`build_mac` / :func:`mac_suite`), and
``build_network(mac="sic_aloha")`` resolves through the same table, so
adding a MAC is one module plus one ``@register_mac`` decorator — no
hand-written suite dicts to keep in sync.

Stream identity: each descriptor owns the seed-tree stream prefix its
per-station RNGs derive from, so two MACs can never collide on a
stream name (uniqueness is enforced at registration).  The five legacy
contenders keep their historical single-letter prefixes (``a``/``s``/
``c``/``m``) so their replay digests and experiment rows stay
bit-identical across the registry redesign; every newer MAC defaults
to the collision-proof ``"<name>:"`` form.

The ``tdma`` baseline stays outside the registry: it needs a global
slot plan computed from the built network's geometry, which the
per-station ``(index, budget)`` build contract cannot express — it
remains available through the explicit ``mac_factory=`` path (see
``repro.mac.tdma.build_tdma_plan``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.mac.aloha import AlohaMac
from repro.mac.csma import CsmaMac
from repro.mac.maca import MacaMac
from repro.mac.multilevel_power import MultilevelPowerMac
from repro.mac.sic_aloha import SicAlohaMac
from repro.mac.sinr_adaptive import SinrAdaptiveMac
from repro.radio.receiver_model import receiver_model_names

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.base import MacProtocol
    from repro.net.network import LinkBudget
    from repro.sim.streams import RandomStreams

__all__ = [
    "MacBuildContext",
    "MacDescriptor",
    "register_mac",
    "mac_names",
    "get_mac",
    "build_mac",
    "mac_factory",
    "mac_suite",
]


@dataclass(frozen=True)
class MacBuildContext:
    """Everything a registered builder may draw on for one station.

    Attributes:
        index: the station's network-wide index.
        budget: the built network's calibrated link budget.
        streams: the seed-tree stream factory for this suite/network.
        descriptor: the descriptor being built (supplies the stream
            prefix).
    """

    index: int
    budget: "LinkBudget"
    streams: "RandomStreams"
    descriptor: "MacDescriptor"

    def stream(self) -> np.random.Generator:
        """This station's private RNG, derived from the descriptor's
        stream prefix plus the station index — the only sanctioned way
        for a registered builder to obtain randomness."""
        return self.streams.stream(
            f"{self.descriptor.stream_prefix}{self.index}"
        )


@dataclass(frozen=True)
class MacDescriptor:
    """One registered channel access scheme.

    Attributes:
        name: registry name (also the experiment row label).
        builder: constructs one unbound MAC instance per station from a
            :class:`MacBuildContext`.
        slotted: the scheme assumes a free global slot grid (a baseline
            idealisation the paper's scheme does without).
        needs_bank: the scheme's semantics depend on the receiver's
            despreader bank beyond plain tracking (e.g. a cancelling
            receiver model).
        builder_default: ``build_network`` ignores the registry builder
            for this name and uses its own config-aware default (the
            paper's scheme derives its guard from the network config,
            which the per-station build contract cannot see).
        receiver_model: receiver model name to install on every
            station's despreader bank when this MAC is selected
            network-wide (``None`` keeps the plain default receiver).
        stream_prefix: seed-tree prefix for per-station RNG streams;
            unique across the registry by construction.
        description: one-line human-readable summary.
    """

    name: str
    builder: Callable[[MacBuildContext], "MacProtocol"]
    slotted: bool = False
    needs_bank: bool = False
    builder_default: bool = False
    receiver_model: Optional[str] = None
    stream_prefix: str = ""
    description: str = ""


_REGISTRY: Dict[str, MacDescriptor] = {}


def register_mac(
    name: str,
    *,
    slotted: bool = False,
    needs_bank: bool = False,
    builder_default: bool = False,
    receiver_model: Optional[str] = None,
    stream_prefix: Optional[str] = None,
    description: str = "",
) -> Callable[[Callable[[MacBuildContext], "MacProtocol"]], Callable]:
    """Class decorator-style registration of a MAC builder.

    ``stream_prefix`` defaults to ``"<name>:"``, which cannot collide
    with any other registered name's default; the legacy single-letter
    prefixes are grandfathered explicitly for digest stability.
    """
    if not name:
        raise ValueError("a MAC needs a non-empty name")
    prefix = f"{name}:" if stream_prefix is None else stream_prefix
    if receiver_model is not None and receiver_model not in receiver_model_names():
        known = ", ".join(receiver_model_names())
        raise ValueError(
            f"MAC {name!r} names unknown receiver model "
            f"{receiver_model!r}; known models: {known}"
        )

    def decorate(
        builder: Callable[[MacBuildContext], "MacProtocol"],
    ) -> Callable[[MacBuildContext], "MacProtocol"]:
        if name in _REGISTRY:
            raise ValueError(f"MAC {name!r} is already registered")
        for other in _REGISTRY.values():
            if other.stream_prefix == prefix:
                raise ValueError(
                    f"MAC {name!r} stream prefix {prefix!r} collides "
                    f"with {other.name!r}; stream identity must be "
                    "unique per MAC"
                )
        _REGISTRY[name] = MacDescriptor(
            name=name,
            builder=builder,
            slotted=slotted,
            needs_bank=needs_bank,
            builder_default=builder_default,
            receiver_model=receiver_model,
            stream_prefix=prefix,
            description=description,
        )
        return builder

    return decorate


def mac_names() -> Tuple[str, ...]:
    """Registered MAC names, in registration order (the paper's scheme
    first, then the lineage in historical order, then the frontier)."""
    return tuple(_REGISTRY)


def get_mac(name: str) -> MacDescriptor:
    """The descriptor registered under ``name``.

    Raises:
        ValueError: for an unknown name (the known names are listed).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise ValueError(
            f"unknown MAC {name!r}; registered MACs: {known}"
        ) from None


def build_mac(
    name: str,
    index: int,
    budget: "LinkBudget",
    streams: "RandomStreams",
) -> "MacProtocol":
    """Build one station's MAC instance by registry name."""
    descriptor = get_mac(name)
    return descriptor.builder(
        MacBuildContext(
            index=index, budget=budget, streams=streams, descriptor=descriptor
        )
    )


def mac_factory(
    name: str, streams: "RandomStreams"
) -> Optional[Callable[[int, "LinkBudget"], "MacProtocol"]]:
    """A ``(index, budget) -> MacProtocol`` factory for ``name``.

    Returns ``None`` for ``builder_default`` descriptors (the paper's
    scheme), telling ``build_network`` to use its config-aware default
    — the same convention the legacy suite dict used.
    """
    descriptor = get_mac(name)
    if descriptor.builder_default:
        return None

    def factory(index: int, budget: "LinkBudget") -> "MacProtocol":
        return descriptor.builder(
            MacBuildContext(
                index=index,
                budget=budget,
                streams=streams,
                descriptor=descriptor,
            )
        )

    return factory


def mac_suite(
    seed: int, names: Optional[Sequence[str]] = None
) -> Dict[str, Optional[Callable[[int, "LinkBudget"], "MacProtocol"]]]:
    """Name -> factory for a whole contender suite (None = the scheme).

    The drop-in replacement for the old hand-written T7 dict: one
    :class:`~repro.sim.streams.RandomStreams` per suite, per-MAC stream
    prefixes from the registry.  ``names`` selects and orders a subset;
    unknown names raise.
    """
    from repro.sim.streams import RandomStreams

    streams = RandomStreams(seed)
    selected = mac_names() if names is None else tuple(names)
    return {name: mac_factory(name, streams) for name in selected}


# -- the registered contenders, in historical order -------------------


@register_mac(
    "shepard",
    builder_default=True,
    description=(
        "the paper's schedule-based scheme; built by build_network with "
        "its config-derived guard"
    ),
)
def _build_shepard(context: MacBuildContext) -> "MacProtocol":
    raise ValueError(
        "the paper's scheme derives its guard from the network config; "
        "build it through build_network (mac='shepard' or the default) "
        "rather than build_mac"
    )


@register_mac(
    "aloha",
    stream_prefix="a",
    description="pure ALOHA with binary exponential backoff",
)
def _build_aloha(context: MacBuildContext) -> "MacProtocol":
    return AlohaMac(context.stream())


@register_mac(
    "slotted_aloha",
    slotted=True,
    stream_prefix="s",
    description="slot-aligned ALOHA (free global synchronisation)",
)
def _build_slotted_aloha(context: MacBuildContext) -> "MacProtocol":
    return AlohaMac(context.stream(), slotted=True)


@register_mac(
    "csma",
    stream_prefix="c",
    description="carrier sense with random deferral",
)
def _build_csma(context: MacBuildContext) -> "MacProtocol":
    return CsmaMac(
        context.stream(),
        # Sense threshold: half the delivered-power target — hears any
        # sender roughly as close as its own addressee, while staying
        # above the distant aggregate din.
        sense_threshold_w=0.5 * context.budget.target_delivered_w,
    )


@register_mac(
    "maca",
    stream_prefix="m",
    description="RTS/CTS handshaking (two control bursts per data)",
)
def _build_maca(context: MacBuildContext) -> "MacProtocol":
    return MacaMac(context.stream())


@register_mac(
    "sic_aloha",
    slotted=True,
    needs_bank=True,
    receiver_model="sic",
    description=(
        "slotted ALOHA with successive interference cancellation at "
        "the receiver (Li & Dai)"
    ),
)
def _build_sic_aloha(context: MacBuildContext) -> "MacProtocol":
    return SicAlohaMac(context.stream())


@register_mac(
    "multilevel_power",
    slotted=True,
    description=(
        "slotted ALOHA with multi-level random transmit power "
        "(Kumar et al.)"
    ),
)
def _build_multilevel_power(context: MacBuildContext) -> "MacProtocol":
    return MultilevelPowerMac(context.stream())


@register_mac(
    "sinr_adaptive",
    slotted=True,
    description=(
        "persistence adapts to locally measured SINR (Kim & Kim)"
    ),
)
def _build_sinr_adaptive(context: MacBuildContext) -> "MacProtocol":
    return SinrAdaptiveMac(context.stream(), context.budget)
