"""The Shannon-bound reception model (Section 3.4).

A packet from station k is successfully received at station i iff,
*for the whole duration of the reception*, the signal-to-noise ratio

    S / N  >=  beta * (2^(C/W) - 1)

holds, where ``S`` is the received power of the wanted signal,
``N`` the total power of interference plus thermal noise, ``C`` the
design data rate, ``W`` the spread bandwidth, and ``beta`` (~3, i.e.
~5 dB) the margin by which practical modems miss the Shannon bound.

The paper prints the threshold as ``beta * 2^(C/W)`` (its Eq. 4); the
exact Shannon inversion carries the ``-1``.  At the paper's design
point ``C/W`` is around 0.003-0.01, where ``2^(C/W) - 1 ~= ln 2 * C/W``,
and the ``-1`` form reproduces the paper's own numerical examples
(e.g. "C/W = 0.014 at S/N = 0.01"), so the exact form is the default;
``exact=False`` gives the literal printed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "required_sir",
    "sir",
    "shannon_capacity",
    "max_rate",
    "ReceptionTracker",
]


def required_sir(
    data_rate_bps: float,
    bandwidth_hz: float,
    beta: float = 3.0,
    exact: bool = True,
) -> float:
    """Minimum signal-to-noise ratio for reliable reception (Eq. 4).

    Args:
        data_rate_bps: the fixed design rate ``C``.
        bandwidth_hz: spread bandwidth ``W``.
        beta: detection margin above the Shannon bound (linear, >= 1).
        exact: use the exact Shannon inversion ``beta * (2^(C/W) - 1)``;
            ``False`` uses the paper's printed ``beta * 2^(C/W)``.
    """
    if data_rate_bps <= 0.0 or bandwidth_hz <= 0.0:
        raise ValueError("rate and bandwidth must be positive")
    if beta < 1.0:
        raise ValueError("beta is a margin and must be >= 1")
    spectral_efficiency = data_rate_bps / bandwidth_hz
    if exact:
        return beta * (2.0**spectral_efficiency - 1.0)
    return beta * 2.0**spectral_efficiency


def sir(
    signal_power_w: float,
    interference_power_w: float,
    noise_power_w: float = 0.0,
) -> float:
    """Signal-to-interference-plus-noise ratio (Eq. 6, power domain).

    Returns ``inf`` when there is neither interference nor noise.
    """
    if signal_power_w < 0.0:
        raise ValueError("signal power must be non-negative")
    if interference_power_w < 0.0 or noise_power_w < 0.0:
        raise ValueError("interference and noise powers must be non-negative")
    denominator = interference_power_w + noise_power_w
    if denominator == 0.0:
        return math.inf
    return signal_power_w / denominator


def shannon_capacity(bandwidth_hz: float, snr: float) -> float:
    """Shannon capacity ``C = W log2(1 + S/N)`` in bits per second (Eq. 3)."""
    if bandwidth_hz <= 0.0:
        raise ValueError("bandwidth must be positive")
    if snr < 0.0:
        raise ValueError("SNR must be non-negative")
    return bandwidth_hz * math.log2(1.0 + snr)


def max_rate(bandwidth_hz: float, snr: float, beta: float = 3.0) -> float:
    """Highest design rate supportable at a given SNR with margin beta.

    Inverts :func:`required_sir` (exact form): the rate ``C`` such that
    ``snr == beta * (2^(C/W) - 1)``.
    """
    if beta < 1.0:
        raise ValueError("beta is a margin and must be >= 1")
    if snr < 0.0:
        raise ValueError("SNR must be non-negative")
    return shannon_capacity(bandwidth_hz, snr / beta)


@dataclass
class ReceptionTracker:
    """Tracks one in-progress reception against the continuous criterion.

    "The criterion for successful reception of a packet is then that the
    signal-to-noise ratio be greater than the required minimum for the
    duration of its reception."  The simulator calls :meth:`update`
    whenever the interference environment changes (a transmission starts
    or ends); the tracker records the worst SIR seen.

    Attributes:
        threshold: required SIR for this reception.
        signal_power_w: received power of the wanted signal (constant
            over the reception; the sender holds its power).
        noise_power_w: thermal noise at the receiver.
    """

    threshold: float
    signal_power_w: float
    noise_power_w: float = 0.0
    _min_sir: float = field(default=math.inf, repr=False)
    _failed_at: Optional[float] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.threshold <= 0.0:
            raise ValueError("threshold must be positive")
        if self.signal_power_w < 0.0:
            raise ValueError("signal power must be non-negative")
        if self.noise_power_w < 0.0:
            raise ValueError("noise power must be non-negative")

    @property
    def min_sir(self) -> float:
        """Worst SIR observed so far."""
        return self._min_sir

    @property
    def ok(self) -> bool:
        """Whether the criterion has held at every update so far."""
        return self._failed_at is None

    @property
    def failed_at(self) -> Optional[float]:
        """Time of the first threshold violation, if any."""
        return self._failed_at

    def update(self, now: float, interference_power_w: float) -> bool:
        """Fold in the current interference level; returns current ok-ness."""
        current = sir(self.signal_power_w, interference_power_w, self.noise_power_w)
        if current < self._min_sir:
            self._min_sir = current
        if current < self.threshold and self._failed_at is None:
            self._failed_at = now
        return self.ok
