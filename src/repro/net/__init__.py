"""Network substrate: packets, queues, traffic, the medium, stations."""

from repro.net.medium import LossRecord, Medium, ReceptionAttempt, Transmission
from repro.net.network import (
    LinkBudget,
    Network,
    NetworkConfig,
    NetworkResult,
    build_network,
)
from repro.net.packet import HopRecord, Packet
from repro.net.queueing import FifoQueue, NeighborQueues, TransmitQueue
from repro.net.station import Station, StationStats
from repro.net.traffic import CbrTraffic, HotspotTraffic, PoissonTraffic, TrafficSource

__all__ = [
    "CbrTraffic",
    "FifoQueue",
    "HopRecord",
    "HotspotTraffic",
    "LinkBudget",
    "LossRecord",
    "Medium",
    "Network",
    "NetworkConfig",
    "NetworkResult",
    "NeighborQueues",
    "Packet",
    "PoissonTraffic",
    "ReceptionAttempt",
    "Station",
    "StationStats",
    "TrafficSource",
    "TransmitQueue",
    "Transmission",
    "build_network",
]
