"""Tests for the Section 6 design-strategy calculations."""

import math

import pytest

from repro.core.design import (
    DesignPoint,
    expected_neighbors,
    range_doubling_cost_db,
    reach_for_expected_neighbors,
)


class TestNeighborGeometry:
    def test_pi_at_characteristic_reach(self):
        # Section 6: "the expected number of stations inside a circle of
        # radius 1/sqrt(rho) ... is pi".
        assert expected_neighbors(1.0) == pytest.approx(math.pi)

    def test_four_pi_after_doubling(self):
        assert expected_neighbors(2.0) == pytest.approx(4.0 * math.pi)

    def test_reach_inverse(self):
        assert reach_for_expected_neighbors(math.pi) == pytest.approx(1.0)
        assert reach_for_expected_neighbors(4 * math.pi) == pytest.approx(2.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            expected_neighbors(0.0)


class TestRangeDoubling:
    def test_six_db_per_doubling(self):
        assert range_doubling_cost_db(1.0) == pytest.approx(6.02, abs=0.01)

    def test_two_doublings(self):
        assert range_doubling_cost_db(2.0) == pytest.approx(12.04, abs=0.01)

    def test_zero_is_free(self):
        assert range_doubling_cost_db(0.0) == 0.0


class TestDesignPoint:
    def test_paper_processing_gain_range(self):
        # Section 6: "the proper amount of processing gain is determined
        # to lie in the range of 20 to 25 db" — for metro scales at the
        # duty cycles the paper considers reasonable (around 1/2 to 1).
        for station_count in (1e6, 1e9, 1e12):
            for duty in (0.5, 0.75, 1.0):
                point = DesignPoint(station_count=station_count, duty_cycle=duty)
                assert 17.0 < point.processing_gain_db < 27.0

    def test_nominal_point_in_range(self):
        point = DesignPoint(station_count=1e9, duty_cycle=1.0)
        assert 20.0 <= point.processing_gain_db <= 25.0

    def test_budget_lines_sum(self):
        point = DesignPoint(station_count=1e8, duty_cycle=0.5)
        assert point.processing_gain_db == pytest.approx(
            -point.characteristic_snr_db
            + point.detection_margin_db
            + point.reach_margin_db
        )

    def test_expected_neighbors_at_design_reach(self):
        point = DesignPoint(station_count=1e6, duty_cycle=1.0)
        assert point.expected_neighbors_at_reach == pytest.approx(4 * math.pi)

    def test_summary_keys(self):
        summary = DesignPoint(1e6, 0.5).summary()
        assert {
            "station_count",
            "duty_cycle",
            "characteristic_snr_db",
            "detection_margin_db",
            "reach_margin_db",
            "processing_gain_db",
            "expected_neighbors",
        } <= set(summary)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DesignPoint(station_count=1.0, duty_cycle=0.5)
        with pytest.raises(ValueError):
            DesignPoint(station_count=1e6, duty_cycle=1.5)
