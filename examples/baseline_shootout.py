#!/usr/bin/env python
"""Channel-access shootout: the paper's scheme versus the classics.

Runs the same 40-station network — identical placement, routes, powers,
and traffic — under five channel access protocols across a range of
offered loads, and prints the comparison the paper's Section 2 implies:

* ALOHA / slotted ALOHA (the lineage the simple interference models
  produced),
* CSMA (carrier sensing against the spread-spectrum din),
* MACA (RTS/CTS control traffic per packet),
* the MAC-frontier contenders (SIC-ALOHA, multi-level power,
  SINR-adaptive persistence),
* the paper's schedule-based collision-free scheme.

The contender list is the MAC registry — register a new scheme with
:func:`repro.mac.register_mac` and it appears here by name.

Each run streams its typed events into a
:class:`~repro.obs.MetricTimelines` sink, which is where every printed
number comes from — losses, control overhead, delay.

Run::

    python examples/baseline_shootout.py
"""

import repro
from repro.mac import mac_names
from repro.net import NetworkConfig
from repro.obs import Instrumentation, MetricTimelines


def main() -> None:
    loads = (0.02, 0.05, 0.1, 0.15)
    station_count = 40
    duration_slots = 500.0
    seed = 2024

    header = (
        f"{'mac':>14s} {'load/slot':>9s} {'e2e':>6s} {'loss%':>7s} "
        f"{'ctrl/hop':>9s} {'delay (slots)':>14s}"
    )
    print(f"{station_count} stations, {duration_slots:.0f} slots per run\n")
    print(header)
    print("-" * len(header))

    scenario_by_load = {
        load: repro.Scenario(
            station_count=station_count,
            load_packets_per_slot=load,
            duration_slots=duration_slots,
            config=NetworkConfig(seed=seed),
        )
        for load in loads
    }
    for load in loads:
        for name in mac_names():
            timelines = MetricTimelines(station_count=station_count)
            outcome = repro.simulate(
                scenario_by_load[load],
                seed=seed,
                mac=name,
                instrumentation=Instrumentation((timelines,)),
            )
            loss_pct = (
                100.0 * timelines.losses_total / timelines.transmissions
                if timelines.transmissions
                else 0.0
            )
            delay_slots = (
                timelines.mean_delay() / outcome.network.budget.slot_time
            )
            print(
                f"{name:>14s} {load:>9.2f} "
                f"{timelines.end_to_end_deliveries:>6d} "
                f"{loss_pct:>6.2f}% {timelines.control_overhead():>9.2f} "
                f"{delay_slots:>14.1f}"
            )
        print()

    print(
        "The scheme's loss column is exactly zero at every load — not a\n"
        "small number, zero: the design-rate calibration guarantees the\n"
        "SIR criterion under any concurrency the schedules permit, and\n"
        "Type 2/3 collisions are structurally impossible.  The baselines\n"
        "lose packets despite enjoying oracle ACKs and free global\n"
        "synchronisation, and MACA pays ~2 control bursts per data hop."
    )


if __name__ == "__main__":
    main()
