"""Connectivity versus reach (Section 6; experiment T9).

Section 6 reasons about whether cooperative forwarding yields a fully
connected network: at reach ``1/sqrt(rho)`` a station expects only pi
(~3.14) neighbours — "not a far enough reach to ensure connectivity" —
while doubling the reach to ``2/sqrt(rho)`` (at a 6 dB / 4x throughput
cost) yields ``4 pi`` (~12.6) expected neighbours, which "should
suffice in most situations".  These helpers measure the empirical side
of that claim: neighbour-count distributions and the fraction of
stations in the largest connected component as reach grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.design import expected_neighbors
from repro.propagation.geometry import Placement

__all__ = ["ConnectivityPoint", "connectivity_sweep", "largest_component_fraction"]


def _adjacency(placement: Placement, reach: float) -> np.ndarray:
    distances = placement.distances()
    adjacency = distances <= reach
    np.fill_diagonal(adjacency, False)
    return adjacency


def largest_component_fraction(placement: Placement, reach: float) -> float:
    """Fraction of stations in the largest connected component at a
    given hop reach (union-find over the reach graph)."""
    if reach <= 0.0:
        raise ValueError("reach must be positive")
    count = placement.count
    parent = list(range(count))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    adjacency = _adjacency(placement, reach)
    rows, cols = np.nonzero(np.triu(adjacency, k=1))
    for a, b in zip(rows.tolist(), cols.tolist()):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
    sizes: dict = {}
    for station in range(count):
        root = find(station)
        sizes[root] = sizes.get(root, 0) + 1
    return max(sizes.values()) / count


@dataclass(frozen=True)
class ConnectivityPoint:
    """Connectivity metrics at one reach factor.

    Attributes:
        reach_factor: hop reach in units of ``1/sqrt(rho)``.
        expected_neighbors: the analytic ``pi * reach_factor^2``.
        mean_neighbors: measured mean neighbour count.
        max_neighbors: measured maximum neighbour count.
        isolated_fraction: stations with no neighbour at all.
        giant_component_fraction: largest-component share of stations.
    """

    reach_factor: float
    expected_neighbors: float
    mean_neighbors: float
    max_neighbors: int
    isolated_fraction: float
    giant_component_fraction: float


def connectivity_sweep(
    placement: Placement, reach_factors: Sequence[float]
) -> List[ConnectivityPoint]:
    """Measure connectivity at each reach factor for one placement."""
    if not reach_factors:
        raise ValueError("need at least one reach factor")
    unit = placement.characteristic_length
    points = []
    for factor in reach_factors:
        if factor <= 0.0:
            raise ValueError("reach factors must be positive")
        reach = factor * unit
        adjacency = _adjacency(placement, reach)
        degrees = adjacency.sum(axis=1)
        points.append(
            ConnectivityPoint(
                reach_factor=factor,
                expected_neighbors=expected_neighbors(factor),
                mean_neighbors=float(degrees.mean()),
                max_neighbors=int(degrees.max()),
                isolated_fraction=float((degrees == 0).mean()),
                giant_component_fraction=largest_component_fraction(
                    placement, reach
                ),
            )
        )
    return points
