"""API quality gates: docstrings and export hygiene across the package."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.clock",
    "repro.core",
    "repro.mac",
    "repro.net",
    "repro.propagation",
    "repro.radio",
    "repro.routing",
    "repro.sim",
    "repro.experiments",
    "repro.faults",
    "repro.obs",
    "repro.parallel",
]


def walk_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            yield importlib.import_module(f"{package_name}.{info.name}")


def public_members(module):
    for name in getattr(module, "__all__", []):
        yield name, getattr(module, name)


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            module.__name__ for module in walk_modules() if not module.__doc__
        ]
        assert undocumented == []

    def test_every_public_callable_is_documented(self):
        undocumented = []
        for module in walk_modules():
            for name, member in public_members(module):
                if inspect.isfunction(member) or inspect.isclass(member):
                    if not inspect.getdoc(member):
                        undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_every_public_class_method_is_documented(self):
        undocumented = []
        for module in walk_modules():
            for name, member in public_members(module):
                if not inspect.isclass(member):
                    continue
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if inspect.isfunction(method) and not inspect.getdoc(method):
                        undocumented.append(
                            f"{module.__name__}.{name}.{method_name}"
                        )
        assert undocumented == []


class TestExports:
    def test_all_lists_resolve(self):
        for module in walk_modules():
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module.__name__}.{name} dangles"

    def test_subpackage_inits_have_all(self):
        for package_name in PACKAGES:
            module = importlib.import_module(package_name)
            assert getattr(module, "__all__", None), (
                f"{package_name} lacks __all__"
            )


#: Analytic experiments with no stochastic component and hence no seed.
SEEDLESS_EXPERIMENTS = {"A5", "F2", "T8"}


class TestExperimentEntryPoints:
    """Every experiment exposes the normalized uniform entry point."""

    def experiments(self):
        from repro.experiments import all_experiments

        return sorted(all_experiments().items())

    def test_every_run_accepts_params_bundle(self):
        for experiment_id, run in self.experiments():
            assert getattr(run, "__accepts_params__", False), (
                f"{experiment_id}.run lacks the ExperimentParams shape"
            )
            assert run.experiment_id == experiment_id

    def test_every_parameter_has_a_default(self):
        for experiment_id, run in self.experiments():
            signature = inspect.signature(run.__wrapped__)
            missing = [
                name
                for name, parameter in signature.parameters.items()
                if parameter.default is inspect.Parameter.empty
            ]
            assert missing == [], (
                f"{experiment_id}.run has defaultless params {missing}"
            )

    def test_stochastic_experiments_take_a_seed_not_an_rng(self):
        for experiment_id, run in self.experiments():
            parameters = inspect.signature(run.__wrapped__).parameters
            assert "rng" not in parameters, (
                f"{experiment_id}.run takes an rng; pass a seed instead"
            )
            if experiment_id not in SEEDLESS_EXPERIMENTS:
                assert "seed" in parameters, (
                    f"{experiment_id}.run lacks a seed parameter"
                )

    def test_params_bundle_matches_keyword_shim(self):
        from repro.experiments import ExperimentParams, get_experiment

        run = get_experiment("F2")
        via_params = run(ExperimentParams())
        via_kwargs = run()
        assert via_params.rows == via_kwargs.rows

    def test_params_bundle_rejects_mixed_call(self):
        from repro.experiments import ExperimentParams, get_experiment

        with pytest.raises(TypeError):
            get_experiment("F2")(ExperimentParams(), seed=1)
