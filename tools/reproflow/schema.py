"""Event-schema pass: emit sites, registry completeness, schema lock.

The typed observability layer (PR 5) froze every trace event as a
dataclass in ``repro/obs/events.py`` with a stable ``kind/vN`` schema
id.  Three things can silently rot that contract:

1. an ``instr.emit(SomeEvent(...))`` call site drifting out of step
   with the dataclass fields (wrong arity, unknown keyword, missing
   required field) — a runtime TypeError on a path that only fires
   under instrumentation;
2. a new event class that never lands in ``EVENT_TYPES`` (or
   ``__all__``), so sinks cannot decode it back;
3. an event's **fields** changing without a ``SCHEMA`` bump, making
   previously-recorded traces decode into the wrong shape.

This pass extracts the event classes from the events module AST (no
imports executed), checks every resolvable emit call site project-wide
against the field lists, verifies registry completeness, and compares
the extracted schemas against the committed lock file
(``tools/reproflow/schema.lock``).  A field change without a version
bump is an error; a legitimate version bump is an error *until the
lock is regenerated* with ``--write-locks`` — so either way, CI sees
the drift.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from tools.reproflow.findings import Finding
from tools.reproflow.project import ModuleInfo, Project, dotted_name

__all__ = [
    "EventSchema",
    "extract_event_schemas",
    "run_schema_pass",
    "schema_lock_payload",
    "write_schema_lock",
]


@dataclass(frozen=True)
class EventField:
    """One dataclass field of an event type."""

    name: str
    annotation: str
    has_default: bool


@dataclass(frozen=True)
class EventSchema:
    """The extracted schema of one event class."""

    cls: str
    kind: str
    version: int
    fields: Tuple[EventField, ...]

    @property
    def schema_id(self) -> str:
        """The ``kind/vN`` wire identifier."""
        return f"{self.kind}/v{self.version}"

    def field_payload(self) -> List[Dict[str, object]]:
        """JSON-safe field list for the lock file."""
        return [
            {
                "name": f.name,
                "type": f.annotation,
                "default": f.has_default,
            }
            for f in self.fields
        ]


def _class_assign(node: ast.ClassDef, name: str) -> Optional[ast.expr]:
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return item.value
    return None


def _own_fields(node: ast.ClassDef) -> List[EventField]:
    """Dataclass fields declared directly on ``node`` (AnnAssign only —
    plain assignments like KIND/SCHEMA are class attributes, not
    fields)."""
    fields: List[EventField] = []
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            annotation = ast.unparse(item.annotation)
            if annotation.startswith("ClassVar"):
                continue
            fields.append(
                EventField(
                    name=item.target.id,
                    annotation=annotation,
                    has_default=item.value is not None,
                )
            )
    return fields


def extract_event_schemas(
    events_module: ModuleInfo, base_class: str = "TraceEvent"
) -> Tuple[Dict[str, EventSchema], List[str], Optional[Finding]]:
    """Extract every event schema from the events module AST.

    Returns ``(schemas_by_class, subclass_order, error)``; ``error`` is
    a finding when the base class itself cannot be found.
    """
    classes: Dict[str, ast.ClassDef] = {
        node.name: node
        for node in events_module.tree.body
        if isinstance(node, ast.ClassDef)
    }
    if base_class not in classes:
        return {}, [], Finding(
            pass_id="schema",
            path=events_module.path.as_posix(),
            line=1,
            message=f"events module defines no {base_class!r} base class",
        )

    def is_event(name: str, depth: int = 0) -> bool:
        if name == base_class:
            return True
        node = classes.get(name)
        if node is None or depth > 8:
            return False
        return any(
            isinstance(base, ast.Name) and is_event(base.id, depth + 1)
            for base in node.bases
        )

    def inherited_chain(name: str) -> List[ast.ClassDef]:
        chain: List[ast.ClassDef] = []
        current: Optional[str] = name
        while current is not None and current in classes:
            node = classes[current]
            chain.append(node)
            parents = [
                base.id for base in node.bases if isinstance(base, ast.Name)
            ]
            current = parents[0] if parents else None
        return list(reversed(chain))

    schemas: Dict[str, EventSchema] = {}
    order: List[str] = []
    for name, node in classes.items():
        if name == base_class or not is_event(name):
            continue
        order.append(name)
        fields: List[EventField] = []
        kind = name.lower()
        version = 1
        for ancestor in inherited_chain(name):
            fields.extend(_own_fields(ancestor))
            kind_node = _class_assign(ancestor, "KIND")
            if isinstance(kind_node, ast.Constant) and isinstance(
                kind_node.value, str
            ):
                kind = kind_node.value
            schema_node = _class_assign(ancestor, "SCHEMA")
            if isinstance(schema_node, ast.Constant) and isinstance(
                schema_node.value, int
            ):
                version = schema_node.value
        schemas[name] = EventSchema(
            cls=name, kind=kind, version=version, fields=tuple(fields)
        )
    return schemas, order, None


def _registry_classes(events_module: ModuleInfo) -> List[str]:
    """Class names listed in the EVENT_TYPES dict-comprehension tuple
    (or dict literal of ``kind: Class`` entries)."""
    for node in events_module.tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        named = any(
            isinstance(t, ast.Name) and t.id == "EVENT_TYPES" for t in targets
        )
        if not named or node.value is None:
            continue
        value = node.value
        names: List[str] = []
        if isinstance(value, ast.DictComp):
            iterable = value.generators[0].iter
            if isinstance(iterable, (ast.Tuple, ast.List)):
                for element in iterable.elts:
                    if isinstance(element, ast.Name):
                        names.append(element.id)
        elif isinstance(value, ast.Dict):
            for element in value.values:
                if isinstance(element, ast.Name):
                    names.append(element.id)
        return names
    return []


# -- emit call-site checking ------------------------------------------


def _bind_emit_args(
    schema: EventSchema, call: ast.Call
) -> Optional[str]:
    """Check one ``Event(...)`` construction against its field list.

    Returns an error message, or ``None`` when the construction binds.
    """
    field_names = [f.name for f in schema.fields]
    required = {f.name for f in schema.fields if not f.has_default}
    if len(call.args) > len(field_names):
        return (
            f"{schema.cls}(...) takes {len(field_names)} field(s) "
            f"{tuple(field_names)} but got {len(call.args)} positional "
            "argument(s)"
        )
    bound = set(field_names[: len(call.args)])
    for keyword in call.keywords:
        if keyword.arg is None:
            return None  # **kwargs splat: cannot check statically
        if keyword.arg not in field_names:
            return (
                f"{schema.cls}(...) has no field {keyword.arg!r} "
                f"(fields: {', '.join(field_names)}; schema "
                f"{schema.schema_id})"
            )
        if keyword.arg in bound:
            return f"{schema.cls}(...) got field {keyword.arg!r} twice"
        bound.add(keyword.arg)
    missing = sorted(required - bound)
    if missing:
        return (
            f"{schema.cls}(...) is missing required field(s) "
            f"{', '.join(missing)} (schema {schema.schema_id})"
        )
    return None


def _event_class_at(
    project: Project, module: str, call: ast.Call, events_module: str
) -> Optional[str]:
    """The event-class name constructed by ``call``, when its callee
    resolves into the events module."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    symbol = project.resolve_dotted(module, dotted)
    if (
        symbol is not None
        and symbol.kind == "class"
        and symbol.module == events_module
    ):
        return symbol.name
    return None


def check_emit_sites(
    project: Project,
    schemas: Dict[str, EventSchema],
    events_module: str,
) -> List[Finding]:
    """Validate every ``*.emit(Event(...))`` call site in the project."""
    findings: List[Finding] = []
    for module_name, info in sorted(project.modules.items()):
        rel = info.rel_path(project.root)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_emit = isinstance(func, ast.Attribute) and func.attr == "emit"
            if not is_emit:
                continue
            for argument in node.args:
                if not isinstance(argument, ast.Call):
                    continue
                cls = _event_class_at(
                    project, module_name, argument, events_module
                )
                if cls is None or cls not in schemas:
                    continue
                error = _bind_emit_args(schemas[cls], argument)
                if error is not None:
                    findings.append(
                        Finding(
                            pass_id="schema",
                            path=rel,
                            line=argument.lineno,
                            symbol=f"{module_name}:emit({cls})",
                            message=f"emit call site drifted: {error}",
                        )
                    )
    return findings


# -- lock file --------------------------------------------------------


def schema_lock_payload(schemas: Dict[str, EventSchema]) -> Dict[str, object]:
    """The lock-file document for the current schemas."""
    events = {
        schema.kind: {
            "class": schema.cls,
            "schema_id": schema.schema_id,
            "version": schema.version,
            "fields": schema.field_payload(),
        }
        for schema in schemas.values()
    }
    blob = json.dumps(events, sort_keys=True).encode("utf-8")
    return {
        "comment": (
            "Frozen event schemas (kind/vN + field lists). Regenerate "
            "after an intentional schema change (and SCHEMA bump) with: "
            "python -m tools.reproflow --write-locks"
        ),
        "fingerprint": hashlib.blake2b(blob, digest_size=16).hexdigest(),
        "events": events,
    }


def write_schema_lock(path: Path, schemas: Dict[str, EventSchema]) -> None:
    """Write (or rewrite) the committed schema lock file."""
    path.write_text(
        json.dumps(schema_lock_payload(schemas), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )


def check_schema_lock(
    lock_path: Path, schemas: Dict[str, EventSchema], events_rel_path: str
) -> List[Finding]:
    """Diff the extracted schemas against the committed lock."""
    lock_rel = lock_path.as_posix()
    if not lock_path.exists():
        return [
            Finding(
                pass_id="schema",
                path=lock_rel,
                line=0,
                message=(
                    "schema lock file is missing; generate it with "
                    "python -m tools.reproflow --write-locks"
                ),
            )
        ]
    try:
        lock = json.loads(lock_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return [
            Finding(
                pass_id="schema",
                path=lock_rel,
                line=0,
                message=f"schema lock file is unreadable: {exc}",
            )
        ]
    current = schema_lock_payload(schemas)
    if lock.get("fingerprint") == current["fingerprint"]:
        return []

    findings: List[Finding] = []
    locked_events: Dict[str, Dict] = lock.get("events", {})
    current_events: Dict[str, Dict] = current["events"]  # type: ignore[assignment]
    for kind, locked in sorted(locked_events.items()):
        now = current_events.get(kind)
        if now is None:
            findings.append(
                Finding(
                    pass_id="schema",
                    path=events_rel_path,
                    line=0,
                    message=(
                        f"event kind {kind!r} ({locked.get('class')}) was "
                        "removed but is still in schema.lock; if intentional, "
                        "regenerate with --write-locks"
                    ),
                )
            )
            continue
        if now["fields"] != locked.get("fields"):
            if now["version"] == locked.get("version"):
                findings.append(
                    Finding(
                        pass_id="schema",
                        path=events_rel_path,
                        line=0,
                        symbol=str(now["class"]),
                        message=(
                            f"fields of {now['class']} changed but its "
                            f"schema id is still {now['schema_id']}; bump "
                            "SCHEMA and regenerate the lock (--write-locks) "
                            "so recorded traces stay decodable"
                        ),
                    )
                )
            else:
                findings.append(
                    Finding(
                        pass_id="schema",
                        path=lock_rel,
                        line=0,
                        symbol=str(now["class"]),
                        message=(
                            f"schema.lock is stale for {now['class']} "
                            f"(lock {locked.get('schema_id')}, code "
                            f"{now['schema_id']}); regenerate with "
                            "--write-locks"
                        ),
                    )
                )
        elif now["version"] != locked.get("version"):
            findings.append(
                Finding(
                    pass_id="schema",
                    path=lock_rel,
                    line=0,
                    symbol=str(now["class"]),
                    message=(
                        f"schema.lock is stale for {now['class']} "
                        f"(lock {locked.get('schema_id')}, code "
                        f"{now['schema_id']}); regenerate with --write-locks"
                    ),
                )
            )
    for kind, now in sorted(current_events.items()):
        if kind not in locked_events:
            findings.append(
                Finding(
                    pass_id="schema",
                    path=lock_rel,
                    line=0,
                    symbol=str(now["class"]),
                    message=(
                        f"new event kind {kind!r} ({now['class']}) is not in "
                        "schema.lock; regenerate with --write-locks"
                    ),
                )
            )
    if not findings:
        findings.append(
            Finding(
                pass_id="schema",
                path=lock_rel,
                line=0,
                message=(
                    "schema.lock fingerprint mismatch; regenerate with "
                    "--write-locks"
                ),
            )
        )
    return findings


def run_schema_pass(
    project: Project,
    events_module: str,
    lock_path: Path,
) -> List[Finding]:
    """Registry completeness + emit call sites + lock diff."""
    findings: List[Finding] = []
    info = project.modules.get(events_module)
    if info is None:
        return [
            Finding(
                pass_id="schema",
                path=events_module,
                line=0,
                message=f"events module {events_module!r} not found in project",
            )
        ]
    rel = info.rel_path(project.root)
    schemas, order, error = extract_event_schemas(info)
    if error is not None:
        return [error]

    registered = _registry_classes(info)
    listed = set(info.dunder_all or [])
    kinds_seen: Dict[str, str] = {}
    for name in order:
        schema = schemas[name]
        if name not in registered:
            findings.append(
                Finding(
                    pass_id="schema",
                    path=rel,
                    line=info.symbols[name].node.lineno,
                    symbol=name,
                    message=(
                        f"event class {name} (kind {schema.kind!r}) is not "
                        "in the EVENT_TYPES registry; sinks cannot decode it"
                    ),
                )
            )
        if info.dunder_all is not None and name not in listed:
            findings.append(
                Finding(
                    pass_id="schema",
                    path=rel,
                    line=info.symbols[name].node.lineno,
                    symbol=name,
                    message=f"event class {name} is missing from __all__",
                )
            )
        if schema.kind in kinds_seen:
            findings.append(
                Finding(
                    pass_id="schema",
                    path=rel,
                    line=info.symbols[name].node.lineno,
                    symbol=name,
                    message=(
                        f"duplicate event kind {schema.kind!r} (also used by "
                        f"{kinds_seen[schema.kind]})"
                    ),
                )
            )
        kinds_seen.setdefault(schema.kind, name)
    for name in registered:
        if name not in schemas:
            findings.append(
                Finding(
                    pass_id="schema",
                    path=rel,
                    line=0,
                    symbol=name,
                    message=(
                        f"EVENT_TYPES registers {name!r}, which is not a "
                        "TraceEvent subclass in the events module"
                    ),
                )
            )

    findings.extend(check_emit_sites(project, schemas, events_module))
    findings.extend(check_schema_lock(lock_path, schemas, rel))
    return findings
