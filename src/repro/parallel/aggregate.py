"""Deterministic aggregation of task results.

Results arrive from the pool already re-ordered into task order, so
everything here is a pure function of the (ordered) result list —
aggregation output is independent of completion order and worker
count by construction.  Replication statistics use the same Welford
accumulator as the simulator's own stats, summarising each numeric
metric as mean/stddev/min/max over replication seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.parallel.task import TaskResult, payload_to_report
from repro.sim.stats import Welford

__all__ = [
    "MetricSummary",
    "summarize",
    "summarize_rows",
    "reports_in_order",
    "failed_results",
]


@dataclass(frozen=True)
class MetricSummary:
    """Replication statistics of one numeric metric.

    Attributes:
        count: number of replications summarised.
        mean: sample mean.
        stddev: sample standard deviation (0 for a single replication).
        minimum: smallest observation.
        maximum: largest observation.
    """

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float


def summarize(values: Iterable[float]) -> MetricSummary:
    """Mean/stddev/min/max of a value sequence (Welford, one pass)."""
    accumulator = Welford()
    for value in values:
        accumulator.add(float(value))
    if accumulator.count == 0:
        raise ValueError("cannot summarise an empty value sequence")
    stddev = accumulator.stddev
    if math.isnan(stddev):
        stddev = 0.0
    return MetricSummary(
        count=accumulator.count,
        mean=accumulator.mean,
        stddev=stddev,
        minimum=accumulator.minimum,
        maximum=accumulator.maximum,
    )


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def summarize_rows(
    columns: Sequence[str],
    replicated_rows: Sequence[Sequence[Tuple[Any, ...]]],
) -> List[Tuple[Any, ...]]:
    """Summarise aligned report rows across replications.

    Args:
        columns: the report's column names.
        replicated_rows: one row list per replication; rows are aligned
            by position (every replication of an experiment emits the
            same row structure, only the measured values differ).

    Returns:
        Rows of ``(row label, column, count, mean, stddev, min, max)``
        — one per (row position, numeric column).  The row label is the
        first non-numeric cell of the row (e.g. the MAC name in T7), or
        the row index when every cell is numeric.  Non-numeric columns
        and ragged row positions are skipped.
    """
    if not replicated_rows:
        return []
    aligned = min(len(rows) for rows in replicated_rows)
    summary: List[Tuple[Any, ...]] = []
    for row_index in range(aligned):
        first = replicated_rows[0][row_index]
        label: Any = row_index
        for cell in first:
            if not _is_number(cell):
                label = cell
                break
        for column_index, name in enumerate(columns):
            if column_index >= len(first) or not _is_number(first[column_index]):
                continue
            values = [
                float(rows[row_index][column_index])
                for rows in replicated_rows
            ]
            stats = summarize(values)
            summary.append(
                (
                    label,
                    name,
                    stats.count,
                    stats.mean,
                    stats.stddev,
                    stats.minimum,
                    stats.maximum,
                )
            )
    return summary


def reports_in_order(results: Sequence[TaskResult]) -> List[Any]:
    """Rebuild ``ExperimentReport`` objects from successful results,
    preserving task order (errored tasks contribute ``None``)."""
    reports: List[Optional[Any]] = []
    for result in results:
        if result.ok and result.payload is not None:
            reports.append(payload_to_report(result.payload))
        else:
            reports.append(None)
    return reports


def failed_results(results: Sequence[TaskResult]) -> Dict[str, str]:
    """Map of task id to error message for every failed task."""
    return {
        result.task_id: result.error or "unknown failure"
        for result in results
        if not result.ok
    }
