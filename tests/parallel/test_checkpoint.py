"""Checkpoint journals and the pool watchdog: resume must be invisible.

The pinned property: a run killed mid-flight and resumed from its
journal finishes with rows, payload digests, and a final results
digest bit-identical to an uninterrupted run.
"""

import json

import pytest

from repro.parallel.checkpoint import (
    ResultJournal,
    plan_fingerprint,
    record_digest,
    record_to_result,
    result_to_record,
)
from repro.parallel.pool import run_tasks
from repro.parallel.task import TaskSpec, results_digest

WORKERS = "tests.parallel.workers"


def echo_spec(task_id, **params):
    return TaskSpec(
        task_id=task_id,
        kind="function",
        target=f"{WORKERS}:echo",
        params=params,
    )


def make_specs(count=4):
    return [echo_spec(f"task-{i}", value=i) for i in range(count)]


class TestPlanFingerprint:
    def test_same_plan_same_fingerprint(self):
        assert plan_fingerprint(make_specs()) == plan_fingerprint(make_specs())

    def test_param_change_changes_fingerprint(self):
        other = make_specs()
        other[0] = echo_spec("task-0", value=999)
        assert plan_fingerprint(make_specs()) != plan_fingerprint(other)

    def test_scheduling_knobs_do_not_change_fingerprint(self):
        relaxed = [
            TaskSpec(
                task_id=spec.task_id,
                kind=spec.kind,
                target=spec.target,
                params=spec.params,
                timeout_s=60.0,
                retries=5,
            )
            for spec in make_specs()
        ]
        assert plan_fingerprint(make_specs()) == plan_fingerprint(relaxed)


class TestRecordHelpers:
    """The shared (de)serialisers the journal and the result cache both
    build on: lossless, canonical, digest-stable."""

    def test_result_record_round_trip(self):
        original = run_tasks([echo_spec("t", value=7, tag="x")], jobs=1)[0]
        rebuilt = record_to_result(result_to_record(original))
        assert rebuilt == original

    def test_failed_result_round_trip(self):
        failed = run_tasks(
            [
                TaskSpec(
                    task_id="boom",
                    kind="function",
                    target=f"{WORKERS}:explode",
                    params={},
                )
            ],
            jobs=1,
        )[0]
        rebuilt = record_to_result(result_to_record(failed))
        assert not rebuilt.ok
        assert rebuilt.error == failed.error

    def test_record_digest_is_order_insensitive(self):
        assert record_digest({"b": 2, "a": 1}) == record_digest(
            {"a": 1, "b": 2}
        )
        assert record_digest({"a": 1}) != record_digest({"a": 2})

    def test_results_accessor_returns_recorded_order(self, tmp_path):
        specs = make_specs(3)
        with ResultJournal(tmp_path / "j.jsonl", specs) as journal:
            run_tasks(specs, jobs=1, journal=journal)
            recorded = journal.results()
        assert [r.task_id for r in recorded] == [s.task_id for s in specs]
        assert recorded == list(journal.completed.values())


class TestJournalRoundtrip:
    def test_fresh_journal_is_empty(self, tmp_path):
        with ResultJournal(tmp_path / "j.jsonl", make_specs()) as journal:
            assert journal.completed == {}

    def test_records_survive_reopen(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = make_specs()
        with ResultJournal(path, specs) as journal:
            run_tasks(specs[:2] + specs[2:], jobs=1, journal=journal)
        with ResultJournal(path, specs) as journal:
            assert set(journal.completed) == {s.task_id for s in specs}

    def test_reused_results_are_digest_identical(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = make_specs()
        baseline = run_tasks(specs, jobs=1)
        with ResultJournal(path, specs) as journal:
            run_tasks(specs, jobs=1, journal=journal)
        with ResultJournal(path, specs) as journal:
            resumed = run_tasks(specs, jobs=1, journal=journal)
        assert results_digest(resumed) == results_digest(baseline)
        assert [r.payload for r in resumed] == [r.payload for r in baseline]

    def test_rejects_foreign_result(self, tmp_path):
        with ResultJournal(tmp_path / "j.jsonl", make_specs()) as journal:
            stray = run_tasks([echo_spec("stranger")], jobs=1)[0]
            with pytest.raises(ValueError):
                journal.record(stray)


class TestJournalSafety:
    def test_plan_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ResultJournal(path, make_specs()) as journal:
            run_tasks(make_specs(), jobs=1, journal=journal)
        other = make_specs()
        other[1] = echo_spec("task-1", value=-1)
        with pytest.raises(ValueError, match="different task plan"):
            ResultJournal(path, other)

    def test_non_journal_file_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(ValueError, match="not a task journal"):
            ResultJournal(path, make_specs())

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = make_specs()
        with ResultJournal(path, specs) as journal:
            run_tasks(specs[:3], jobs=1, journal=journal)
        # Simulate a kill mid-write: a truncated final line.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"record": {"task_id": "task-3", "ok"')
        with ResultJournal(path, specs) as journal:
            assert set(journal.completed) == {"task-0", "task-1", "task-2"}
        # The reopen rewrote the file clean.
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + 3
        for line in lines:
            json.loads(line)

    def test_tampered_record_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = make_specs()
        with ResultJournal(path, specs) as journal:
            run_tasks(specs, jobs=1, journal=journal)
        lines = path.read_text().splitlines()
        tampered = lines[2].replace('"value": 1', '"value": 7')
        assert tampered != lines[2]
        path.write_text("\n".join(lines[:2] + [tampered] + lines[3:]) + "\n")
        with ResultJournal(path, specs) as journal:
            # Verified prefix survives; the tampered record and its
            # successors are discarded.
            assert set(journal.completed) == {"task-0"}


class TestKillAndResume:
    def test_interrupted_run_resumes_to_identical_digest(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = make_specs(6)
        baseline = run_tasks(specs, jobs=1)

        class Kill(Exception):
            pass

        def die_after_two(done, _total, _result):
            if done == 2:
                raise Kill()

        with pytest.raises(Kill):
            with ResultJournal(path, specs) as journal:
                run_tasks(specs, jobs=1, progress=die_after_two, journal=journal)

        with ResultJournal(path, specs) as journal:
            assert 0 < len(journal.completed) < len(specs)
            resumed = run_tasks(specs, jobs=1, journal=journal)
        assert results_digest(resumed) == results_digest(baseline)
        assert [r.payload_digest for r in resumed] == [
            r.payload_digest for r in baseline
        ]

    def test_resume_skips_completed_tasks(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = make_specs(3)
        with ResultJournal(path, specs) as journal:
            run_tasks(specs, jobs=1, journal=journal)
        executed = []
        with ResultJournal(path, specs) as journal:
            run_tasks(
                specs,
                jobs=1,
                journal=journal,
                progress=lambda d, t, r: executed.append(r.task_id),
            )
        # All three reported through progress, but all came from the
        # journal (attempts stay as recorded, no re-execution).
        assert executed == ["task-0", "task-1", "task-2"]


class TestPoolRobustness:
    def test_retries_exhausted_yields_structured_error(self):
        spec = TaskSpec(
            task_id="crasher",
            kind="function",
            target=f"{WORKERS}:crash",
            params={},
            retries=1,
        )
        ok = echo_spec("fine", value=1)
        results = run_tasks([spec, ok], jobs=2)
        crashed = results[0]
        assert not crashed.ok
        assert "died" in crashed.error
        assert crashed.attempts == 2  # first try + one retry
        assert results[1].ok

    def test_watchdog_converts_hang_into_timeout(self):
        hung = TaskSpec(
            task_id="hang",
            kind="function",
            target=f"{WORKERS}:sleep_forever",
            params={},
            retries=0,
        )
        ok = echo_spec("fine", value=1)
        results = run_tasks([hung, ok], jobs=2, watchdog_s=1.0)
        assert not results[0].ok
        assert "watchdog" in results[0].error
        assert results[1].ok

    def test_spec_timeout_beats_watchdog_in_message(self):
        hung = TaskSpec(
            task_id="hang",
            kind="function",
            target=f"{WORKERS}:sleep_forever",
            params={},
            timeout_s=1.0,
            retries=0,
        )
        filler = echo_spec("fine", value=1)
        results = run_tasks([hung, filler], jobs=2, watchdog_s=30.0)
        assert not results[0].ok
        assert "timed out" in results[0].error

    def test_watchdog_must_be_positive(self):
        with pytest.raises(ValueError):
            run_tasks(make_specs(), jobs=2, watchdog_s=0.0)
