"""Tests for network assembly, calibration, and end-to-end runs."""

import math

import numpy as np
import pytest

from repro.core.reception import required_sir
from repro.net.network import NetworkConfig, build_network
from repro.net.traffic import PoissonTraffic
from repro.propagation.geometry import uniform_disk
from repro.sim.streams import RandomStreams


def loaded_network(count=20, seed=3, load=0.05, **config_overrides):
    placement = uniform_disk(count, radius=800.0, seed=seed)
    config = NetworkConfig(seed=seed, **config_overrides)
    network = build_network(placement, config, trace=True)
    rng = RandomStreams(seed + 1).stream("traffic")
    for origin in range(count):
        network.add_traffic(
            PoissonTraffic(
                origin=origin,
                rate=load / network.budget.slot_time,
                destinations=list(range(count)),
                size_bits=config.packet_size_bits,
                rng=rng,
            )
        )
    return network


class TestCalibration:
    def test_slot_is_four_packet_airtimes(self):
        network = loaded_network()
        budget = network.budget
        assert budget.slot_time == pytest.approx(4.0 * budget.packet_airtime)

    def test_threshold_consistent_with_rate(self):
        network = loaded_network()
        budget = network.budget
        assert required_sir(
            budget.data_rate_bps, network.config.bandwidth_hz, network.config.beta
        ) == pytest.approx(budget.sir_threshold)

    def test_delivery_at_target_clears_threshold_under_bound(self):
        # The zero-loss argument: target power over the worst
        # interference bound leaves the safety margin.
        network = loaded_network()
        budget = network.budget
        worst = float(budget.interference_bounds.max()) + budget.thermal_noise_w
        sir = network.config.target_delivered_w / worst
        assert sir >= budget.sir_threshold * network.config.safety_margin * 0.999

    def test_respecting_neighbors_raises_rate(self):
        with_courtesy = loaded_network(respect_neighbors=True)
        without = loaded_network(respect_neighbors=False)
        assert (
            with_courtesy.budget.data_rate_bps >= without.budget.data_rate_bps
        )

    def test_power_lookup_delivers_target(self):
        network = loaded_network()
        for station in network.stations[:5]:
            for hop in station.table.neighbors_in_use():
                power = station.power_for(hop)
                delivered = power * network.matrix.gain(hop, station.index)
                assert delivered == pytest.approx(
                    network.config.target_delivered_w, rel=1e-6
                ) or power == pytest.approx(
                    2.0 * network.config.target_delivered_w / network.budget.min_gain
                )

    def test_processing_gain_reported(self):
        network = loaded_network()
        budget = network.budget
        assert budget.processing_gain_db == pytest.approx(
            10.0 * math.log10(network.config.bandwidth_hz / budget.data_rate_bps)
        )


class TestRun:
    def test_zero_losses_under_the_scheme(self):
        network = loaded_network()
        result = network.run(300 * network.budget.slot_time)
        assert result.collision_free
        assert result.hop_deliveries == result.transmissions

    def test_packets_actually_flow(self):
        network = loaded_network()
        result = network.run(300 * network.budget.slot_time)
        assert result.originated > 0
        assert result.delivered_end_to_end > 0
        assert result.mean_delay > 0

    def test_result_consistency(self):
        network = loaded_network()
        result = network.run(200 * network.budget.slot_time)
        assert result.hop_deliveries + result.losses_total == result.transmissions
        assert 0.0 <= result.mean_duty_cycle <= result.max_duty_cycle <= 1.0

    def test_reproducible_with_same_seeds(self):
        first = loaded_network().run(150 * 1.0)
        second = loaded_network().run(150 * 1.0)
        assert first.transmissions == second.transmissions
        assert first.delivered_end_to_end == second.delivered_end_to_end

    def test_cannot_start_twice(self):
        network = loaded_network()
        network.start()
        with pytest.raises(RuntimeError):
            network.start()

    def test_traffic_origin_validated(self):
        network = loaded_network()
        with pytest.raises(ValueError):
            network.add_traffic(
                PoissonTraffic(
                    origin=999, rate=1.0, destinations=[0], size_bits=10.0,
                    rng=np.random.default_rng(0),
                )
            )


class TestConfigVariants:
    def test_fifo_queue_config(self):
        from repro.net.queueing import FifoQueue

        network = loaded_network(fifo_queues=True)
        assert isinstance(network.stations[0].queue, FifoQueue)

    def test_min_hop_routing_config(self):
        energy_net = loaded_network(min_hop_routing=False)
        hop_net = loaded_network(min_hop_routing=True)
        energy_costs = energy_net.tables[0].costs
        hop_costs = hop_net.tables[0].costs
        # Min-hop costs are integers (hop counts); energy costs are not.
        assert all(cost == int(cost) for cost in hop_costs.values())
        assert any(cost != int(cost) for cost in energy_costs.values())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(receive_fraction=0.0)
        with pytest.raises(ValueError):
            NetworkConfig(safety_margin=0.5)
        with pytest.raises(ValueError):
            NetworkConfig(clock_offset_span_slots=1.0)

    def test_routing_neighbor_counts_small(self):
        network = loaded_network(count=40, seed=11)
        counts = network.routing_neighbor_counts()
        assert max(counts) <= 8  # the paper's observed bound
