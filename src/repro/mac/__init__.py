"""Channel access protocols: the paper's scheme and classic baselines.

New contenders plug in through :mod:`repro.mac.registry` — register a
builder with :func:`register_mac` and every suite experiment picks the
scheme up by name.
"""

from repro.mac.aloha import AlohaMac
from repro.mac.arq import ArqConfig, ArqSublayer
from repro.mac.base import MacProtocol
from repro.mac.csma import CsmaMac
from repro.mac.maca import MacaMac
from repro.mac.multilevel_power import MultilevelPowerMac
from repro.mac.registry import (
    MacBuildContext,
    MacDescriptor,
    build_mac,
    get_mac,
    mac_factory,
    mac_names,
    mac_suite,
    register_mac,
)
from repro.mac.shepard import ShepardMac
from repro.mac.sic_aloha import SicAlohaMac
from repro.mac.sinr_adaptive import SinrAdaptiveMac
from repro.mac.tdma import TdmaMac, TdmaPlan, build_tdma_plan, greedy_coloring

__all__ = [
    "AlohaMac",
    "ArqConfig",
    "ArqSublayer",
    "CsmaMac",
    "MacBuildContext",
    "MacDescriptor",
    "MacProtocol",
    "MacaMac",
    "MultilevelPowerMac",
    "ShepardMac",
    "SicAlohaMac",
    "SinrAdaptiveMac",
    "TdmaMac",
    "TdmaPlan",
    "build_mac",
    "build_tdma_plan",
    "get_mac",
    "greedy_coloring",
    "mac_factory",
    "mac_names",
    "mac_suite",
    "register_mac",
]
