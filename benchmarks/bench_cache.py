"""Bench: cold vs warm sweep execution through the result cache.

The deliverable is ``BENCH_cache.json`` — the tracked record of what
the content-addressed cache buys.  Three timed configurations of the
same sanitized T7 sweep:

* **cold** — empty cache; every task executes and is written back;
* **warm** — identical plan against the populated store; every task
  must be a hit, and the whole ``to_payload()`` artifact (rows,
  summaries, digests) must be bit-identical to the cold run;
* **extended** — the plan with extra sweep points appended; the shared
  prefix is served from the cache (same seed-tree seeds, same content
  keys) and only the new points execute.

Run from the repo root::

    PYTHONPATH=src REPRO_SANITIZE=1 python benchmarks/bench_cache.py \
        --output BENCH_cache.json

Wall-clock use here times completed host-side runs only (this file is
a benchmark driver, not simulation code); no wall-clock value reaches
simulation state.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Any, Dict, Tuple

from repro.parallel.cache import ResultCache
from repro.parallel.sweep import SweepPlan, SweepResult, run_sweep
from repro.parallel.task import results_digest

#: The tracked workload: a sanitized T7 (offered load vs throughput)
#: sweep sized so the cold run takes seconds and the warm run must win
#: by orders of magnitude, not noise.
BASE_VALUES: Tuple[float, ...] = (0.02, 0.05, 0.08, 0.11)
EXTENDED_VALUES: Tuple[float, ...] = BASE_VALUES + (0.14, 0.17)
REPLICATIONS = 2
BASE_PARAMS: Dict[str, Any] = {"station_count": 16, "duration_slots": 300}


def _plan(values: Tuple[float, ...], root_seed: int = 0) -> SweepPlan:
    return SweepPlan(
        experiment_id="T7",
        parameter="loads_packets_per_slot",
        values=values,
        replications=REPLICATIONS,
        root_seed=root_seed,
        base_params=dict(BASE_PARAMS),
        sanitize=True,
    )


def _timed_sweep(
    plan: SweepPlan, cache_dir: str
) -> Tuple[SweepResult, ResultCache, float]:
    """Run ``plan`` against a *freshly opened* cache (so the session
    hit/miss counters describe exactly this run) and time it."""
    cache = ResultCache(cache_dir)
    started = time.perf_counter()
    outcome = run_sweep(plan, jobs=1, cache=cache)
    wall_s = time.perf_counter() - started
    if outcome.errors:
        raise RuntimeError(f"sweep failed: {outcome.errors}")
    return outcome, cache, wall_s


def _measurement(
    outcome: SweepResult, cache: ResultCache, wall_s: float
) -> Dict[str, Any]:
    session = cache.stats()["session"]
    return {
        "tasks": len(outcome.results),
        "wall_s": round(wall_s, 4),
        "hits": session["hits"],
        "misses": session["misses"],
        "written": session["puts"],
        "results_digest": results_digest(outcome.results),
    }


def bench_cache(cache_dir: str) -> Dict[str, Any]:
    """Time cold/warm/extended sweeps; verify bit-identity; report."""
    plan = _plan(BASE_VALUES)

    cold, cold_cache, cold_s = _timed_sweep(plan, cache_dir)
    if cold_cache.stats()["session"]["hits"]:
        raise RuntimeError("cold run found a non-empty cache")

    warm, warm_cache, warm_s = _timed_sweep(plan, cache_dir)
    warm_session = warm_cache.stats()["session"]
    if warm_session["misses"] or warm_session["hits"] != len(warm.results):
        raise RuntimeError(
            f"warm run was not 100% hits: {warm_session}"
        )
    # The hard requirement: a warm artifact indistinguishable from the
    # cold one — rows, summaries, replay digests, payload digests.
    if warm.to_payload() != cold.to_payload():
        raise RuntimeError("warm payload differs from cold payload")
    if warm.rows() != cold.rows() or warm.summaries() != cold.summaries():
        raise RuntimeError("warm rows/summaries differ from cold")

    extended, extended_cache, extended_s = _timed_sweep(
        _plan(EXTENDED_VALUES), cache_dir
    )
    extended_session = extended_cache.stats()["session"]
    shared = len(BASE_VALUES) * REPLICATIONS
    new = (len(EXTENDED_VALUES) - len(BASE_VALUES)) * REPLICATIONS
    if extended_session["hits"] != shared or (
        extended_session["misses"] != new
    ):
        raise RuntimeError(
            f"extended run expected {shared} hits + {new} misses: "
            f"{extended_session}"
        )
    # The shared prefix must be byte-identical to the cold results.
    if [r.payload_digest for r in extended.results[:shared]] != [
        r.payload_digest for r in cold.results
    ]:
        raise RuntimeError("extended run's shared prefix diverged")

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    return {
        "unit": "wall seconds for one sanitized T7 sweep (run_sweep)",
        "workload": (
            f"T7 over loads_packets_per_slot={list(BASE_VALUES)} x "
            f"{REPLICATIONS} replications ({BASE_PARAMS['station_count']} "
            f"stations, {BASE_PARAMS['duration_slots']} slots, "
            "sanitize=True), jobs=1"
        ),
        "methodology": (
            "single timed run per configuration against one on-disk "
            "cache, opened fresh each time so session counters are "
            "exact; warm must be 100% hits with to_payload()/rows()/"
            "summaries() bit-identical to cold (hard error otherwise); "
            "'extended' appends two sweep points to the same plan and "
            "must hit the whole shared prefix and execute only the new "
            "points"
        ),
        "host_cpus": os.cpu_count(),
        "sanitize": True,
        "measurements": {
            "cold": _measurement(cold, cold_cache, cold_s),
            "warm": {
                **_measurement(warm, warm_cache, warm_s),
                "speedup_vs_cold": round(speedup, 1),
                "bit_identical_to_cold": True,
            },
            "extended": {
                **_measurement(extended, extended_cache, extended_s),
                "new_points": list(
                    EXTENDED_VALUES[len(BASE_VALUES):]
                ),
            },
        },
        "notes": {
            "key_discipline": (
                "entries are keyed by spec content digest (kind, target, "
                "canonical params, seed, sanitize) — task_id and "
                "scheduling knobs excluded — so the extended sweep's "
                "shared prefix hits even though it is a different plan"
            ),
            "warm_floor": (
                "warm cost is pure JSON read + digest re-verification "
                "per entry; it scales with entry size, not simulation "
                "length, so the speedup grows with the workload"
            ),
            "divergence_policy": (
                "every figure above is digest-verified; a cache/compute "
                "disagreement raises CacheDivergenceError rather than "
                "recording a number"
            ),
        },
    }


def test_bench_cache_warm_sweep(benchmark, tmp_path):
    """Scaled-down cold/warm cycle for the pytest benchmark suite: the
    warm pass must be 100% hits and bit-identical to the cold one.
    (The full tracked deliverable is ``main()`` -> BENCH_cache.json.)"""
    plan = SweepPlan(
        experiment_id="T7",
        parameter="loads_packets_per_slot",
        values=(0.02, 0.05),
        replications=1,
        root_seed=0,
        base_params={"station_count": 8, "duration_slots": 60},
        sanitize=True,
    )
    cache_dir = str(tmp_path / "cache")
    cold, cold_cache, _ = _timed_sweep(plan, cache_dir)
    assert cold_cache.stats()["session"]["hits"] == 0

    warm, warm_cache, _ = benchmark.pedantic(
        lambda: _timed_sweep(plan, cache_dir), rounds=1, iterations=1
    )
    session = warm_cache.stats()["session"]
    assert session["misses"] == 0
    assert session["hits"] == len(warm.results) == len(cold.results)
    assert warm.to_payload() == cold.to_payload()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--output", default="BENCH_cache.json", metavar="PATH",
        help="where to write the report (default BENCH_cache.json)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory to use (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)
    if args.cache_dir is not None:
        report = bench_cache(args.cache_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
            report = bench_cache(os.path.join(tmp, "cache"))
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    cold = report["measurements"]["cold"]
    warm = report["measurements"]["warm"]
    extended = report["measurements"]["extended"]
    print(
        f"cold {cold['wall_s']}s ({cold['tasks']} tasks) -> "
        f"warm {warm['wall_s']}s ({warm['hits']} hits, "
        f"{warm['speedup_vs_cold']}x) -> extended {extended['wall_s']}s "
        f"({extended['hits']} hits + {extended['misses']} misses)"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
