"""Integration tests: the analytic/geometry experiments reproduce the
paper's numbers (small parameterisations for test speed)."""

import math

import pytest

from repro.experiments import get_experiment


class TestF1SnrDecline:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("F1")(
            mc_station_counts=(1000,), mc_duty_cycles=(0.5,), trials=8
        )

    def test_spot_value_reproduced(self, report):
        measured = report.claims[
            "SNR(eta=1) reaches -12 dB near 10^8 stations"
        ][1]
        assert "-12.6" in measured

    def test_six_db_duty_gain(self, report):
        assert report.claims["eta=0.25 improves SNR by +6 dB over eta=1"][
            1
        ] == pytest.approx(6.02, abs=0.01)

    def test_monte_carlo_gap_small(self, report):
        gap = report.claims["Monte-Carlo vs Eq.15 worst gap (dB)"][1]
        assert gap < 1.5


class TestF2Taxonomy:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("F2")()

    def test_each_type_staged_and_classified(self, report):
        by_scene = {row[0]: row for row in report.rows}
        assert "Type 1" in by_scene["1: bystander interferer"][3]
        assert "Type 2" in by_scene["2: two senders, one receiver"][3]
        assert "Type 3" in by_scene["3: receiver transmitting"][3]

    def test_distant_bystander_tolerated(self, report):
        survival_row = next(r for r in report.rows if r[0].startswith("4:"))
        assert survival_row[2] == "survived"


class TestF3RelayRule:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("F3")(trials=500, station_count=40)

    def test_criterion_always_agrees(self, report):
        row = next(r for r in report.rows if r[0].startswith("circle"))
        assert row[1] == row[2]  # agreements == cases

    def test_centred_relay_halves(self, report):
        assert report.claims["centred relay energy ratio"][1] == pytest.approx(0.5)

    def test_routes_never_skip_helpful_relays(self, report):
        assert report.claims["unused-relay violations"][1] == 0


class TestF4Schedule:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("F4")()

    def test_twenty_station_raster(self, report):
        assert len(report.rows) == 20

    def test_duty_cycle_reproduced(self, report):
        paper, measured = report.claims["receive duty cycle p"]
        assert measured == pytest.approx(paper, abs=0.05)

    def test_worked_example_found(self, report):
        assert any("circled-instant" in name for name in report.claims)


class TestT1Scheduling:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("T1")(pairs=6, arrivals_per_pair=150, horizon_slots=8000)

    def test_overlap_021(self, report):
        paper, measured = report.claims["overlap fraction p(1-p)"]
        assert measured == pytest.approx(paper, abs=0.02)

    def test_wait_bernoulli_model(self, report):
        paper, measured = report.claims[
            "expected wait slots 1/(p(1-p)) (slotted model)"
        ]
        assert measured == pytest.approx(paper, abs=1.0)

    def test_geometric_fairly_well_modeled(self, report):
        worst = report.claims[
            "worst per-slot deviation from geometric pmf ('fairly well modeled')"
        ][1]
        assert worst < 0.12


class TestT5Neighbors:
    def test_never_exceeds_eight(self):
        report = get_experiment("T5")(
            station_counts=(100,), placements_per_scale=2
        )
        assert report.claims["maximum routing neighbours"][1] <= 8


class TestT6PowerControl:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("T6")(station_count=80, density_factors=(1.0, 4.0))

    def test_spread_collapses_under_control(self, report):
        assert report.claims["delivered-power spread under control (dB)"][
            1
        ] == pytest.approx(0.0, abs=1e-6)

    def test_density_compensation(self, report):
        variation = report.claims[
            "radiated power density variation across 16x density range"
        ][1]
        assert variation < 1.6


class TestT8Metro:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("T8")()

    def test_hundreds_of_mbps(self, report):
        measured = report.claims["raw per-station rate at 10^6 stations, 1 GHz"][1]
        rate = float(measured.split()[0])
        assert 100 <= rate <= 999

    def test_capacity_spot_value(self, report):
        assert report.claims["capacity at SNR 0.01 (b/s per kHz)"][1] == pytest.approx(
            14.36, abs=0.01
        )


class TestT9Connectivity:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("T9")(station_count=300, placements=2)

    def test_pi_and_four_pi(self, report):
        paper, measured = report.claims[
            "expected neighbours at reach 1 (pi) and 2 (4 pi)"
        ]
        assert measured[0] == pytest.approx(math.pi)
        assert measured[1] == pytest.approx(4 * math.pi)

    def test_reach_two_suffices(self, report):
        assert report.claims["giant component at reach 2 (should suffice)"][1] > 0.95

    def test_reach_one_insufficient(self, report):
        assert report.claims["giant component at reach 1 (insufficient)"][1] < 0.9


class TestT11Clocks:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("T11")(trials=50_000)

    def test_halving_per_bit(self, report):
        ratio = report.claims[
            "halving per extra offset bit (measured/analytic ratio ~ 1)"
        ][1]
        assert ratio == pytest.approx(1.0, abs=0.35)

    def test_holdover_allows_rare_rendezvous(self, report):
        hours = report.claims[
            "drift-model holdover before a quarter-slot error (hours)"
        ][1]
        assert hours >= 24.0
