"""Events module where one class never lands in the registry."""

from dataclasses import dataclass

__all__ = ["EVENT_TYPES", "Ping", "Pong", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    KIND = "event"
    SCHEMA = 1

    time: float


@dataclass(frozen=True)
class Ping(TraceEvent):
    KIND = "ping"

    station: int


@dataclass(frozen=True)
class Pong(TraceEvent):
    KIND = "pong"

    station: int


# Pong is deliberately missing: registry-completeness defect.
EVENT_TYPES = {cls.KIND: cls for cls in (Ping,)}
