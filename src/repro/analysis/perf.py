"""Performance measurement harness for the simulator hot path.

The tracked quantity is *events per second*: the engine counts every
processed event (:attr:`repro.sim.engine.Environment.events_processed`),
and dividing by the wall-clock duration of a run gives a throughput
figure that is comparable across code versions because same-seed runs
process bit-identical event sequences — the work is fixed, only the
speed varies.

This module is the one deliberate exception to the REP002 reprolint
rule (no wall-clock reads under ``src/``): measuring wall time is its
entire purpose, and nothing here feeds back into simulation state —
the scenario runs to completion and is only *observed* afterwards, so
replay determinism is untouched.

The standard workload is :func:`repro.experiments.simsetup.run_loaded_network`
(the T4 scenario family): uniform-disk placement, Poisson traffic, the
paper's MAC.  ``tools/perfreport.py`` and the ``repro bench`` CLI
subcommand wrap this module; ``BENCH_medium.json`` at the repo root is
the tracked before/after record.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "PerfSample",
    "MetroPerfSample",
    "run_perf_scenario",
    "run_metro_perf_scenario",
    "write_report",
    "format_samples",
    "format_metro_samples",
]


@dataclass(frozen=True)
class PerfSample:
    """One timed run of the loaded-network scenario.

    Attributes:
        stations: network size M.
        load: offered load in packets per slot per station.
        duration_slots: simulated duration in slots.
        seed: base seed (placement uses ``seed + stations``, traffic
            uses ``seed``, matching the T4 experiment convention).
        wall_s: wall-clock duration of the run.
        events: total simulation events processed.
        events_per_s: the throughput figure, ``events / wall_s``.
        deliveries: hop deliveries (a correctness fingerprint — any two
            code versions must agree on it for the timing comparison to
            be meaningful).
        losses: total losses (same role).
        collision_free: whether the run had zero losses of any type.
    """

    stations: int
    load: float
    duration_slots: float
    seed: int
    wall_s: float
    events: int
    events_per_s: float
    deliveries: int
    losses: int
    collision_free: bool


def run_perf_scenario(
    stations: int = 100,
    load: float = 0.1,
    duration_slots: float = 60.0,
    seed: int = 29,
) -> PerfSample:
    """Run the loaded-network scenario once and time it.

    The run itself is fully deterministic (seeded placement, traffic,
    and schedules); only the wall-clock observation varies between
    hosts and runs.
    """
    from repro.experiments.simsetup import run_loaded_network

    began = time.perf_counter()  # reprolint: disable=REP002
    network, result = run_loaded_network(
        stations,
        load,
        duration_slots,
        placement_seed=seed + stations,
        traffic_seed=seed,
    )
    wall_s = time.perf_counter() - began  # reprolint: disable=REP002
    events = network.env.events_processed
    return PerfSample(
        stations=stations,
        load=load,
        duration_slots=duration_slots,
        seed=seed,
        wall_s=wall_s,
        events=events,
        events_per_s=events / wall_s if wall_s > 0.0 else float("inf"),
        deliveries=result.hop_deliveries,
        losses=result.losses_total,
        collision_free=result.collision_free,
    )


@dataclass(frozen=True)
class MetroPerfSample:
    """One timed metro-scale run over the sparse medium.

    Build and simulation are timed separately: the chunked CSR build
    is a one-off O(M x chunk)-memory pass, while the simulation's
    events/s is the figure comparable against the dense medium's.

    Attributes:
        stations: network size M.
        load: offered load in packets per slot per station.
        duration_slots: simulated arrival horizon in slots.
        seed: scene seed (traffic uses the perf convention ``seed``
            with placement at ``seed + stations``).
        build_wall_s: wall-clock time of the chunked scene build.
        wall_s: wall-clock time of the simulation run alone.
        events: simulation events processed.
        events_per_s: simulation throughput, ``events / wall_s``.
        transmitted: packets that went on the air.
        deliveries: successful receptions (correctness fingerprint).
        losses: lost transmissions (same role).
        collision_free: whether every transmitted packet arrived.
        nnz: stored CSR entries (the sparse structure's size).
        csr_memory_mb: bytes held by the CSR arrays, in MB.
        max_field_error_bound_w: largest provable culling-error bound
            observed during the run (the approximation witness).
    """

    stations: int
    load: float
    duration_slots: float
    seed: int
    build_wall_s: float
    wall_s: float
    events: int
    events_per_s: float
    transmitted: int
    deliveries: int
    losses: int
    collision_free: bool
    nnz: int
    csr_memory_mb: float
    max_field_error_bound_w: float


def run_metro_perf_scenario(
    stations: int = 10_000,
    load: float = 0.05,
    duration_slots: float = 20.0,
    seed: int = 29,
) -> MetroPerfSample:
    """Build and run one metro scene, timing build and run separately.

    Same determinism contract as :func:`run_perf_scenario`: the scene
    and its event sequence are fully seed-determined; only the
    wall-clock observations vary between hosts.
    """
    from repro.analysis.metro import build_metro_scene, run_metro_scene

    build_began = time.perf_counter()  # reprolint: disable=REP002
    scene = build_metro_scene(stations, seed=seed + stations)
    build_wall_s = time.perf_counter() - build_began  # reprolint: disable=REP002
    began = time.perf_counter()  # reprolint: disable=REP002
    result = run_metro_scene(
        scene, load=load, duration_slots=duration_slots, traffic_seed=seed
    )
    wall_s = time.perf_counter() - began  # reprolint: disable=REP002
    return MetroPerfSample(
        stations=stations,
        load=load,
        duration_slots=duration_slots,
        seed=seed,
        build_wall_s=build_wall_s,
        wall_s=wall_s,
        events=result.events,
        events_per_s=result.events / wall_s if wall_s > 0.0 else float("inf"),
        transmitted=result.transmitted,
        deliveries=result.deliveries,
        losses=result.losses_total,
        collision_free=result.collision_free,
        nnz=scene.gain_field.nnz,
        csr_memory_mb=scene.gain_field.memory_bytes / 1e6,
        max_field_error_bound_w=result.max_field_error_bound_w,
    )


def format_metro_samples(samples: Sequence[MetroPerfSample]) -> str:
    """Human-readable table of metro perf samples."""
    lines = [
        f"{'stations':>8s} {'load':>6s} {'build_s':>8s} {'wall_s':>8s} "
        f"{'events':>9s} {'events/s':>9s} {'deliv':>7s} {'losses':>7s} "
        f"{'csr_mb':>8s}"
    ]
    for sample in samples:
        lines.append(
            f"{sample.stations:>8d} {sample.load:>6.2f} "
            f"{sample.build_wall_s:>8.2f} {sample.wall_s:>8.2f} "
            f"{sample.events:>9d} {sample.events_per_s:>9.0f} "
            f"{sample.deliveries:>7d} {sample.losses:>7d} "
            f"{sample.csr_memory_mb:>8.1f}"
        )
    return "\n".join(lines)


def format_samples(samples: Sequence[PerfSample]) -> str:
    """Human-readable table of perf samples."""
    lines = [
        f"{'stations':>8s} {'load':>6s} {'slots':>6s} {'wall_s':>8s} "
        f"{'events':>9s} {'events/s':>9s} {'deliv':>7s} {'losses':>7s}"
    ]
    for sample in samples:
        lines.append(
            f"{sample.stations:>8d} {sample.load:>6.2f} "
            f"{sample.duration_slots:>6.0f} {sample.wall_s:>8.3f} "
            f"{sample.events:>9d} {sample.events_per_s:>9.0f} "
            f"{sample.deliveries:>7d} {sample.losses:>7d}"
        )
    return "\n".join(lines)


def write_report(
    path: str,
    samples: Sequence[PerfSample],
    notes: Optional[Dict[str, object]] = None,
    metro: Optional[Sequence[MetroPerfSample]] = None,
) -> None:
    """Write perf samples as a JSON report (the ``BENCH_medium.json``
    format: a ``scenarios`` list plus free-form ``notes``; metro-scale
    samples land in a separate ``metro_scenarios`` list because their
    workload and fields differ)."""
    payload: Dict[str, object] = {
        "unit": "events/sec = Environment.events_processed / wall seconds",
        "workload": (
            "repro.experiments.simsetup.run_loaded_network(stations, load, "
            "duration_slots, placement_seed=seed+stations, traffic_seed=seed)"
        ),
        "scenarios": [asdict(sample) for sample in samples],
    }
    if metro:
        payload["metro_workload"] = (
            "repro.analysis.metro.run_metro_scene over "
            "build_metro_scene(stations, seed=seed+stations) — sparse CSR "
            "medium, nearest-neighbour Poisson traffic(traffic_seed=seed)"
        )
        payload["metro_scenarios"] = [asdict(sample) for sample in metro]
    if notes:
        payload["notes"] = notes
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def _samples_from_json(path: str) -> List[PerfSample]:
    """Read back a report written by :func:`write_report`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return [PerfSample(**scenario) for scenario in payload["scenarios"]]


__all__.append("_samples_from_json")
