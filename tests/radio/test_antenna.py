"""Tests for antenna gains and the Friis link constant."""

import math

import pytest

from repro.radio.antenna import (
    Antenna,
    SPEED_OF_LIGHT,
    friis_constant,
    friis_power_gain,
    wavelength,
)


class TestWavelength:
    def test_one_ghz(self):
        assert wavelength(1e9) == pytest.approx(0.2998, abs=1e-3)

    def test_inverse_relation(self):
        assert wavelength(2e9) == pytest.approx(wavelength(1e9) / 2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            wavelength(0.0)


class TestAntenna:
    def test_isotropic_gain_is_unity(self):
        assert Antenna().gain_linear == 1.0

    def test_gain_conversion(self):
        assert Antenna(gain_dbi=3.0103).gain_linear == pytest.approx(2.0, rel=1e-4)


class TestFriis:
    def test_free_space_loss_at_1km_1ghz(self):
        # Canonical value: FSPL(1 km, 1 GHz) ~= 92.45 dB.
        gain = friis_power_gain(1000.0, 1e9)
        assert -10.0 * math.log10(gain) == pytest.approx(92.45, abs=0.05)

    def test_inverse_square_law(self):
        near = friis_power_gain(100.0, 1e9)
        far = friis_power_gain(200.0, 1e9)
        assert near / far == pytest.approx(4.0)

    def test_antenna_gains_multiply(self):
        base = friis_power_gain(100.0, 1e9)
        boosted = friis_power_gain(
            100.0, 1e9, Antenna(gain_dbi=3.0), Antenna(gain_dbi=3.0)
        )
        assert boosted / base == pytest.approx(10 ** 0.6, rel=1e-6)

    def test_friis_constant_matches_unit_distance(self):
        assert friis_constant(1e9) == pytest.approx(friis_power_gain(1.0, 1e9))

    def test_constant_gives_gain_over_r_squared(self):
        alpha = friis_constant(2.4e9)
        assert alpha / 50.0**2 == pytest.approx(friis_power_gain(50.0, 2.4e9))

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ValueError):
            friis_power_gain(0.0, 1e9)
