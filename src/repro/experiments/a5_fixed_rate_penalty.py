"""Ablation A5: what fixing the system rate costs (Section 3.4).

"In general, stations might vary the rate at which they communicate
depending on the observed interference.  This work will assume that all
the stations will communicate at some rate that is fixed by the design."

The fixed rate must clear the *worst* receiver's interference bound, so
every better-placed receiver runs below its own Shannon-with-margin
potential.  This ablation computes, for random and clustered
placements, each receiver's individually achievable rate versus the
network-wide fixed rate, reporting the aggregate-capacity penalty of
the design simplification — the quantitative content of the paper's
"in general, stations might vary the rate".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.reception import max_rate
from repro.experiments.runner import ExperimentReport, register
from repro.net.network import NetworkConfig, build_network
from repro.propagation.geometry import clustered, uniform_disk

__all__ = ["run"]


def _rates(network) -> tuple:
    """(fixed rate, per-receiver achievable rates) for a built network."""
    config = network.config
    budget = network.budget
    bounds = budget.interference_bounds + budget.thermal_noise_w
    per_receiver = np.array(
        [
            max_rate(
                config.bandwidth_hz,
                config.target_delivered_w / (config.safety_margin * float(bound)),
                config.beta,
            )
            for bound in bounds
        ]
    )
    return budget.data_rate_bps, per_receiver


@register("A5")
def run(
    station_count: int = 100,
    seeds: Sequence[int] = (109, 113),
    seed_clustered: int = 127,
) -> ExperimentReport:
    """Quantify the aggregate-capacity cost of the fixed design rate."""
    report = ExperimentReport(
        experiment_id="A5",
        title="Ablation: the cost of a single design-fixed rate (Section 3.4)",
        columns=(
            "placement",
            "fixed rate (bit/s)",
            "median achievable",
            "best achievable",
            "aggregate penalty (x)",
        ),
    )
    penalties = []
    cases = [
        (f"uniform#{k}", uniform_disk(station_count, radius=1000.0, seed=s))
        for k, s in enumerate(seeds)
    ]
    cases.append(
        (
            "clustered",
            clustered(
                cluster_count=max(station_count // 20, 4),
                per_cluster=20,
                radius=1000.0,
                cluster_spread=0.05,
                seed=seed_clustered,
            ),
        )
    )
    for label, placement in cases:
        network = build_network(placement, NetworkConfig(seed=1))
        fixed, per_receiver = _rates(network)
        aggregate_variable = float(per_receiver.sum())
        aggregate_fixed = fixed * len(per_receiver)
        penalty = aggregate_variable / aggregate_fixed
        penalties.append((label, penalty))
        report.add_row(
            label,
            fixed,
            float(np.median(per_receiver)),
            float(per_receiver.max()),
            penalty,
        )

    uniform_penalty = np.mean([p for l, p in penalties if l.startswith("uniform")])
    clustered_penalty = next(p for l, p in penalties if l == "clustered")
    report.claim(
        "aggregate capacity left on the table (uniform)",
        "moderate (> 1x)",
        float(uniform_penalty),
    )
    report.claim(
        "penalty grows with density variation (clustered / uniform)",
        "> 1",
        float(clustered_penalty / uniform_penalty),
    )
    report.notes.append(
        "Achievable rates invert the reception criterion against each "
        "receiver's own interference bound with the same safety margin; "
        "the fixed rate is the minimum over receivers.  Variable-rate "
        "operation is the paper's acknowledged, unexplored generalisation "
        "(and would interact with the quarter-slot packing)."
    )
    return report
