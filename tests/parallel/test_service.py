"""The warm sweep service: shared cache, in-flight dedup, socket protocol.

The pinned properties:

* a submission partitions into cache hits / in-flight joins / misses,
  and only misses execute — identical specs submitted concurrently by
  different clients run exactly once;
* joiners are never stranded, even when the executing submission dies;
* the socket protocol streams plan/task/done events whose digests match
  in-process execution bit-for-bit.
"""

import json
import os
import threading
import time

import pytest

from repro.parallel.cache import ResultCache
from repro.parallel.service import (
    SweepServer,
    SweepService,
    submit_request,
)
from repro.parallel.task import TaskSpec

WORKERS = "tests.parallel.workers"


def slow_spec(task_id, log_path, delay_s=0.0, **params):
    return TaskSpec(
        task_id=task_id,
        kind="function",
        target=f"{WORKERS}:slow_echo",
        params={"log_path": str(log_path), "delay_s": delay_s, **params},
    )


def execution_count(log_path):
    if not os.path.exists(log_path):
        return 0
    with open(log_path, "r", encoding="utf-8") as handle:
        return len(handle.readlines())


@pytest.fixture
def service(tmp_path):
    return SweepService(ResultCache(str(tmp_path / "cache")), jobs=1)


class TestSubmitPartitioning:
    def test_cold_then_warm(self, service, tmp_path):
        log = tmp_path / "exec.log"
        specs = [slow_spec(f"t{i}", log, value=i) for i in range(3)]
        _results, cold = service.submit_specs(specs)
        assert (cold["hits"], cold["joined"], cold["executed"]) == (0, 0, 3)
        _results, warm = service.submit_specs(specs)
        assert (warm["hits"], warm["joined"], warm["executed"]) == (3, 0, 0)
        assert warm["results_digest"] == cold["results_digest"]
        assert execution_count(log) == 3

    def test_duplicate_specs_within_one_batch_run_once(
        self, service, tmp_path
    ):
        log = tmp_path / "exec.log"
        twins = [
            slow_spec("left", log, value=7),
            slow_spec("right", log, value=7),  # same work, new label
        ]
        results, summary = service.submit_specs(twins)
        assert summary["executed"] == 1
        assert summary["joined"] == 1
        assert execution_count(log) == 1
        assert [r.task_id for r in results] == ["left", "right"]
        assert results[0].payload_digest == results[1].payload_digest

    def test_progress_reports_sources(self, service, tmp_path):
        log = tmp_path / "exec.log"
        service.submit_specs([slow_spec("t0", log, value=0)])
        sources = []
        service.submit_specs(
            [slow_spec("t0", log, value=0), slow_spec("t1", log, value=1)],
            progress=lambda done, total, result, source: sources.append(
                (result.task_id, source)
            ),
        )
        assert ("t0", "cache") in sources
        assert ("t1", "run") in sources

    def test_failures_are_reported_not_cached(self, service):
        boom = TaskSpec(
            task_id="boom",
            kind="function",
            target=f"{WORKERS}:explode",
            params={},
        )
        results, summary = service.submit_specs([boom])
        assert summary["errors"] == 1
        assert not results[0].ok
        # Failures never enter the cache: resubmission executes again.
        _results, again = service.submit_specs([boom])
        assert again["executed"] == 1
        assert again["hits"] == 0


class TestInFlightDedup:
    def test_concurrent_identical_submissions_execute_once(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        service = SweepService(cache, jobs=1)
        log = tmp_path / "exec.log"
        summaries = {}

        def client(name, start_delay):
            time.sleep(start_delay)
            _results, summary = service.submit_specs(
                [slow_spec("shared", log, delay_s=0.6, value=1)]
            )
            summaries[name] = summary

        first = threading.Thread(target=client, args=("first", 0.0))
        second = threading.Thread(target=client, args=("second", 0.2))
        first.start()
        second.start()
        first.join(timeout=30)
        second.join(timeout=30)
        assert execution_count(log) == 1  # the whole point
        assert summaries["first"]["executed"] == 1
        # The latecomer either joined the in-flight execution or (if the
        # first finished before it arrived) hit the cache; both mean it
        # executed nothing.
        late = summaries["second"]
        assert late["executed"] == 0
        assert late["joined"] + late["hits"] == 1
        assert (
            summaries["first"]["results_digest"] == late["results_digest"]
        )
        assert service.deduplicated + cache.hits >= 1
        assert service._in_flight == {}  # registry drained

    def test_joiners_see_shared_failures(self, tmp_path):
        service = SweepService(ResultCache(str(tmp_path / "cache")), jobs=1)
        boom = TaskSpec(
            task_id="boom",
            kind="function",
            target=f"{WORKERS}:explode",
            params={"message": "shared failure"},
        )
        outcomes = {}

        def client(name, start_delay):
            time.sleep(start_delay)
            results, _summary = service.submit_specs(
                [
                    TaskSpec(
                        task_id="pre",
                        kind="function",
                        target=f"{WORKERS}:slow_echo",
                        params={"delay_s": 0.5 if name == "first" else 0.0,
                                "value": name},
                    ),
                    boom,
                ]
                if name == "first"
                else [boom]
            )
            outcomes[name] = results

        first = threading.Thread(target=client, args=("first", 0.0))
        second = threading.Thread(target=client, args=("second", 0.2))
        first.start()
        second.start()
        first.join(timeout=30)
        second.join(timeout=30)
        assert not outcomes["first"][-1].ok
        assert not outcomes["second"][-1].ok
        assert service._in_flight == {}


class TestSocketProtocol:
    @pytest.fixture
    def server(self, tmp_path):
        service = SweepService(ResultCache(str(tmp_path / "cache")), jobs=1)
        server = SweepServer(service, str(tmp_path / "sweep.sock"))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def test_ping(self, server):
        events = submit_request(server.socket_path, {"op": "ping"})
        assert events == [{"event": "done", "op": "ping"}]

    def test_stats(self, server):
        events = submit_request(server.socket_path, {"op": "stats"})
        assert events[-1]["event"] == "done"
        assert events[-1]["stats"]["entries"] == 0

    def test_unknown_op_is_an_error_event(self, server):
        events = submit_request(server.socket_path, {"op": "launch"})
        assert events[-1]["event"] == "error"
        assert "unknown op" in events[-1]["message"]

    def test_bad_sweep_request_is_an_error_event(self, server):
        events = submit_request(
            server.socket_path, {"op": "sweep", "experiment": "nope"}
        )
        assert events[-1]["event"] == "error"

    def test_sweep_cold_then_warm_identical_digests(self, server):
        request = {
            "op": "sweep",
            "experiment": "T7",
            "values": [0.05],
            "replications": 1,
            "base_params": {"station_count": 8, "duration_slots": 60},
        }
        cold = submit_request(server.socket_path, request)
        assert cold[0] == {"event": "plan", "total": 1}
        assert cold[-1]["event"] == "done"
        assert cold[-1]["executed"] == 1
        warm = submit_request(server.socket_path, request)
        assert warm[-1]["hits"] == 1
        assert warm[-1]["executed"] == 0
        assert warm[-1]["results_digest"] == cold[-1]["results_digest"]
        task_lines = [e for e in warm if e["event"] == "task"]
        assert [line["source"] for line in task_lines] == ["cache"]

    def test_sweep_streams_records_on_request(self, server):
        request = {
            "op": "sweep",
            "experiment": "T7",
            "values": [0.05],
            "base_params": {"station_count": 8, "duration_slots": 60},
            "records": True,
        }
        events = submit_request(server.socket_path, request)
        task_lines = [e for e in events if e["event"] == "task"]
        assert task_lines
        record = task_lines[0]["record"]
        assert record["ok"]
        assert record["payload"]["experiment_id"] == "T7"

    def test_stale_socket_file_is_replaced(self, tmp_path):
        import socket as socket_module

        sock_path = tmp_path / "stale.sock"
        sock_path.write_text("")  # a dead server's leftover
        service = SweepService(ResultCache(str(tmp_path / "cache")), jobs=1)
        server = SweepServer(service, str(sock_path))  # binds despite litter
        try:
            with socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            ) as probe:
                probe.connect(str(sock_path))  # no ConnectionRefused
        finally:
            server.server_close()
        assert not os.path.exists(sock_path)  # close removes the socket


class TestTracedSubmission:
    def test_trace_writes_jsonl_and_counts(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        service = SweepService(cache, jobs=1)
        spec = TaskSpec(
            task_id="traced",
            kind="scenario",
            params={"stations": 6, "load": 0.05, "duration_slots": 80.0},
            seed=11,
        )
        _results, summary = service.submit_specs([spec], trace=True)
        trace = summary["trace"]
        assert os.path.exists(trace["path"])
        lines = [
            json.loads(line)
            for line in open(trace["path"], "r", encoding="utf-8")
        ]
        assert lines, "trace file must carry events"
        assert trace["events"] == len(lines)
        assert trace["hop_deliveries"] >= 0
