"""Transmit queues: per-neighbour (no head-of-line blocking) and FIFO.

Section 7.2: "Even with other traffic, a station need not block the
head of the line.  Traffic to other stations may be transmitted while
waiting for a suitable time to arrive.  With no head-of-line blocking,
stations may achieve transmit duty cycles approaching 50%."

:class:`NeighborQueues` keeps one FIFO per next hop, so the scheduler
can pick whichever queued hop has the earliest feasible window.
:class:`FifoQueue` is the ablation baseline: strictly serve the oldest
packet, whatever its next hop (experiment T3).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Iterator, List, Optional, Tuple

from repro.net.packet import Packet

__all__ = ["NeighborQueues", "FifoQueue", "TransmitQueue"]


class TransmitQueue:
    """Interface shared by the two queue disciplines.

    Queues are unbounded by default; a ``capacity`` bounds the *total*
    backlog (across all next hops), after which :meth:`enqueue` refuses
    the packet and counts an overflow drop.  Real stations have finite
    buffers, and a fault-stressed network must shed load somewhere
    visible rather than queue without limit.
    """

    def enqueue(self, next_hop: int, packet: Packet) -> bool:
        """Add a packet destined (this hop) to ``next_hop``.

        Returns ``True`` if accepted, ``False`` on overflow (bounded
        queues only; unbounded queues always accept).
        """
        raise NotImplementedError

    def heads(self) -> List[Tuple[int, Packet]]:
        """The (next_hop, packet) pairs the scheduler may send next."""
        raise NotImplementedError

    def pop(self, next_hop: int) -> Packet:
        """Remove and return the head packet for ``next_hop``."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def is_empty(self) -> bool:
        """Whether no packet is queued."""
        return len(self) == 0


class NeighborQueues(TransmitQueue):
    """One FIFO per next hop; every queue head is eligible.

    Iteration order of :meth:`heads` follows first-use order of the
    next hops, which keeps simulations deterministic.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self._capacity = capacity
        self._queues: "OrderedDict[int, Deque[Packet]]" = OrderedDict()
        self._size = 0
        self._peak_size = 0
        self._total_enqueued = 0
        self._overflow_drops = 0

    def enqueue(self, next_hop: int, packet: Packet) -> bool:
        if self._capacity is not None and self._size >= self._capacity:
            self._overflow_drops += 1
            return False
        self._queues.setdefault(next_hop, deque()).append(packet)
        self._size += 1
        self._total_enqueued += 1
        self._peak_size = max(self._peak_size, self._size)
        return True

    def heads(self) -> List[Tuple[int, Packet]]:
        return [
            (next_hop, queue[0])
            for next_hop, queue in self._queues.items()
            if queue
        ]

    def pop(self, next_hop: int) -> Packet:
        queue = self._queues.get(next_hop)
        if not queue:
            raise LookupError(f"no packet queued for next hop {next_hop}")
        self._size -= 1
        return queue.popleft()

    def __len__(self) -> int:
        return self._size

    def depth(self, next_hop: int) -> int:
        """Packets queued toward one next hop."""
        queue = self._queues.get(next_hop)
        return len(queue) if queue else 0

    @property
    def peak_size(self) -> int:
        """Largest total backlog observed."""
        return self._peak_size

    @property
    def total_enqueued(self) -> int:
        """All packets ever enqueued."""
        return self._total_enqueued

    @property
    def overflow_drops(self) -> int:
        """Packets refused because the bounded backlog was full."""
        return self._overflow_drops

    def next_hops(self) -> Iterator[int]:
        """Next hops with at least one queued packet."""
        return (hop for hop, queue in self._queues.items() if queue)


class FifoQueue(TransmitQueue):
    """A single strict FIFO: only the oldest packet is eligible.

    The head-of-line-blocking baseline of experiment T3 — when the
    oldest packet's next hop has no usable window, everything waits.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self._capacity = capacity
        self._queue: Deque[Tuple[int, Packet]] = deque()
        self._peak_size = 0
        self._total_enqueued = 0
        self._overflow_drops = 0

    def enqueue(self, next_hop: int, packet: Packet) -> bool:
        if self._capacity is not None and len(self._queue) >= self._capacity:
            self._overflow_drops += 1
            return False
        self._queue.append((next_hop, packet))
        self._total_enqueued += 1
        self._peak_size = max(self._peak_size, len(self._queue))
        return True

    def heads(self) -> List[Tuple[int, Packet]]:
        return [self._queue[0]] if self._queue else []

    def pop(self, next_hop: int) -> Packet:
        if not self._queue:
            raise LookupError("queue is empty")
        head_hop, packet = self._queue[0]
        if head_hop != next_hop:
            raise LookupError(
                f"FIFO head is for next hop {head_hop}, not {next_hop}; "
                "head-of-line blocking forbids overtaking"
            )
        self._queue.popleft()
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def peak_size(self) -> int:
        """Largest backlog observed."""
        return self._peak_size

    @property
    def total_enqueued(self) -> int:
        """All packets ever enqueued."""
        return self._total_enqueued

    @property
    def overflow_drops(self) -> int:
        """Packets refused because the bounded backlog was full."""
        return self._overflow_drops
