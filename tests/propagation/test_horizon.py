"""Tests for the radio-horizon model."""

import pytest

from repro.propagation.horizon import (
    interference_circle_radius,
    mutual_radio_horizon_m,
    radio_horizon_m,
)


class TestRadioHorizon:
    def test_ten_metre_antenna(self):
        # d = sqrt(2 * 4/3 * 6371e3 * 10) ~= 13.0 km; the standard 4.12
        # sqrt(h) km formula gives 13.0 km too.
        assert radio_horizon_m(10.0) == pytest.approx(13_000, rel=0.01)

    def test_grows_with_sqrt_height(self):
        assert radio_horizon_m(40.0) == pytest.approx(2.0 * radio_horizon_m(10.0))

    def test_zero_height_zero_horizon(self):
        assert radio_horizon_m(0.0) == 0.0

    def test_four_thirds_factor_extends(self):
        assert radio_horizon_m(10.0) > radio_horizon_m(
            10.0, effective_earth_factor=1.0
        )

    def test_rejects_negative_height(self):
        with pytest.raises(ValueError):
            radio_horizon_m(-1.0)


class TestMutualHorizon:
    def test_sum_of_horizons(self):
        assert mutual_radio_horizon_m(10.0, 20.0) == pytest.approx(
            radio_horizon_m(10.0) + radio_horizon_m(20.0)
        )

    def test_interference_circle_is_metro_sized(self):
        # Section 4: "the circle could cover at least an entire
        # metropolitan area" — ~26 km for rooftop antennas.
        radius = interference_circle_radius(antenna_height_m=10.0)
        assert 20_000 < radius < 35_000
