"""Tests for event primitives."""

import pytest

from repro.sim.engine import Environment
from repro.sim.events import AllOf, AnyOf, Event, Timeout


class TestEventLifecycle:
    def test_untriggered_state(self):
        event = Event(Environment())
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self):
        event = Event(Environment())
        with pytest.raises(RuntimeError):
            event.value

    def test_succeed_fixes_value_immediately(self):
        env = Environment()
        event = env.event().succeed("v")
        assert event.triggered and event.value == "v"
        assert not event.processed  # callbacks run when the engine steps

    def test_processed_after_step(self):
        env = Environment()
        event = env.event().succeed()
        env.run()
        assert event.processed

    def test_double_trigger_raises(self):
        env = Environment()
        event = env.event().succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_defused_failure_is_silent(self):
        env = Environment()
        event = env.event()
        event.fail(ValueError("x"))
        event.defuse()
        env.run()  # must not raise

    def test_subscribe_after_processed_fires_immediately(self):
        env = Environment()
        event = env.event().succeed()
        env.run()
        seen = []
        event.subscribe(lambda e: seen.append(e.value))
        assert seen == [None]

    def test_unsubscribe(self):
        env = Environment()
        event = env.event()
        seen = []
        callback = lambda e: seen.append(1)
        event.subscribe(callback)
        event.unsubscribe(callback)
        event.succeed()
        env.run()
        assert seen == []


class TestTimeout:
    def test_triggered_at_creation_processed_at_fire(self):
        # The distinction that bit the MAC scheduler: a Timeout's value
        # is fixed immediately; only `processed` reports firing.
        env = Environment()
        timer = env.timeout(5.0)
        assert timer.triggered
        assert not timer.processed
        env.run()
        assert timer.processed

    def test_carries_value(self):
        env = Environment()
        timer = env.timeout(1.0, value="tick")
        env.run()
        assert timer.value == "tick"

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Timeout(Environment(), -1.0)


class TestConditions:
    def test_any_of_fires_on_first(self):
        env = Environment()
        fast = env.timeout(1.0)
        slow = env.timeout(9.0)
        either = AnyOf(env, [fast, slow])
        env.run(until=2.0)
        assert either.processed
        assert fast in either.value
        assert slow not in either.value

    def test_all_of_waits_for_every_child(self):
        env = Environment()
        a = env.timeout(1.0, value="a")
        b = env.timeout(2.0, value="b")
        both = AllOf(env, [a, b])
        env.run(until=1.5)
        assert not both.triggered
        env.run()
        assert both.value == {a: "a", b: "b"}

    def test_empty_condition_fires_immediately(self):
        env = Environment()
        condition = AllOf(env, [])
        assert condition.triggered

    def test_child_failure_fails_condition(self):
        env = Environment()
        bad = env.event()
        condition = AnyOf(env, [bad, env.timeout(5.0)])
        bad.fail(ValueError("child broke"))
        condition.defuse()
        env.run()
        assert condition.triggered and not condition.ok

    def test_cross_environment_rejected(self):
        env_a, env_b = Environment(), Environment()
        with pytest.raises(ValueError):
            AnyOf(env_a, [env_b.timeout(1.0)])
