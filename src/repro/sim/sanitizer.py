"""Runtime determinism sanitizer for the event wheel.

The collision-freedom experiments assert *exact* outcomes (zero losses,
bit-identical statistics), which only hold if the engine's event order
is deterministic.  This module provides an opt-in debug mode that
checks the wheel's invariants on every step:

* simulated time is monotonic — processing never moves time backwards
  (the observable symptom of scheduling into the past);
* an event is processed at most once — re-scheduling an
  already-processed event would double-run its callbacks;
* scheduled times are finite — ``nan``/``inf`` would corrupt heap order.

While enabled, the sanitizer also folds every processed event into a
rolling **replay digest** (BLAKE2b over the event's time, priority, and
type).  Two runs of the same seeded scenario must produce identical
digests; :meth:`repro.sim.engine.Environment.replay_digest` exposes the
hash and the ``repro verify-determinism`` CLI subcommand automates the
two-run comparison.

Enable per environment with ``Environment(sanitize=True)``, process-wide
with the ``REPRO_SANITIZE=1`` environment variable, or lexically with
the :func:`sanitized` context manager.
"""

from __future__ import annotations

import hashlib
import math
import os
import struct
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.events import Event

__all__ = [
    "SanitizerError",
    "DeterminismSanitizer",
    "sanitize_default",
    "sanitized",
    "ENV_VAR",
]

#: Environment variable that turns the sanitizer on process-wide.
ENV_VAR = "REPRO_SANITIZE"

_FALSEY = frozenset({"", "0", "false", "no", "off"})

# Lexical override installed by :func:`sanitized`; beats the env var.
_default_override: Optional[bool] = None


class SanitizerError(AssertionError):
    """An event-wheel invariant was violated.

    Derives from :class:`AssertionError`: a sanitizer failure means the
    simulation's *internal* consistency is broken, not that a scenario
    was misconfigured.
    """


def sanitize_default() -> bool:
    """Whether new environments sanitize by default.

    The :func:`sanitized` context manager takes precedence; otherwise
    the ``REPRO_SANITIZE`` environment variable decides (any value but
    ``0``/``false``/``no``/``off``/empty enables).
    """
    if _default_override is not None:
        return _default_override
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSEY


@contextmanager
def sanitized(enabled: bool = True) -> Iterator[None]:
    """Force the sanitizer default for environments built in this block."""
    global _default_override
    previous = _default_override
    _default_override = enabled
    try:
        yield
    finally:
        _default_override = previous


class DeterminismSanitizer:
    """Per-environment invariant checker and replay hasher.

    The digest covers, per processed event: the processing time (raw
    IEEE-754 bits, so even ULP-level drift is caught), the scheduling
    priority, the event's class name, and whether it succeeded.  Object
    identities and values are deliberately excluded — ``repr`` of
    arbitrary payloads is not stable across processes.
    """

    def __init__(self) -> None:
        self._digest = hashlib.blake2b(digest_size=16)
        self._events = 0
        self._last_time = -math.inf

    @property
    def events_processed(self) -> int:
        """Number of events folded into the digest so far."""
        return self._events

    def check_schedule(self, event: "Event", when: float, now: float) -> None:
        """Validate one scheduling request (called from ``schedule``)."""
        if not math.isfinite(when):
            raise SanitizerError(
                f"scheduled event {type(event).__name__} at non-finite time "
                f"{when!r}"
            )
        if when < now:
            raise SanitizerError(
                f"scheduled event {type(event).__name__} at t={when!r}, "
                f"before the current time t={now!r}"
            )
        if event.processed:
            raise SanitizerError(
                f"re-scheduled already-processed event {type(event).__name__}; "
                "events are one-shot and must not be re-triggered"
            )

    def check_step(self, event: "Event", when: float, now: float) -> None:
        """Validate the next event about to be processed."""
        if not math.isfinite(when):
            raise SanitizerError(
                f"event {type(event).__name__} queued at non-finite time "
                f"{when!r}"
            )
        if when < now:
            raise SanitizerError(
                f"event wheel time went backwards: processing "
                f"{type(event).__name__} at t={when!r} after t={now!r} "
                "(an event was scheduled into the past)"
            )
        if event.processed:
            raise SanitizerError(
                f"event {type(event).__name__} is being processed twice"
            )

    def record(self, when: float, priority: int, event: "Event") -> None:
        """Fold one processed event into the replay digest."""
        ok = event._ok  # noqa: SLF001 - sanitizer is an engine internal
        self._digest.update(
            struct.pack("<dIB", when, priority, 1 if ok else 0)
        )
        self._digest.update(type(event).__name__.encode("ascii", "replace"))
        self._events += 1
        self._last_time = when

    def digest(self) -> str:
        """Hex digest of the event stream processed so far."""
        return self._digest.hexdigest()
