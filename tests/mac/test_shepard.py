"""Tests for the paper's channel access scheme as station behaviour."""

import pytest

from repro.net.network import NetworkConfig, build_network
from repro.net.packet import Packet
from repro.net.traffic import PoissonTraffic
from repro.propagation.geometry import uniform_disk
from repro.sim.streams import RandomStreams


def running_network(count=15, seed=13, load=0.08, duration_slots=250, **overrides):
    placement = uniform_disk(count, radius=600.0, seed=seed)
    config = NetworkConfig(seed=seed, **overrides)
    network = build_network(placement, config, trace=True)
    rng = RandomStreams(seed).stream("traffic")
    for origin in range(count):
        network.add_traffic(
            PoissonTraffic(
                origin=origin,
                rate=load / network.budget.slot_time,
                destinations=list(range(count)),
                size_bits=config.packet_size_bits,
                rng=rng,
            )
        )
    network.run(duration_slots * network.budget.slot_time)
    return network


class TestSchemeInvariants:
    def test_zero_losses(self):
        network = running_network()
        assert network.medium.losses == []

    def test_no_transmission_during_own_receive_window(self):
        # The schedule is a commitment: a station must never transmit
        # inside its own published receive windows.
        network = running_network()
        for record in network.trace.of_kind("tx_start"):
            sender = network.stations[record.data["source"]]
            assert not sender.own_view.is_receiving_at(record.time), (
                f"station {sender.index} keyed up during its receive window"
            )

    def test_every_transmission_lands_in_receiver_window(self):
        network = running_network()
        for record in network.trace.of_kind("tx_start"):
            receiver = network.stations[record.data["destination"]]
            assert receiver.own_view.is_receiving_at(record.time)

    def test_listening_matches_schedule(self):
        network = running_network()
        station = network.stations[0]
        for t in (0.0, 3.7, 19.2, 55.0):
            assert station.mac.is_listening(t) == station.own_view.is_receiving_at(t)

    def test_avoided_neighbors_receive_windows_respected(self):
        # Section 7.3: when an avoid set exists, no transmission may
        # overlap a protected neighbour's receive window.
        network = running_network(count=25, seed=17, load=0.1)
        protected_pairs = [
            (station.index, hop, view)
            for station in network.stations
            for hop in station.table.neighbors_in_use()
            for view in station.avoid_views(hop)
        ]
        if not protected_pairs:
            pytest.skip("no avoid sets arose in this placement")
        # Re-check from the trace using exact schedule views.
        for record in network.trace.of_kind("tx_start"):
            sender = network.stations[record.data["source"]]
            destination = record.data["destination"]
            for view in sender.avoid_views(destination):
                assert not view.is_receiving_at(record.time)

    def test_no_control_traffic(self):
        # "no per-packet transmissions other than the single
        # transmission used to convey the packet".
        network = running_network()
        data_hops = network.medium.deliveries
        tx_starts = network.trace.count("tx_start")
        assert tx_starts == data_hops  # every burst was a delivered data hop


class TestQuarterSlotPacking:
    def test_airtime_is_quarter_slot(self):
        network = running_network(duration_slots=50)
        assert network.budget.packet_airtime == pytest.approx(
            network.budget.slot_time / 4.0
        )
