"""Interval-stream algebra for schedule window arithmetic.

The channel access scheme (Section 7) reduces to interval arithmetic:
"send the packet during a time when one of its own transmit windows
overlaps with a receive window of the receiving station enough to
handle the packet length."  This module implements lazy set operations
on *ordered streams* of half-open intervals ``(start, end)`` so that the
search can walk forward through unbounded pseudo-random schedules
without materialising them.

All streams must yield disjoint intervals in increasing order; the
operations preserve that property.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Interval",
    "validate_stream",
    "intersect",
    "intersect_many",
    "subtract",
    "clip",
    "first_fitting",
    "total_length",
]

Interval = Tuple[float, float]


def validate_stream(intervals: Iterable[Interval]) -> Iterator[Interval]:
    """Yield intervals, checking order and disjointness as they pass."""
    previous_end: Optional[float] = None
    for start, end in intervals:
        if end <= start:
            raise ValueError(f"empty or inverted interval ({start}, {end})")
        if previous_end is not None and start < previous_end:
            raise ValueError("intervals out of order or overlapping")
        previous_end = end
        yield (start, end)


def intersect(a: Iterable[Interval], b: Iterable[Interval]) -> Iterator[Interval]:
    """Lazy intersection of two ordered interval streams."""
    iter_a = iter(a)
    iter_b = iter(b)
    current_a = next(iter_a, None)
    current_b = next(iter_b, None)
    while current_a is not None and current_b is not None:
        start = max(current_a[0], current_b[0])
        end = min(current_a[1], current_b[1])
        if start < end:
            yield (start, end)
        # Advance whichever interval ends first.
        if current_a[1] <= current_b[1]:
            current_a = next(iter_a, None)
        else:
            current_b = next(iter_b, None)


def intersect_many(streams: List[Iterable[Interval]]) -> Iterator[Interval]:
    """Lazy intersection of any number of ordered interval streams."""
    if not streams:
        raise ValueError("need at least one stream")
    result: Iterable[Interval] = streams[0]
    for stream in streams[1:]:
        result = intersect(result, stream)
    return iter(result)


def subtract(base: Iterable[Interval], removed: Iterable[Interval]) -> Iterator[Interval]:
    """Lazy set difference ``base - removed`` of ordered interval streams."""
    iter_removed = iter(removed)
    hole = next(iter_removed, None)
    for start, end in base:
        cursor = start
        while True:
            # Skip holes that end before the remaining piece.
            while hole is not None and hole[1] <= cursor:
                hole = next(iter_removed, None)
            if hole is None or hole[0] >= end:
                if cursor < end:
                    yield (cursor, end)
                break
            if hole[0] > cursor:
                yield (cursor, hole[0])
            cursor = max(cursor, hole[1])
            if cursor >= end:
                break


def clip(intervals: Iterable[Interval], start: float, end: float) -> Iterator[Interval]:
    """Restrict a stream to the window ``[start, end)``; stops once past it."""
    if end <= start:
        raise ValueError("clip window must be non-empty")
    for lo, hi in intervals:
        if hi <= start:
            continue
        if lo >= end:
            return
        yield (max(lo, start), min(hi, end))


def first_fitting(
    intervals: Iterable[Interval],
    duration: float,
    not_before: float = float("-inf"),
) -> Optional[Interval]:
    """First sub-interval of length ``duration`` starting at or after
    ``not_before``; ``None`` when the (finite) stream has none.

    The returned interval is exactly ``duration`` long, placed as early
    as possible.
    """
    if duration <= 0.0:
        raise ValueError("duration must be positive")
    for start, end in intervals:
        candidate = max(start, not_before)
        if end - candidate >= duration:
            return (candidate, candidate + duration)
    return None


def total_length(intervals: Iterable[Interval]) -> float:
    """Sum of lengths of a (finite) interval stream."""
    return sum(end - start for start, end in intervals)
