"""Radio substrate: signals, antennas, noise, spread spectrum, radios."""

from repro.radio.antenna import Antenna, friis_constant, friis_power_gain, wavelength
from repro.radio.receiver import Receiver
from repro.radio.receiver_model import (
    DefaultReceiver,
    ReceiverModel,
    SicReceiver,
    build_receiver_model,
    receiver_model_names,
)
from repro.radio.signal import (
    Signal,
    add_powers_db,
    combine_powers,
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    power_rise_db,
    watts_to_dbm,
)
from repro.radio.spreadspectrum import (
    DespreaderBank,
    DespreaderBusyError,
    ProcessingGain,
)
from repro.radio.thermal import BOLTZMANN, STANDARD_TEMPERATURE_K, thermal_noise_power
from repro.radio.transmitter import Transmitter, TransmitterBusyError

__all__ = [
    "Antenna",
    "BOLTZMANN",
    "DefaultReceiver",
    "DespreaderBank",
    "DespreaderBusyError",
    "ProcessingGain",
    "Receiver",
    "ReceiverModel",
    "STANDARD_TEMPERATURE_K",
    "SicReceiver",
    "Signal",
    "Transmitter",
    "TransmitterBusyError",
    "add_powers_db",
    "build_receiver_model",
    "combine_powers",
    "db_to_linear",
    "dbm_to_watts",
    "friis_constant",
    "friis_power_gain",
    "linear_to_db",
    "power_rise_db",
    "receiver_model_names",
    "thermal_noise_power",
    "watts_to_dbm",
    "wavelength",
]
