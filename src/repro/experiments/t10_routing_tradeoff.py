"""Experiment T10: minimum-energy versus minimum-hop routing (§6.2).

The trade the paper describes: minimum-energy routes "respect the local
density and will not skip over intermediate hops", minimising each
packet's interference contribution — at the cost of latency ("the
multitude of store-and-forward delays ... will adversely affect
delay").  Measured here both statically (route energies and hop counts
over the propagation matrix) and dynamically (delivered delay and
per-packet radiated energy in simulation).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ExperimentReport, register
from repro.experiments.simsetup import run_loaded_network
from repro.net.network import NetworkConfig
from repro.propagation.geometry import uniform_disk
from repro.propagation.matrix import PropagationMatrix
from repro.propagation.models import FreeSpace
from repro.routing.min_energy import min_energy_tables, route_energy
from repro.routing.min_hop import min_hop_tables
from repro.routing.table import trace_route

__all__ = ["run"]


def _static_comparison(station_count: int, seed: int) -> dict:
    placement = uniform_disk(station_count, radius=1000.0, seed=seed)
    model = FreeSpace(near_field_clamp=1e-6)
    matrix = PropagationMatrix.from_placement(placement, model)
    reach = 2.0 * placement.characteristic_length
    min_gain = float(model.power_gain(reach))
    censored = matrix.observed(min_gain=min_gain)
    energy_tables = min_energy_tables(censored)
    hop_tables = min_hop_tables(censored, min_gain)

    rng = np.random.default_rng(seed)
    energies = {"min_energy": [], "min_hop": []}
    hops = {"min_energy": [], "min_hop": []}
    sampled = 0
    while sampled < 200:
        source = int(rng.integers(station_count))
        destination = int(rng.integers(station_count))
        if source == destination:
            continue
        if not (
            energy_tables[source].has_route(destination)
            and hop_tables[source].has_route(destination)
        ):
            continue
        sampled += 1
        for name, tables in (("min_energy", energy_tables), ("min_hop", hop_tables)):
            path = trace_route(tables, source, destination)
            energies[name].append(route_energy(censored, path))
            hops[name].append(len(path) - 1)
    return {
        "energy_ratio": float(
            np.mean(energies["min_hop"]) / np.mean(energies["min_energy"])
        ),
        "mean_hops_energy": float(np.mean(hops["min_energy"])),
        "mean_hops_minhop": float(np.mean(hops["min_hop"])),
    }


@register("T10")
def run(
    station_count: int = 60,
    load_packets_per_slot: float = 0.02,
    duration_slots: float = 400.0,
    seed: int = 59,
) -> ExperimentReport:
    """Compare the two routing criteria statically and in simulation."""
    report = ExperimentReport(
        experiment_id="T10",
        title="Minimum-energy vs minimum-hop routing trade-off (Section 6.2)",
        columns=("routing", "mean hops", "mean delay (slots)", "energy/packet", "losses"),
    )

    static = _static_comparison(max(station_count, 150), seed)
    report.claim(
        "interference energy ratio (min-hop / min-energy)",
        "> 1 (min-energy radiates less)",
        static["energy_ratio"],
    )
    report.claim(
        "hop-count ratio (min-energy / min-hop)",
        "> 1 (the latency price)",
        static["mean_hops_energy"] / static["mean_hops_minhop"],
    )

    for label, min_hop in (("min_energy", False), ("min_hop", True)):
        config = NetworkConfig(seed=seed, min_hop_routing=min_hop)
        network, result = run_loaded_network(
            station_count,
            load_packets_per_slot,
            duration_slots,
            placement_seed=seed,
            traffic_seed=seed + 1,
            config=config,
        )
        energy = _mean_packet_energy(network)
        slot = network.budget.slot_time
        report.add_row(
            label,
            result.mean_hops,
            result.mean_delay / slot if result.mean_delay == result.mean_delay else float("nan"),
            energy,
            result.losses_total,
        )
    report.notes.append(
        "Energy per packet is the sum of radiated hop energies of delivered "
        "packets (joules in the simulation's normalised power units).  Both "
        "runs share placement and traffic; only the route criterion differs."
    )
    return report


def _mean_packet_energy(network) -> float:
    """Mean radiated energy of end-to-end-delivered packets (trace-fed)."""
    delivered = network.trace.of_kind("delivered")
    if not delivered:
        return float("nan")
    return float(
        np.mean([record.data["energy_j"] for record in delivered])
    )
