"""Spread-spectrum abstractions: processing gain and despreader banks.

The paper leans on two properties of direct-sequence spread spectrum:

* interference can be treated as thermal-like noise, with the ratio of
  spread bandwidth to data rate (the *processing gain*) setting how much
  interference a link tolerates (Sections 2, 3.4, 6); and
* a receiver with multiple despreading channels can track several
  incoming transmissions at once, eliminating Type 2 collisions
  (Section 5) — "GPS receivers often have six or twelve despreading
  channels".

We do not simulate chips.  The :class:`ProcessingGain` value object
carries the bandwidth/rate ratio into the reception criterion, and the
:class:`DespreaderBank` manages the finite set of simultaneous-tracking
channels at a receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from repro.radio.receiver_model import ReceiverModel
from repro.radio.signal import db_to_linear, linear_to_db

__all__ = ["ProcessingGain", "DespreaderBank", "DespreaderBusyError"]


@dataclass(frozen=True)
class ProcessingGain:
    """Ratio of spread bandwidth ``W`` to data rate ``C``.

    Section 6 concludes that "the proper amount of processing gain is
    determined to lie in the range of 20 to 25 dB".

    Attributes:
        linear: W / C as a linear ratio (dimensionless, >= 1).
    """

    linear: float

    def __post_init__(self) -> None:
        if self.linear < 1.0:
            raise ValueError("processing gain must be at least 1 (0 dB)")

    @classmethod
    def from_db(cls, gain_db: float) -> "ProcessingGain":
        """Build from a decibel value (e.g. 23 for the paper's midpoint)."""
        return cls(db_to_linear(gain_db))

    @classmethod
    def from_rates(cls, bandwidth_hz: float, data_rate_bps: float) -> "ProcessingGain":
        """Build from the spread bandwidth and the attempted data rate."""
        if bandwidth_hz <= 0.0 or data_rate_bps <= 0.0:
            raise ValueError("bandwidth and data rate must be positive")
        return cls(bandwidth_hz / data_rate_bps)

    @property
    def db(self) -> float:
        """Processing gain in dB."""
        return linear_to_db(self.linear)

    def data_rate(self, bandwidth_hz: float) -> float:
        """The data rate that this gain implies for a given bandwidth."""
        if bandwidth_hz <= 0.0:
            raise ValueError("bandwidth must be positive")
        return bandwidth_hz / self.linear

    def bandwidth(self, data_rate_bps: float) -> float:
        """The spread bandwidth that this gain implies for a given rate."""
        if data_rate_bps <= 0.0:
            raise ValueError("data rate must be positive")
        return data_rate_bps * self.linear


class DespreaderBusyError(RuntimeError):
    """Raised when acquiring a channel on a fully busy despreader bank."""


@dataclass
class DespreaderBank:
    """A finite pool of despreading (tracking) channels at one receiver.

    Each concurrently tracked transmission occupies one channel for its
    duration.  When all channels are busy, an additional simultaneous
    arrival cannot be tracked — in the simulator this surfaces as a
    Type 2 collision, which the paper's design avoids by provisioning at
    least as many channels as routing neighbours (never more than eight
    in the paper's simulations).

    Attributes:
        capacity: number of despreading channels.
        model: optional :class:`~repro.radio.receiver_model.ReceiverModel`
            governing what the demodulator does with interference while
            tracking (``None`` means the plain default receiver — the
            medium skips its cancellation hook entirely).
    """

    capacity: int = 8
    model: Optional[ReceiverModel] = None
    _busy: Dict[Hashable, int] = field(default_factory=dict, repr=False)
    _peak_busy: int = field(default=0, repr=False)
    _rejections: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("a receiver needs at least one despreading channel")

    @property
    def busy_count(self) -> int:
        """Number of channels currently tracking a transmission."""
        return len(self._busy)

    @property
    def free_count(self) -> int:
        """Number of idle channels."""
        return self.capacity - len(self._busy)

    @property
    def peak_busy(self) -> int:
        """Maximum number of simultaneously busy channels observed."""
        return self._peak_busy

    @property
    def rejections(self) -> int:
        """Number of acquisition attempts refused because the bank was full."""
        return self._rejections

    def try_acquire(self, token: Hashable) -> Optional[int]:
        """Acquire a free channel for ``token``; return its index or None.

        ``token`` identifies the tracked transmission and must be unique
        among concurrently tracked transmissions.
        """
        if token in self._busy:
            raise ValueError(f"token {token!r} already holds a channel")
        if len(self._busy) >= self.capacity:
            self._rejections += 1
            return None
        in_use = set(self._busy.values())
        channel = next(i for i in range(self.capacity) if i not in in_use)
        self._busy[token] = channel
        self._peak_busy = max(self._peak_busy, len(self._busy))
        return channel

    def acquire(self, token: Hashable) -> int:
        """Acquire a free channel for ``token`` or raise DespreaderBusyError."""
        channel = self.try_acquire(token)
        if channel is None:
            raise DespreaderBusyError(
                f"all {self.capacity} despreading channels are busy"
            )
        return channel

    def release(self, token: Hashable) -> None:
        """Release the channel held by ``token``."""
        try:
            del self._busy[token]
        except KeyError:
            raise KeyError(f"token {token!r} holds no channel") from None

    def holds(self, token: Hashable) -> bool:
        """Whether ``token`` currently holds a channel."""
        return token in self._busy

    def reset_stats(self) -> None:
        """Clear the peak-usage and rejection counters."""
        self._peak_busy = len(self._busy)
        self._rejections = 0
