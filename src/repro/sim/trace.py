"""Event tracing for simulations (legacy).

A :class:`TraceRecorder` collects timestamped records of what happened
in a run (transmission started, reception failed, packet delivered...),
which the experiments mine for their reported rows and the tests use to
assert invariants such as "no reception ever overlapped a local
transmission".

.. deprecated::
    ``TraceRecorder`` is superseded by the typed observability layer in
    :mod:`repro.obs`: build an :class:`repro.obs.Instrumentation` (which
    implements the same query surface) instead.  :class:`TraceRecord`
    remains the stable row shape that typed events downgrade to.
"""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: simulated time of the occurrence.
        kind: short event-kind tag, e.g. ``"tx_start"``.
        data: free-form payload describing the occurrence.
    """

    time: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Accumulates :class:`TraceRecord` entries during a run.

    Args:
        enabled: when False, :meth:`record` is a no-op — long benchmark
            runs can skip the memory cost without touching call sites.

    .. deprecated::
        construct an :class:`repro.obs.Instrumentation` instead (see
        the migration notes in ``DESIGN.md``); this class keeps working
        for one release as a bridge target for :class:`RecorderSink`.
    """

    def __init__(self, enabled: bool = True) -> None:
        warnings.warn(
            "TraceRecorder is deprecated; use repro.obs.Instrumentation "
            "(e.g. Instrumentation.recording()) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._kind_counts: Counter = Counter()

    def record(self, time: float, kind: str, **data: Any) -> None:
        """Append a record (no-op when disabled)."""
        if not self.enabled:
            return
        if not kind:
            raise ValueError("record kind must be non-empty")
        self._records.append(TraceRecord(time, kind, data))
        self._kind_counts[kind] += 1

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def count(self, kind: Optional[str] = None) -> int:
        """Number of records, optionally restricted to one kind."""
        if kind is None:
            return len(self._records)
        return self._kind_counts[kind]

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in time order."""
        return [record for record in self._records if record.kind == kind]

    def kinds(self) -> Dict[str, int]:
        """Mapping of record kind to occurrence count."""
        return dict(self._kind_counts)

    def between(self, start: float, end: float) -> List[TraceRecord]:
        """Records with ``start <= time < end``."""
        if end < start:
            raise ValueError("end must not precede start")
        return [record for record in self._records if start <= record.time < end]

    def clear(self) -> None:
        """Discard all records."""
        self._records.clear()
        self._kind_counts.clear()
