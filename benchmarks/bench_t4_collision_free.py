"""Bench T4: collision-free operation at the paper's simulation scales.

The paper's headline experiment: networks of 100 and 1000 stations run
under load with zero packet loss of any collision type.  The 1000-
station row is the expensive one (~1 minute); the ALOHA control runs
only at 100 stations to keep the bench affordable.
"""

from repro.experiments import get_experiment


def test_bench_t4_collision_free_100(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("T4")(
            station_counts=(100,),
            duration_slots=300,
            load_packets_per_slot=0.03,
            control_run=True,
        ),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    assert report.claims["zero losses at 100 stations"][1] == 0
    control_row = next(r for r in report.rows if "control" in r[1])
    assert control_row[4] > 0


def test_bench_t4_collision_free_1000(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("T4")(
            station_counts=(1000,),
            duration_slots=60,
            load_packets_per_slot=0.02,
            control_run=False,
        ),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    assert report.claims["zero losses at 1000 stations"][1] == 0
