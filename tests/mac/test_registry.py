"""Tests for the declarative MAC registry."""

import numpy as np
import pytest

from repro.mac import registry
from repro.mac.aloha import AlohaMac
from repro.mac.registry import (
    MacDescriptor,
    build_mac,
    get_mac,
    mac_factory,
    mac_names,
    mac_suite,
    register_mac,
)
from repro.net.network import LinkBudget
from repro.sim.streams import RandomStreams

LEGACY = ("shepard", "aloha", "slotted_aloha", "csma", "maca")
FRONTIER = ("sic_aloha", "multilevel_power", "sinr_adaptive")


def budget() -> LinkBudget:
    return LinkBudget(
        sir_threshold=0.05,
        data_rate_bps=1e4,
        slot_time=0.4,
        packet_airtime=0.1,
        min_gain=1e-9,
        interference_bounds=np.ones(4),
        thermal_noise_w=1e-9,
        processing_gain_db=20.0,
        target_delivered_w=1.0,
    )


class TestEnumeration:
    def test_names_scheme_first_then_lineage(self):
        names = mac_names()
        assert names[: len(LEGACY)] == LEGACY
        assert set(FRONTIER) <= set(names)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="sic_aloha"):
            get_mac("token_ring")

    def test_descriptors_carry_capabilities(self):
        assert get_mac("shepard").builder_default
        assert get_mac("sic_aloha").slotted
        assert get_mac("sic_aloha").needs_bank
        assert get_mac("sic_aloha").receiver_model == "sic"
        assert get_mac("aloha").receiver_model is None
        assert not get_mac("aloha").slotted

    def test_stream_prefixes_unique(self):
        prefixes = [get_mac(name).stream_prefix for name in mac_names()]
        assert len(prefixes) == len(set(prefixes))

    def test_legacy_prefixes_grandfathered(self):
        # Digest stability: the historical single-letter stream labels
        # survive the registry redesign for the legacy contenders.
        assert get_mac("aloha").stream_prefix == "a"
        assert get_mac("slotted_aloha").stream_prefix == "s"
        assert get_mac("csma").stream_prefix == "c"
        assert get_mac("maca").stream_prefix == "m"
        # New contenders derive the prefix from the registered name, so
        # suite growth can never collide on a single letter again.
        for name in FRONTIER:
            assert get_mac(name).stream_prefix == f"{name}:"


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_mac("aloha")
            def duplicate(context):
                raise AssertionError

    def test_stream_prefix_collision_rejected(self):
        with pytest.raises(ValueError, match="collides"):

            @register_mac("aloha_two", stream_prefix="a")
            def collider(context):
                raise AssertionError

        assert "aloha_two" not in mac_names()

    def test_unknown_receiver_model_rejected(self):
        with pytest.raises(ValueError, match="unknown receiver model"):
            register_mac("mystery", receiver_model="quantum")

    def test_registration_round_trip(self):
        @register_mac("test_only_mac", slotted=True, description="temp")
        def builder(context):
            return AlohaMac(context.stream(), slotted=True)

        try:
            descriptor = get_mac("test_only_mac")
            assert isinstance(descriptor, MacDescriptor)
            assert descriptor.stream_prefix == "test_only_mac:"
            mac = build_mac("test_only_mac", 0, budget(), RandomStreams(5))
            assert mac.slotted
        finally:
            del registry._REGISTRY["test_only_mac"]


class TestBuilding:
    def test_build_every_non_default_mac(self):
        streams = RandomStreams(11)
        for name in mac_names():
            if get_mac(name).builder_default:
                continue
            mac = build_mac(name, 3, budget(), streams)
            assert mac.name == name

    def test_shepard_needs_build_network(self):
        with pytest.raises(ValueError, match="build_network"):
            build_mac("shepard", 0, budget(), RandomStreams(5))

    def test_mac_factory_none_for_scheme(self):
        assert mac_factory("shepard", RandomStreams(5)) is None

    def test_legacy_stream_identity_preserved(self):
        # The registry draws station i's RNG from the same seed-tree
        # stream the old hand-written suite did.
        seed, index = 23, 4
        built = build_mac("aloha", index, budget(), RandomStreams(seed))
        legacy = AlohaMac(RandomStreams(seed).stream(f"a{index}"))
        assert built.rng.random() == legacy.rng.random()

    def test_suite_selection_and_order(self):
        suite = mac_suite(7, names=("csma", "shepard"))
        assert list(suite) == ["csma", "shepard"]
        assert suite["shepard"] is None
        assert callable(suite["csma"])

    def test_suite_unknown_name(self):
        with pytest.raises(ValueError, match="unknown MAC"):
            mac_suite(7, names=("csma", "nope"))

    def test_suite_factories_build(self):
        suite = mac_suite(7)
        for name, factory in suite.items():
            if factory is None:
                continue
            assert factory(0, budget()).name == name


class TestDeprecatedT7Wrapper:
    def test_t7_mac_suite_warns_and_delegates(self):
        from repro.experiments.t7_baselines import mac_suite as t7_suite

        with pytest.warns(DeprecationWarning, match="repro.mac.mac_suite"):
            suite = t7_suite(7)
        assert tuple(suite) == mac_names()
