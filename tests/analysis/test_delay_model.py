"""Tests for the light-load delay model."""

import pytest

from repro.analysis.delay_model import (
    end_to_end_delay_slots,
    max_light_load,
    per_hop_delay_slots,
)


class TestPerHop:
    def test_at_p03(self):
        # 1/(0.3*0.7) + 0.25 = 5.012 slots.
        assert per_hop_delay_slots(0.3) == pytest.approx(5.012, abs=1e-3)

    def test_minimised_at_half(self):
        # p(1-p) peaks at p = 1/2, so the wait term is smallest there.
        assert per_hop_delay_slots(0.5) < per_hop_delay_slots(0.3)
        assert per_hop_delay_slots(0.5) < per_hop_delay_slots(0.7)

    def test_symmetric_in_p(self):
        assert per_hop_delay_slots(0.2) == pytest.approx(per_hop_delay_slots(0.8))

    def test_packet_fraction_adds_airtime(self):
        assert per_hop_delay_slots(0.3, 0.5) - per_hop_delay_slots(
            0.3, 0.25
        ) == pytest.approx(0.25)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            per_hop_delay_slots(0.3, 0.0)


class TestEndToEnd:
    def test_linear_in_hops(self):
        single = end_to_end_delay_slots(1.0, 0.3)
        assert end_to_end_delay_slots(5.0, 0.3) == pytest.approx(5.0 * single)

    def test_rejects_zero_hops(self):
        with pytest.raises(ValueError):
            end_to_end_delay_slots(0.5, 0.3)


class TestValidityEdge:
    def test_scales_inversely_with_hops(self):
        assert max_light_load(0.3, 8.0) == pytest.approx(
            max_light_load(0.3, 4.0) / 2.0
        )

    def test_reasonable_magnitude(self):
        # At p=0.3, quarter-slot packets, 4-hop routes: a few hundredths
        # of a packet per slot per station.
        edge = max_light_load(0.3, 4.0)
        assert 0.01 < edge < 0.1

    def test_rejects_bad_hops(self):
        with pytest.raises(ValueError):
            max_light_load(0.3, 0.5)
