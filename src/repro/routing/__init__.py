"""Routing: minimum-energy (the paper's criterion) and baselines."""

from repro.routing.bellman_ford import DistributedBellmanFord, synchronous_rounds
from repro.routing.min_energy import (
    build_tables,
    dijkstra,
    energy_costs,
    min_energy_tables,
    relay_helps,
    route_energy,
)
from repro.routing.min_hop import hop_costs, min_hop_tables
from repro.routing.overlay import DistanceVectorOverlay
from repro.routing.table import RouteError, RoutingTable, trace_route

__all__ = [
    "DistanceVectorOverlay",
    "DistributedBellmanFord",
    "RouteError",
    "RoutingTable",
    "build_tables",
    "dijkstra",
    "energy_costs",
    "hop_costs",
    "min_energy_tables",
    "min_hop_tables",
    "relay_helps",
    "route_energy",
    "synchronous_rounds",
    "trace_route",
]
