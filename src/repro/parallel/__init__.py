"""Parallel execution subsystem: multiprocess fan-out with bit-exact
determinism.

The pieces, bottom-up:

* :mod:`repro.parallel.seedtree` — SplitMix64-style seed derivation:
  per-task seeds from a root seed and the task's path, independent of
  worker count and scheduling order.
* :mod:`repro.parallel.task` — :class:`TaskSpec` / :class:`TaskResult`:
  picklable descriptions of one seeded run and its structured outcome.
* :mod:`repro.parallel.pool` — spawn-safe worker pool with per-task
  timeout, crash capture, and bounded retry.
* :mod:`repro.parallel.aggregate` — deterministic merging and
  replication summaries (mean/stddev/min/max per metric).
* :mod:`repro.parallel.sweep` — sweep points × replication seeds for
  one experiment (``repro sweep``).
* :mod:`repro.parallel.suite` — the full F/T/A registry as one task
  list (``repro run-all``).
* :mod:`repro.parallel.bench` — full-suite scaling benchmark
  (``BENCH_suite.json``).
* :mod:`repro.parallel.cache` — persistent content-addressed result
  store keyed by spec digest (``repro sweep --cache``, ``repro cache``).
* :mod:`repro.parallel.service` — the warm sweep daemon sharing one
  cache across concurrent clients (``repro serve`` / ``repro submit``).

The invariant everything here preserves: for a fixed root seed, report
rows and replay digests are identical at any worker count — and, with
a cache, identical whether a row was computed or recalled.
"""

from repro.parallel.aggregate import MetricSummary, summarize, summarize_rows
from repro.parallel.bench import bench_suite, write_suite_report
from repro.parallel.cache import CacheDivergenceError, ResultCache
from repro.parallel.pool import run_tasks
from repro.parallel.service import SweepService, serve, submit_request
from repro.parallel.seedtree import SeedTree, derive_seed
from repro.parallel.suite import QUICK_PARAMS, SuiteResult, run_suite
from repro.parallel.sweep import (
    SWEEPABLE_PARAMS,
    SweepPlan,
    SweepResult,
    run_sweep,
)
from repro.parallel.task import (
    TaskResult,
    TaskSpec,
    execute_task,
    payload_digest,
    results_digest,
    spec_digest,
)

__all__ = [
    "CacheDivergenceError",
    "MetricSummary",
    "QUICK_PARAMS",
    "ResultCache",
    "SWEEPABLE_PARAMS",
    "SeedTree",
    "SuiteResult",
    "SweepPlan",
    "SweepResult",
    "SweepService",
    "TaskResult",
    "TaskSpec",
    "bench_suite",
    "derive_seed",
    "execute_task",
    "payload_digest",
    "results_digest",
    "run_suite",
    "run_sweep",
    "run_tasks",
    "serve",
    "spec_digest",
    "submit_request",
    "summarize",
    "summarize_rows",
    "write_suite_report",
]
