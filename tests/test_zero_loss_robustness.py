"""The central theorem, stress-tested: zero collision loss across many
random worlds.

T4 demonstrates collision freedom at the paper's two scales; this suite
hammers the same guarantee across placement seeds, traffic seeds,
duty-cycle settings, and loads — any single loss anywhere is a design
or implementation bug, because the calibration *proves* the SIR
criterion under every transmission pattern the schedules permit.
"""

import pytest

from repro.experiments.simsetup import run_loaded_network
from repro.net.network import NetworkConfig


@pytest.mark.parametrize("placement_seed", [1, 2, 3, 4, 5])
def test_zero_loss_across_placements(placement_seed):
    config = NetworkConfig(seed=placement_seed)
    _network, result = run_loaded_network(
        25,
        0.06,
        250,
        placement_seed=placement_seed,
        traffic_seed=placement_seed + 100,
        config=config,
    )
    assert result.collision_free, (
        f"placement seed {placement_seed}: {result.losses_by_reason}"
    )
    assert result.hop_deliveries > 0


@pytest.mark.parametrize("receive_fraction", [0.1, 0.3, 0.6, 0.85])
def test_zero_loss_across_duty_cycles(receive_fraction):
    config = NetworkConfig(seed=9, receive_fraction=receive_fraction)
    _network, result = run_loaded_network(
        20, 0.05, 250, placement_seed=9, traffic_seed=10, config=config
    )
    assert result.collision_free


@pytest.mark.parametrize("load", [0.01, 0.1, 0.5])
def test_zero_loss_across_loads(load):
    # Saturation changes queueing, never correctness.
    config = NetworkConfig(seed=13)
    _network, result = run_loaded_network(
        20, load, 250, placement_seed=13, traffic_seed=14, config=config
    )
    assert result.collision_free


@pytest.mark.parametrize("channels", [2, 4, 12])
def test_zero_loss_with_small_banks_under_uniform_traffic(channels):
    # Uniform traffic rarely needs more than a couple of channels;
    # the guarantee must hold whenever the bank never overflows.
    config = NetworkConfig(seed=17, despreader_channels=channels)
    _network, result = run_loaded_network(
        20, 0.05, 250, placement_seed=17, traffic_seed=18, config=config
    )
    # With >= 2 channels and ~3.5 routing neighbours, overflows are
    # possible in principle; assert only that any loss is Type 2 (the
    # taxonomy's prediction), and that with 12 channels there are none.
    if channels >= 12:
        assert result.collision_free
    else:
        non_type2 = {
            reason: count
            for reason, count in result.losses_by_reason.items()
            if reason != "no_channel"
        }
        assert not non_type2, non_type2
