"""The paper's primary contribution: model, analysis, and access scheme."""

from repro.core.access import (
    DEFAULT_SEARCH_SLOTS,
    NoTransmitWindowError,
    ScheduleView,
    expected_wait_slots,
    find_transmit_window,
    overlap_fraction,
)
from repro.core.collisions import (
    CollisionType,
    InterferenceSource,
    classify_loss,
    classify_source,
    count_by_type,
)
from repro.core.design import (
    DesignPoint,
    expected_neighbors,
    range_doubling_cost_db,
    reach_for_expected_neighbors,
)
from repro.core.noise import (
    NoiseSample,
    interference_integral,
    sample_snr,
    snr_curve,
    snr_nearest_neighbor,
    snr_nearest_neighbor_db,
)
from repro.core.power_control import (
    ConstantDeliveredPolicy,
    FullPowerPolicy,
    PolicyKind,
    PowerPolicy,
    TargetSirPolicy,
    make_policy,
)
from repro.core.reception import (
    ReceptionTracker,
    max_rate,
    required_sir,
    shannon_capacity,
    sir,
)
from repro.core.schedule import DEFAULT_RECEIVE_FRACTION, Schedule, hash_slot

__all__ = [
    "CollisionType",
    "ConstantDeliveredPolicy",
    "DEFAULT_RECEIVE_FRACTION",
    "DEFAULT_SEARCH_SLOTS",
    "DesignPoint",
    "FullPowerPolicy",
    "InterferenceSource",
    "NoTransmitWindowError",
    "NoiseSample",
    "PolicyKind",
    "PowerPolicy",
    "ReceptionTracker",
    "Schedule",
    "ScheduleView",
    "TargetSirPolicy",
    "classify_loss",
    "classify_source",
    "count_by_type",
    "expected_neighbors",
    "expected_wait_slots",
    "find_transmit_window",
    "hash_slot",
    "interference_integral",
    "make_policy",
    "max_rate",
    "overlap_fraction",
    "range_doubling_cost_db",
    "reach_for_expected_neighbors",
    "required_sir",
    "sample_snr",
    "shannon_capacity",
    "sir",
    "snr_curve",
    "snr_nearest_neighbor",
    "snr_nearest_neighbor_db",
]
