"""The reproflow analyzer against the synthetic fixture packages.

Each pass gets one positive (clean) and one negative (defect) case,
the two lock files get round-trip tests, and the real repository is
held to zero findings — the acceptance criterion the CI job enforces.
"""

import json
import shutil
from pathlib import Path

import pytest

from tools.reproflow.findings import (
    Baseline,
    BaselineEntry,
    Finding,
    filter_suppressed,
    load_baseline,
)
from tools.reproflow.runner import (
    PASSES,
    ReproflowConfig,
    analyze,
    config_for_repo,
    main,
    write_locks,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def config_for_fixture(package_dir: Path, tmp_path: Path) -> ReproflowConfig:
    package = package_dir.name
    return ReproflowConfig(
        src_root=package_dir,
        package=package,
        events_module=f"{package}.events",
        trusted_seed_modules=(),
        entry_points=(f"{package}.worker:execute_task",),
        extra_fork_roots=(),
        schema_lock=tmp_path / "schema.lock",
        api_lock=tmp_path / "api.lock",
        baseline=tmp_path / "baseline.json",
    )


def copy_fixture(name: str, tmp_path: Path) -> Path:
    target = tmp_path / name
    shutil.copytree(FIXTURES / name, target)
    return target


def run_fixture(
    package_dir: Path, tmp_path: Path, select=PASSES, locks=True
):
    config = config_for_fixture(package_dir, tmp_path)
    config.select = tuple(select)
    if locks:
        write_locks(config)
    return analyze(config)


def messages(findings):
    return [f.format() for f in findings]


class TestCleanPackage:
    def test_all_passes_come_back_empty(self, tmp_path):
        findings = run_fixture(FIXTURES / "cleanpkg", tmp_path)
        assert messages(findings) == []


class TestSeedsPass:
    def test_clean_worker_has_no_seed_findings(self, tmp_path):
        findings = run_fixture(
            FIXTURES / "cleanpkg", tmp_path, select=("seeds",), locks=False
        )
        assert messages(findings) == []

    def test_flags_laundered_literal_seed(self, tmp_path):
        findings = run_fixture(
            FIXTURES / "dirtypkg", tmp_path, select=("seeds",), locks=False
        )
        laundered = [
            f for f in findings if "laundered through parameter 'n'" in f.message
        ]
        assert len(laundered) == 1
        assert laundered[0].path == "dirtypkg/worker.py"
        assert laundered[0].symbol == "dirtypkg.worker:execute_task"

    def test_flags_ambient_rng(self, tmp_path):
        findings = run_fixture(
            FIXTURES / "dirtypkg", tmp_path, select=("seeds",), locks=False
        )
        assert any(
            "ambient OS entropy" in f.message
            and f.symbol == "dirtypkg.worker:ambient_rng"
            for f in findings
        )


class TestSchemaPass:
    def test_clean_emit_sites_and_registry(self, tmp_path):
        findings = run_fixture(
            FIXTURES / "cleanpkg", tmp_path, select=("schema",)
        )
        assert messages(findings) == []

    def test_flags_drifted_emit_site(self, tmp_path):
        findings = run_fixture(
            FIXTURES / "dirtypkg", tmp_path, select=("schema",)
        )
        drift = [f for f in findings if "drifted" in f.message]
        assert len(drift) == 1
        assert drift[0].path == "dirtypkg/emitter.py"
        assert "no field 'delay'" in drift[0].message

    def test_flags_event_missing_from_registry(self, tmp_path):
        findings = run_fixture(
            FIXTURES / "dirtypkg", tmp_path, select=("schema",)
        )
        assert any(
            "Pong" in f.message and "EVENT_TYPES" in f.message
            for f in findings
        )

    def test_field_change_without_schema_bump_fails(self, tmp_path):
        package_dir = copy_fixture("cleanpkg", tmp_path)
        config = config_for_fixture(package_dir, tmp_path)
        write_locks(config)
        events = package_dir / "events.py"
        events.write_text(
            events.read_text().replace(
                "    station: int\n    payload: int = 0\n",
                "    station: int\n    payload: int = 0\n    hops: int = 1\n",
            )
        )
        config.select = ("schema",)
        findings = analyze(config)
        assert any(
            "bump" in f.message and "SCHEMA" in f.message for f in findings
        ), messages(findings)

    def test_regenerated_lock_round_trips(self, tmp_path):
        package_dir = copy_fixture("cleanpkg", tmp_path)
        config = config_for_fixture(package_dir, tmp_path)
        config.select = ("schema",)
        write_locks(config)
        assert messages(analyze(config)) == []
        first = config.schema_lock.read_text()
        write_locks(config)
        assert config.schema_lock.read_text() == first


class TestForkPass:
    def test_clean_worker_is_fork_safe(self, tmp_path):
        findings = run_fixture(
            FIXTURES / "cleanpkg", tmp_path, select=("fork",), locks=False
        )
        assert messages(findings) == []

    def test_flags_global_write_reachable_from_entry(self, tmp_path):
        findings = run_fixture(
            FIXTURES / "dirtypkg", tmp_path, select=("fork",), locks=False
        )
        assert any(
            "write to global '_COUNT'" in f.message
            and f.symbol == "dirtypkg.worker:execute_task"
            for f in findings
        )

    def test_flags_container_mutation(self, tmp_path):
        findings = run_fixture(
            FIXTURES / "dirtypkg", tmp_path, select=("fork",), locks=False
        )
        assert any("'_CACHE'" in f.message for f in findings)

    def test_unreachable_write_is_not_flagged(self, tmp_path):
        package_dir = copy_fixture("cleanpkg", tmp_path)
        helper = package_dir / "offline.py"
        helper.write_text(
            '"""Not reachable from the worker entry point."""\n\n'
            "__all__ = []\n\n_STATE = {}\n\n\n"
            "def tune(key, value):\n"
            "    _STATE[key] = value\n"
        )
        config = config_for_fixture(package_dir, tmp_path)
        config.select = ("fork",)
        findings = analyze(config)
        assert messages(findings) == []


class TestApiPass:
    def test_locked_surface_is_clean(self, tmp_path):
        findings = run_fixture(FIXTURES / "cleanpkg", tmp_path, select=("api",))
        assert messages(findings) == []

    def test_removed_public_name_is_an_api_break(self, tmp_path):
        package_dir = copy_fixture("cleanpkg", tmp_path)
        config = config_for_fixture(package_dir, tmp_path)
        write_locks(config)
        api = package_dir / "api.py"
        api.write_text(
            api.read_text()
            .replace('__all__ = ["WIDTH", "shout"]', '__all__ = ["WIDTH"]')
            .replace("def shout(text: str) -> str:\n    return text.upper()\n", "")
        )
        config.select = ("api",)
        findings = analyze(config)
        assert any(
            "api break" in f.message and "'shout'" in f.message
            for f in findings
        ), messages(findings)

    def test_signature_change_requires_lock_regeneration(self, tmp_path):
        package_dir = copy_fixture("cleanpkg", tmp_path)
        config = config_for_fixture(package_dir, tmp_path)
        write_locks(config)
        api = package_dir / "api.py"
        api.write_text(
            api.read_text().replace(
                "def shout(text: str) -> str:",
                "def shout(text: str, times: int = 1) -> str:",
            )
        )
        config.select = ("api",)
        findings = analyze(config)
        assert any(
            "signature" in f.message and "--write-locks" in f.message
            for f in findings
        )
        # Regenerating the lock resolves it.
        write_locks(config)
        assert messages(analyze(config)) == []

    def test_ghost_all_name_is_flagged(self, tmp_path):
        package_dir = copy_fixture("cleanpkg", tmp_path)
        api = package_dir / "api.py"
        api.write_text(
            api.read_text().replace(
                '__all__ = ["WIDTH", "shout"]',
                '__all__ = ["WIDTH", "ghost", "shout"]',
            )
        )
        config = config_for_fixture(package_dir, tmp_path)
        write_locks(config)
        config.select = ("api",)
        findings = analyze(config)
        assert any(
            "'ghost'" in f.message and "never" in f.message for f in findings
        ), messages(findings)


class TestSuppressionsAndBaseline:
    def test_inline_disable_silences_and_unused_is_flagged(self, tmp_path):
        package_dir = copy_fixture("dirtypkg", tmp_path)
        worker = package_dir / "worker.py"
        text = worker.read_text().replace(
            "    return np.random.default_rng()\n",
            "    return np.random.default_rng()  # reproflow: disable=seeds\n",
        )
        worker.write_text(text)
        config = config_for_fixture(package_dir, tmp_path)
        config.select = ("seeds",)
        findings = analyze(config)
        assert not any("ambient OS entropy" in f.message for f in findings)

    def test_unused_inline_disable_is_reported(self, tmp_path):
        package_dir = copy_fixture("cleanpkg", tmp_path)
        api = package_dir / "api.py"
        api.write_text(
            api.read_text().replace(
                "WIDTH = 3\n",
                "WIDTH = 3  # reproflow: disable=seeds\n",
            )
        )
        config = config_for_fixture(package_dir, tmp_path)
        config.select = ("seeds",)
        findings = analyze(config)
        assert [f.pass_id for f in findings] == ["suppress"]
        assert "silences nothing" in findings[0].message

    def test_baseline_entry_suppresses_and_unused_is_reported(self, tmp_path):
        entry = BaselineEntry(
            pass_id="fork",
            path="dirtypkg/worker.py",
            contains="_COUNT",
            reason="test",
        )
        baseline = Baseline(entries=[entry], path=tmp_path / "baseline.json")
        config = config_for_fixture(FIXTURES / "dirtypkg", tmp_path)
        config.select = PASSES  # full run so baseline hygiene applies
        write_locks(config)
        findings = analyze(config, baseline=baseline)
        assert not any("_COUNT" in f.message for f in findings)

        stale = Baseline(
            entries=[
                BaselineEntry(
                    pass_id="fork",
                    path="dirtypkg/worker.py",
                    contains="no-such-finding",
                    reason="test",
                )
            ],
            path=tmp_path / "baseline.json",
        )
        findings = analyze(config, baseline=stale)
        assert any(
            f.pass_id == "suppress" and "unused baseline entry" in f.message
            for f in findings
        )

    def test_baseline_entries_require_reasons(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps([{"pass": "fork", "path": "x.py"}]))
        with pytest.raises(ValueError, match="reason"):
            load_baseline(bad)

    def test_filter_suppressed_skips_hygiene_for_unrun_passes(self):
        sources = {"pkg/mod.py": ["x = 1  # reproflow: disable=schema"]}
        kept, hygiene = filter_suppressed(
            [], sources, baseline=None, selected_passes={"seeds"}
        )
        assert kept == [] and hygiene == []


class TestRealRepository:
    def test_deep_lint_is_clean(self):
        config = config_for_repo(REPO_ROOT)
        findings = analyze(config)
        assert messages(findings) == []

    def test_committed_locks_are_fresh(self, tmp_path):
        config = config_for_repo(REPO_ROOT)
        config.schema_lock = tmp_path / "schema.lock"
        config.api_lock = tmp_path / "api.lock"
        write_locks(config)
        committed = REPO_ROOT / "tools" / "reproflow"
        assert (
            (tmp_path / "schema.lock").read_text()
            == (committed / "schema.lock").read_text()
        )
        assert (
            (tmp_path / "api.lock").read_text()
            == (committed / "api.lock").read_text()
        )

    def test_mutating_real_event_field_without_bump_fails(self, tmp_path):
        src = REPO_ROOT / "src" / "repro"
        mirror = tmp_path / "repro"
        shutil.copytree(src, mirror)
        events = mirror / "obs" / "events.py"
        text = events.read_text()
        needle = "    station: int\n"
        assert needle in text
        events.write_text(
            text.replace(needle, "    station: int\n    mutated_field: int = 0\n", 1)
        )
        config = config_for_repo(REPO_ROOT)
        config.src_root = mirror
        config.select = ("schema",)
        findings = analyze(config)
        assert findings, "field mutation without SCHEMA bump must fail"

    def test_removing_real_public_name_fails(self, tmp_path):
        src = REPO_ROOT / "src" / "repro"
        mirror = tmp_path / "repro"
        shutil.copytree(src, mirror)
        stats = mirror / "analysis" / "scheduling_stats.py"
        text = stats.read_text()
        assert '    "measure_waits",\n' in text
        stats.write_text(text.replace('    "measure_waits",\n', "", 1))
        config = config_for_repo(REPO_ROOT)
        config.src_root = mirror
        config.select = ("api",)
        findings = analyze(config)
        assert any(
            "api break" in f.message and "'measure_waits'" in f.message
            for f in findings
        ), messages(findings)


class TestCli:
    def test_main_clean_run(self, capsys):
        assert main(["--root", str(REPO_ROOT)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_main_json_output(self, capsys):
        assert main(["--root", str(REPO_ROOT), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "reproflow"
        assert payload["count"] == 0

    def test_main_rejects_unknown_pass(self):
        with pytest.raises(SystemExit):
            main(["--root", str(REPO_ROOT), "--select", "nonsense"])

    def test_main_reports_findings_with_exit_one(self, tmp_path, capsys):
        # A repo-shaped tree whose src/repro has an ambient RNG.
        (tmp_path / "tools" / "reproflow").mkdir(parents=True)
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "__init__.py").write_text('"""Stub."""\n\n__all__ = []\n')
        (package / "bad.py").write_text(
            '"""Stub."""\n\nimport numpy as np\n\n__all__ = []\n\n\n'
            "def draw():\n    return np.random.default_rng()\n"
        )
        assert main(["--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "ambient OS entropy" in out

    def test_repro_cli_lint_deep(self, capsys, monkeypatch):
        from repro.cli import main as repro_main

        monkeypatch.chdir(REPO_ROOT)
        assert repro_main(["lint", "--deep"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_repro_cli_lint_requires_deep(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint"]) == 2
