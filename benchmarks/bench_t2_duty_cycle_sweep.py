"""Bench T2: receive-duty-cycle sweep — p ~= 0.3 near-optimal [thesis]."""

from repro.experiments import get_experiment


def test_bench_t2_duty_cycle_sweep(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("T2")(
            receive_fractions=(0.1, 0.2, 0.3, 0.4, 0.5, 0.7),
            station_count=30,
            duration_slots=400,
            load_packets_per_slot=0.25,
        ),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    best = report.claims["near-optimal receive duty cycle"][1]
    assert 0.2 <= best <= 0.4
