"""Bench: simulator hot-path throughput on the loaded-network scenario.

Unlike the figure/table benches, the deliverable here is the timing
itself: events/sec on the seeded 100-station scenario, the quantity
tracked in ``BENCH_medium.json``.  The delivery/loss counts double as a
correctness fingerprint — they are seed-determined, so any change to
them means the medium's physics changed, not just its speed.
"""

from repro.analysis.perf import format_samples, run_perf_scenario


def test_bench_perf_medium_100(benchmark, capsys):
    sample = benchmark.pedantic(
        lambda: run_perf_scenario(stations=100, load=0.1),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_samples([sample]))
    assert sample.events > 0
    assert sample.deliveries > 0
    assert sample.losses == 0
    assert sample.collision_free
