"""Bench A1: clock-model quality and guard band versus losses."""

from repro.experiments import get_experiment


def test_bench_a1_guard_jitter(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("A1")(),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    assert report.claims["losses with 2 exchanges, guard 0.0"][1] > 0
    assert report.claims["losses with 8 exchanges, guard 0.1"][1] == 0
