"""Integration tests: the simulation-driven experiments reproduce the
paper's qualitative shapes (small parameterisations for test speed)."""

import pytest

from repro.experiments import get_experiment


class TestT2DutyCycleSweep:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("T2")(
            receive_fractions=(0.1, 0.3, 0.6),
            station_count=20,
            duration_slots=250,
            load_packets_per_slot=0.2,
        )

    def test_optimum_is_middle_of_range(self, report):
        assert report.claims["near-optimal receive duty cycle"][1] == 0.3

    def test_all_runs_loss_free(self, report):
        # The scheme stays collision-free at every p.
        throughputs = {row[0]: row[3] for row in report.rows}
        assert all(value > 0 for value in throughputs.values())


class TestT3HolBlocking:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("T3")(duration_slots=800)

    def test_duty_cycle_approaches_half(self, report):
        duty = report.claims["duty cycle without HOL blocking"][1]
        assert duty > 0.35

    def test_fifo_is_much_worse(self, report):
        assert report.claims["per-neighbour beats FIFO"][1] > 2.0

    def test_loss_free(self, report):
        assert report.claims["losses (both runs)"][1] == 0


class TestT4CollisionFree:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("T4")(
            station_counts=(60,),
            duration_slots=250,
            load_packets_per_slot=0.05,
            control_run=True,
        )

    def test_scheme_has_zero_losses(self, report):
        assert report.claims["zero losses at 60 stations"][1] == 0

    def test_control_mac_loses_packets(self, report):
        control_row = next(r for r in report.rows if "control" in r[1])
        assert control_row[4] > 0  # losses column

    def test_scheme_delivers_every_transmission(self, report):
        scheme_row = next(r for r in report.rows if r[1] == "shepard")
        assert scheme_row[2] == scheme_row[3]  # transmissions == deliveries


class TestT7Baselines:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("T7")(
            loads_packets_per_slot=(0.05,),
            station_count=20,
            duration_slots=250,
        )

    def test_whole_registry_ran(self, report):
        from repro.mac import mac_names

        macs = {row[0] for row in report.rows}
        assert macs == set(mac_names())
        assert {"shepard", "aloha", "slotted_aloha", "csma", "maca"} <= macs

    def test_scheme_lossless_baselines_not(self, report):
        assert report.claims["scheme losses across all loads"][1] == 0
        assert report.claims["baseline losses across all loads"][1] > 0

    def test_only_maca_pays_control_overhead(self, report):
        for row in report.rows:
            mac, control = row[0], row[4]
            if mac == "maca":
                assert control > 0
            else:
                assert control == 0


class TestT10RoutingTradeoff:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("T10")(station_count=30, duration_slots=200)

    def test_min_energy_radiates_less(self, report):
        assert report.claims[
            "interference energy ratio (min-hop / min-energy)"
        ][1] > 1.0

    def test_min_energy_takes_more_hops(self, report):
        assert report.claims["hop-count ratio (min-energy / min-hop)"][1] > 1.0

    def test_sim_energy_ordering(self, report):
        energies = {row[0]: row[3] for row in report.rows}
        assert energies["min_energy"] < energies["min_hop"]
