"""Tests for the distributed distance-vector computations."""

import math

import numpy as np
import pytest

from repro.propagation.geometry import uniform_disk
from repro.propagation.matrix import PropagationMatrix
from repro.propagation.models import FreeSpace
from repro.routing.bellman_ford import DistributedBellmanFord, synchronous_rounds
from repro.routing.min_energy import dijkstra, energy_costs


def random_costs(count=15, seed=0, censor_quantile=0.5):
    placement = uniform_disk(count, radius=100.0, seed=seed)
    matrix = PropagationMatrix.from_placement(
        placement, FreeSpace(near_field_clamp=1e-6)
    )
    threshold = float(
        np.quantile(matrix.gains[matrix.gains > 0], censor_quantile)
    )
    return energy_costs(matrix.observed(min_gain=threshold))


class TestSynchronousRounds:
    def test_matches_dijkstra(self):
        costs = random_costs(seed=1)
        tables, _rounds = synchronous_rounds(costs)
        for source in range(costs.shape[0]):
            distance, _ = dijkstra(costs, source)
            for destination in range(costs.shape[0]):
                if destination == source:
                    continue
                if math.isfinite(distance[destination]):
                    assert tables[source].cost(destination) == pytest.approx(
                        float(distance[destination])
                    )
                else:
                    assert not tables[source].has_route(destination)

    def test_converges_within_station_count_rounds(self):
        costs = random_costs(seed=2)
        _tables, rounds = synchronous_rounds(costs)
        assert rounds <= costs.shape[0]

    def test_round_limit_enforced(self):
        costs = random_costs(seed=3)
        with pytest.raises(RuntimeError):
            synchronous_rounds(costs, max_rounds=1)


class TestDistributed:
    def test_matches_dijkstra(self):
        costs = random_costs(seed=4)
        tables = DistributedBellmanFord(costs).run()
        for source in range(costs.shape[0]):
            distance, _ = dijkstra(costs, source)
            for destination in range(costs.shape[0]):
                if destination != source and math.isfinite(distance[destination]):
                    assert tables[source].cost(destination) == pytest.approx(
                        float(distance[destination])
                    )

    def test_message_order_does_not_change_fixed_point(self):
        costs = random_costs(seed=5)
        reference = DistributedBellmanFord(costs).run()
        for seed in (0, 1, 2):
            shuffled = DistributedBellmanFord(
                costs, rng=np.random.default_rng(seed)
            ).run()
            for station in reference:
                assert shuffled[station].costs == pytest.approx(
                    reference[station].costs
                )

    def test_message_budget_enforced(self):
        costs = random_costs(seed=6)
        with pytest.raises(RuntimeError):
            DistributedBellmanFord(costs).run(max_messages=3)

    def test_rejects_nonpositive_costs(self):
        costs = np.array([[math.inf, 0.0], [1.0, math.inf]])
        with pytest.raises(ValueError):
            DistributedBellmanFord(costs)
