"""Ablation A4: footnote 9's adaptive power policy.

"A better idea might be to transmit with power sufficient to just
achieve the necessary signal-to-noise ratio.  That would require
knowing what the noise levels at the receiver will be, but the recent
past might be a good-enough predictor ...  This idea will not be
explored further here."

We explore it: compare the paper's constant-delivered-power rule with
the footnote's target-SIR rule across receivers that differ in local
interference (a clustered placement makes the bounds heterogeneous).
The adaptive rule radiates less total power — it stops over-delivering
to receivers in quiet areas — while still clearing every threshold,
i.e. it trades the constant rule's simplicity for energy and
interference savings.
"""

from __future__ import annotations

import numpy as np

from repro.core.power_control import ConstantDeliveredPolicy, TargetSirPolicy
from repro.experiments.runner import ExperimentReport, register
from repro.net.network import NetworkConfig, build_network
from repro.propagation.geometry import clustered

__all__ = ["run"]


@register("A4")
def run(
    cluster_count: int = 6,
    per_cluster: int = 6,
    seed: int = 107,
    headroom: float = 1.2,
) -> ExperimentReport:
    """Compare the two power rules' radiated power and SIR margins."""
    report = ExperimentReport(
        experiment_id="A4",
        title="Ablation: footnote 9's target-SIR power rule",
        columns=(
            "policy",
            "total radiated (W)",
            "min SIR margin",
            "max over-delivery (x)",
        ),
    )
    placement = clustered(
        cluster_count=cluster_count,
        per_cluster=per_cluster,
        radius=1000.0,
        cluster_spread=0.06,
        seed=seed,
    )
    network = build_network(placement, NetworkConfig(seed=seed))
    budget = network.budget
    bounds = budget.interference_bounds + budget.thermal_noise_w

    constant = ConstantDeliveredPolicy(
        target_received_w=network.config.target_delivered_w
    )
    adaptive = TargetSirPolicy(
        target_sir=budget.sir_threshold * headroom,
        fallback_noise_w=float(bounds.max()),
    )

    for name, policy, knows_noise in (
        ("constant delivered (paper)", constant, False),
        ("target SIR (footnote 9)", adaptive, True),
    ):
        total_power = 0.0
        min_margin = np.inf
        max_over = 0.0
        for station in network.stations:
            for hop in station.table.neighbors_in_use():
                gain = network.matrix.gain(hop, station.index)
                observed = float(bounds[hop]) if knows_noise else None
                power = policy.transmit_power(
                    gain, max_power_w=1e18, observed_noise_w=observed
                )
                delivered = power * gain
                sir = delivered / float(bounds[hop])
                total_power += power
                min_margin = min(min_margin, sir / budget.sir_threshold)
                max_over = max(max_over, sir / budget.sir_threshold)
        report.add_row(name, total_power, float(min_margin), float(max_over))
        if knows_noise:
            adaptive_power = total_power
            adaptive_margin = float(min_margin)
        else:
            constant_power = total_power

    report.claim(
        "adaptive rule still clears every threshold",
        ">= 1",
        adaptive_margin,
    )
    report.claim(
        "radiated-power saving (constant / adaptive)",
        "> 1 (less over-delivery in quiet areas)",
        constant_power / adaptive_power,
    )
    report.notes.append(
        "SIR margins are against each receiver's worst-case interference "
        "bound.  The constant rule over-delivers to receivers whose local "
        "bound is far below the network-wide worst case — exactly the waste "
        "the footnote hypothesises the adaptive rule removes."
    )
    return report
