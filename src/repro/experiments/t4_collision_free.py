"""Experiment T4: collision-free operation at 100 and 1000 stations.

The paper's central claim: "a decentralized channel access scheme ...
that is free of packet loss due to collisions", demonstrated in the
thesis with simulations of networks of 100 and 1000 stations.  This
experiment runs loaded multihop networks under the scheme and asserts
*zero* hop losses of any kind; an ALOHA control run on the identical
network shows the losses the scheme removes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.runner import ExperimentReport, register
from repro.experiments.simsetup import run_loaded_network
from repro.mac.aloha import AlohaMac
from repro.net.network import NetworkConfig
from repro.sim.streams import RandomStreams

__all__ = ["run"]


@register("T4")
def run(
    station_counts: Sequence[int] = (100, 1000),
    load_packets_per_slot: float = 0.03,
    duration_slots: float = 400.0,
    seed: int = 29,
    control_run: bool = True,
    config: Optional[NetworkConfig] = None,
) -> ExperimentReport:
    """Run the scheme at the paper's scales and count losses."""
    report = ExperimentReport(
        experiment_id="T4",
        title="Collision-free transfer at the paper's simulation scales",
        columns=(
            "stations",
            "mac",
            "transmissions",
            "hop deliveries",
            "losses",
            "type1",
            "type2",
            "type3",
        ),
    )
    base_config = config or NetworkConfig()
    for count in station_counts:
        network, result = run_loaded_network(
            count,
            load_packets_per_slot,
            duration_slots,
            placement_seed=seed + count,
            traffic_seed=seed,
            config=base_config,
        )
        types = {t.value: n for t, n in result.losses_by_type.items()}
        report.add_row(
            count,
            "shepard",
            result.transmissions,
            result.hop_deliveries,
            result.losses_total,
            types.get(1, 0),
            types.get(2, 0),
            types.get(3, 0),
        )
        report.claim(
            f"zero losses at {count} stations", 0, result.losses_total
        )

        if control_run:
            streams = RandomStreams(seed + 1)
            _, control = run_loaded_network(
                count,
                load_packets_per_slot,
                duration_slots,
                placement_seed=seed + count,
                traffic_seed=seed,
                config=base_config,
                mac_factory=lambda i, b: AlohaMac(streams.stream(f"aloha{i}")),
            )
            control_types = {t.value: n for t, n in control.losses_by_type.items()}
            report.add_row(
                count,
                "aloha (control)",
                control.transmissions,
                control.hop_deliveries,
                control.losses_total,
                control_types.get(1, 0),
                control_types.get(2, 0),
                control_types.get(3, 0),
            )
    report.notes.append(
        "Same placements, routes, powers, and traffic for both MACs; only "
        "channel access differs.  The scheme's zero-loss row is exact, not "
        "statistical: the design-rate calibration guarantees the SIR "
        "criterion under any permitted concurrency."
    )
    return report
