"""Bench T6: power-control ablation (Section 6.1)."""

import pytest

from repro.experiments import get_experiment


def test_bench_t6_power_control(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("T6")(
            station_count=150, density_factors=(1.0, 4.0, 16.0)
        ),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    assert report.claims["delivered-power spread under control (dB)"][
        1
    ] == pytest.approx(0.0, abs=1e-6)
    assert (
        report.claims["radiated power density variation across 16x density range"][1]
        < 1.6
    )
