"""Experiment T2: receive-duty-cycle sweep (thesis result, Section 7.2).

"In [8] the parameters of this scheduling method are explored and a 30%
receive-duty cycle is found to be nearly-optimal for a wide range of
situations."  This experiment sweeps p over loaded networks and reports
delivered throughput per p; the reproduction claim is that the optimum
sits near 0.3 and the curve is flat-topped (nearly-optimal over a
range), not that any absolute throughput matches.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentReport, register
from repro.experiments.simsetup import run_loaded_network
from repro.net.network import NetworkConfig

__all__ = ["run"]


@register("T2")
def run(
    receive_fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.7),
    station_count: int = 40,
    load_packets_per_slot: float = 0.25,
    duration_slots: float = 600.0,
    seed: int = 31,
) -> ExperimentReport:
    """Sweep p and measure network throughput."""
    if not receive_fractions:
        raise ValueError("need at least one receive fraction")
    report = ExperimentReport(
        experiment_id="T2",
        title="Receive-duty-cycle sweep: p ~= 0.3 is near-optimal [thesis]",
        columns=(
            "p",
            "hop deliveries",
            "e2e deliveries",
            "hop throughput /slot",
            "mean duty",
        ),
    )
    throughputs = {}
    for p in receive_fractions:
        config = NetworkConfig(receive_fraction=p, seed=seed)
        network, result = run_loaded_network(
            station_count,
            load_packets_per_slot,
            duration_slots,
            placement_seed=seed,
            traffic_seed=seed + 1,
            config=config,
        )
        hop_rate = result.hop_deliveries / duration_slots
        throughputs[p] = hop_rate
        report.add_row(
            p,
            result.hop_deliveries,
            result.delivered_end_to_end,
            hop_rate,
            result.mean_duty_cycle,
        )
    best = max(throughputs, key=throughputs.get)
    report.claim("near-optimal receive duty cycle", 0.3, best)
    best_rate = throughputs[best]
    if 0.3 in throughputs and best_rate > 0:
        report.claim(
            "throughput at p=0.3 relative to best",
            "~1 (flat-topped)",
            throughputs[0.3] / best_rate,
        )
    report.notes.append(
        "Throughput is hop deliveries per slot across the network, under "
        "saturating uniform Poisson load; identical placement/traffic per p."
    )
    return report
