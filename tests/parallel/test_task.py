"""TaskSpec/TaskResult: validation, execution, digests, round-trips."""

import numpy as np
import pytest

from repro.experiments.runner import ExperimentReport
from repro.parallel.task import (
    TaskSpec,
    canonicalize,
    execute_task,
    payload_digest,
    payload_to_report,
    report_to_payload,
    resolve_function,
    results_digest,
)

WORKERS = "tests.parallel.workers"


class TestTaskSpecValidation:
    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            TaskSpec(task_id="", kind="function", target=f"{WORKERS}:echo")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TaskSpec(task_id="t", kind="mystery", target="x:y")

    def test_rejects_missing_target(self):
        with pytest.raises(ValueError):
            TaskSpec(task_id="t", kind="experiment")

    def test_rejects_bad_timeout_and_retries(self):
        with pytest.raises(ValueError):
            TaskSpec(
                task_id="t", kind="scenario", timeout_s=0.0
            )
        with pytest.raises(ValueError):
            TaskSpec(task_id="t", kind="scenario", retries=-1)

    def test_kwargs_merges_seed(self):
        spec = TaskSpec(
            task_id="t",
            kind="function",
            target=f"{WORKERS}:seed_probe",
            params={"tag": "x"},
            seed=99,
        )
        assert spec.kwargs() == {"tag": "x", "seed": 99}


class TestExecuteTask:
    def test_function_mapping_payload(self):
        spec = TaskSpec(
            task_id="t",
            kind="function",
            target=f"{WORKERS}:echo",
            params={"a": 1},
        )
        result = execute_task(spec)
        assert result.ok and result.payload == {"a": 1}
        assert result.payload_digest is not None

    def test_function_scalar_payload_wrapped(self):
        spec = TaskSpec(
            task_id="t",
            kind="function",
            target=f"{WORKERS}:double",
            params={"value": 21},
        )
        assert execute_task(spec).payload == {"value": 42}

    def test_seed_injection(self):
        spec = TaskSpec(
            task_id="t",
            kind="function",
            target=f"{WORKERS}:seed_probe",
            seed=31337,
        )
        assert execute_task(spec).payload["seed"] == 31337

    def test_exception_becomes_structured_error(self):
        spec = TaskSpec(
            task_id="t", kind="function", target=f"{WORKERS}:explode"
        )
        result = execute_task(spec)
        assert not result.ok
        assert result.payload is None
        assert "ValueError: boom" in result.error

    def test_bad_target_becomes_structured_error(self):
        spec = TaskSpec(
            task_id="t", kind="function", target="no.such.module:f"
        )
        result = execute_task(spec)
        assert not result.ok and "ModuleNotFoundError" in result.error

    def test_scenario_reports_replay_digest(self):
        spec = TaskSpec(
            task_id="s",
            kind="scenario",
            params={"stations": 12, "load": 0.05, "duration_slots": 30.0},
            seed=29,
        )
        result = execute_task(spec)
        assert result.ok
        assert result.replay_digest
        assert result.payload["replay_digest"] == result.replay_digest
        # Identical spec, identical everything.
        again = execute_task(spec)
        assert again.payload_digest == result.payload_digest
        assert again.replay_digest == result.replay_digest

    def test_scenario_rejects_unknown_parameters(self):
        spec = TaskSpec(
            task_id="s",
            kind="scenario",
            params={
                "stations": 12,
                "load": 0.05,
                "duration_slots": 30.0,
                "bogus": 1,
            },
        )
        result = execute_task(spec)
        assert not result.ok and "bogus" in result.error

    def test_experiment_kind_runs_registry(self):
        spec = TaskSpec(
            task_id="T8", kind="experiment", target="T8", params={}
        )
        result = execute_task(spec)
        assert result.ok
        assert result.payload["experiment_id"] == "T8"
        assert result.payload["rows"]


class TestResolveFunction:
    def test_resolves(self):
        assert resolve_function(f"{WORKERS}:double")(value=2) == 4

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            resolve_function("not_a_dotted_name")

    def test_rejects_missing_attribute(self):
        with pytest.raises(AttributeError):
            resolve_function(f"{WORKERS}:nonexistent")


class TestDigests:
    def test_payload_digest_canonicalises_numpy_and_tuples(self):
        plain = {"rows": [[1, 2.5]], "n": 3}
        fancy = {"rows": ((np.int64(1), np.float64(2.5)),), "n": np.int32(3)}
        assert payload_digest(plain) == payload_digest(fancy)

    def test_payload_digest_sensitive_to_values(self):
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})

    def test_canonicalize_is_json_safe(self):
        value = canonicalize({"x": (np.float64(1.5), np.int64(2))})
        assert value == {"x": [1.5, 2]}

    def test_results_digest_marks_errors(self):
        ok = execute_task(
            TaskSpec(
                task_id="a",
                kind="function",
                target=f"{WORKERS}:echo",
                params={"v": 1},
            )
        )
        bad = execute_task(
            TaskSpec(task_id="b", kind="function", target=f"{WORKERS}:explode")
        )
        with_error = results_digest([ok, bad])
        without = results_digest([ok])
        assert with_error != without
        assert results_digest([ok, bad]) == with_error


class TestCanonicalizeEdgeCases:
    """Regressions for the values ``json.dumps`` cannot carry verbatim:
    non-finite floats and numpy arrays must digest deterministically and
    round-trip through strict (``allow_nan=False``) JSON."""

    def test_nonfinite_floats_become_markers(self):
        assert canonicalize(float("nan")) == {"__nonfinite__": "nan"}
        assert canonicalize(float("inf")) == {"__nonfinite__": "inf"}
        assert canonicalize(float("-inf")) == {"__nonfinite__": "-inf"}

    def test_nonfinite_digests_are_stable_and_distinct(self):
        nan_digest = payload_digest({"x": float("nan")})
        assert nan_digest == payload_digest({"x": float("nan")})
        digests = {
            nan_digest,
            payload_digest({"x": float("inf")}),
            payload_digest({"x": float("-inf")}),
            payload_digest({"x": "nan"}),  # the string is not the float
            payload_digest({"x": 0.0}),
        }
        assert len(digests) == 5

    def test_nonfinite_survive_strict_json_round_trip(self):
        import json

        canonical = canonicalize({"x": [float("nan"), float("inf"), 1.0]})
        text = json.dumps(canonical, sort_keys=True, allow_nan=False)
        assert json.loads(text) == canonical

    def test_numpy_nonfinite_scalars_match_python_floats(self):
        assert payload_digest({"x": np.float64("nan")}) == payload_digest(
            {"x": float("nan")}
        )
        assert payload_digest({"x": np.float32("inf")}) == payload_digest(
            {"x": float("inf")}
        )

    def test_numpy_arrays_become_nested_lists(self):
        assert canonicalize(np.array([1, 2, 3])) == [1, 2, 3]
        assert canonicalize(np.array([[1.5, 2.5], [3.5, 4.5]])) == [
            [1.5, 2.5],
            [3.5, 4.5],
        ]

    def test_numpy_array_digest_matches_plain_list(self):
        assert payload_digest({"rows": np.arange(4)}) == payload_digest(
            {"rows": [0, 1, 2, 3]}
        )

    def test_numpy_array_with_nan_elements(self):
        value = canonicalize(np.array([1.0, float("nan")]))
        assert value == [1.0, {"__nonfinite__": "nan"}]

    def test_single_element_array_stays_a_list(self):
        # Regression: size-1 ndarrays used to scalarise via ``.item()``,
        # silently digesting ``[7]`` and ``7`` identically.
        assert canonicalize(np.array([7])) == [7]
        assert payload_digest({"x": np.array([7])}) != payload_digest(
            {"x": 7}
        )

    def test_zero_d_array_is_a_scalar(self):
        assert canonicalize(np.array(7)) == 7
        assert canonicalize(np.float64(2.5)) == 2.5

    def test_spec_digest_handles_numpy_params(self):
        from repro.parallel.task import spec_digest

        with_numpy = TaskSpec(
            task_id="a",
            kind="function",
            target=f"{WORKERS}:echo",
            params={"values": np.array([1, 2]), "scale": np.float64(0.5)},
        )
        plain = TaskSpec(
            task_id="b",
            kind="function",
            target=f"{WORKERS}:echo",
            params={"values": [1, 2], "scale": 0.5},
        )
        assert spec_digest(with_numpy) == spec_digest(plain)

    def test_payload_digest_never_emits_nonstandard_json(self):
        # Every non-finite spelling must go through the marker path; a
        # raw NaN reaching the encoder is a loud failure, not a silent
        # platform-dependent token.
        digest = payload_digest({"deep": {"list": [float("nan")]}})
        assert isinstance(digest, str) and len(digest) == 32


class TestSpecDigest:
    def test_excludes_task_id_and_scheduling(self):
        from repro.parallel.task import spec_digest, spec_identity

        base = TaskSpec(
            task_id="one",
            kind="function",
            target=f"{WORKERS}:echo",
            params={"v": 1},
        )
        relabelled = TaskSpec(
            task_id="two",
            kind="function",
            target=f"{WORKERS}:echo",
            params={"v": 1},
            timeout_s=30.0,
            retries=5,
        )
        assert spec_digest(base) == spec_digest(relabelled)
        assert "task_id" not in spec_identity(base)

    def test_sensitive_to_work(self):
        from repro.parallel.task import spec_digest

        def spec(**kwargs):
            merged = {
                "task_id": "t",
                "kind": "function",
                "target": f"{WORKERS}:echo",
                "params": {"v": 1},
            }
            merged.update(kwargs)
            return TaskSpec(**merged)

        digests = {
            spec_digest(spec()),
            spec_digest(spec(params={"v": 2})),
            spec_digest(spec(seed=3)),
            spec_digest(spec(sanitize=True)),
            spec_digest(spec(target=f"{WORKERS}:double", params={"value": 1})),
        }
        assert len(digests) == 5


class TestReportRoundTrip:
    def test_round_trip_preserves_everything(self):
        report = ExperimentReport(
            experiment_id="T0",
            title="round trip",
            columns=("a", "b"),
            rows=[(1, 2.5), ("x", float("inf"))],
            claims={"c": (0, 0.1)},
            notes=["note"],
        )
        rebuilt = payload_to_report(report_to_payload(report))
        assert rebuilt.experiment_id == report.experiment_id
        assert rebuilt.title == report.title
        assert tuple(rebuilt.columns) == tuple(report.columns)
        assert rebuilt.rows == [(1, 2.5), ("x", float("inf"))]
        assert rebuilt.claims == {"c": (0, 0.1)}
        assert rebuilt.notes == ["note"]
