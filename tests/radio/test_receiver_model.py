"""Tests for the typed receiver-model API (capture/cancellation).

The SIC arithmetic is the load-bearing piece: cancellation must be
deterministic (power-sorted, seq tie-break), exact (the residual is
the original interference minus precisely the cancelled powers), and
bounded (depth, never below zero).  Hypothesis drives random
contribution sets through the model and re-derives the greedy chain
independently.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.receiver_model import (
    DefaultReceiver,
    SicReceiver,
    build_receiver_model,
    receiver_model_names,
)


class TestRegistry:
    def test_names(self):
        assert set(receiver_model_names()) == {"default", "sic"}

    def test_round_trip(self):
        assert build_receiver_model("default").name == "default"
        model = build_receiver_model("sic")
        assert model.name == "sic"
        assert model.cancels

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="default"):
            build_receiver_model("nope")

    def test_sic_depth_validated(self):
        with pytest.raises(ValueError):
            SicReceiver(depth=0)


class TestDefaultReceiver:
    def test_identity(self):
        model = DefaultReceiver()
        reduced, cancelled = model.resolve_interference(
            1.0, 0.5, 1e-9, 0.05, [(0.3, 1), (0.2, 2)]
        )
        assert reduced == 0.5
        assert cancelled == 0
        assert not model.cancels


def greedy_chain(wanted, interference, thermal, threshold, contributions, depth):
    """Independent re-derivation of the SIC chain the model must follow."""
    ordered = sorted(contributions, key=lambda entry: (-entry[0], entry[1]))
    residual_total = wanted + interference
    cancelled_power = 0.0
    cancelled = 0
    for power, _seq in ordered:
        if cancelled >= depth:
            break
        others = residual_total - power
        if power < threshold * (others + thermal):
            break
        residual_total -= power
        cancelled_power += power
        cancelled += 1
    if cancelled == 0:
        return interference, 0
    return max(interference - cancelled_power, 0.0), cancelled


class TestSicReceiver:
    def test_cancels_dominant_interferer(self):
        # One interferer 100x the rest: trivially decodable, removed.
        model = SicReceiver(depth=4)
        reduced, cancelled = model.resolve_interference(
            1.0, 10.01, 1e-9, 0.05, [(10.0, 7), (0.01, 8)]
        )
        assert cancelled == 1
        assert reduced == pytest.approx(0.01)

    def test_stops_at_first_undecodable(self):
        # Two comparable interferers jam each other: neither clears the
        # threshold against the other plus the wanted signal.
        model = SicReceiver(depth=4)
        reduced, cancelled = model.resolve_interference(
            1.0, 2.0, 1e-9, 0.9, [(1.0, 1), (1.0, 2)]
        )
        assert cancelled == 0
        assert reduced == 2.0

    def test_depth_bounds_cancellation(self):
        contributions = [(10.0 ** (3 - k), k) for k in range(4)]
        total = sum(p for p, _ in contributions)
        shallow = SicReceiver(depth=1)
        _reduced, cancelled = shallow.resolve_interference(
            1e-3, total, 1e-12, 0.05, contributions
        )
        assert cancelled == 1
        deep = SicReceiver(depth=4)
        _reduced, cancelled = deep.resolve_interference(
            1e-3, total, 1e-12, 0.05, contributions
        )
        assert cancelled > 1

    def test_order_independent_of_input_order(self):
        model = SicReceiver(depth=4)
        contributions = [(4.0, 2), (0.5, 9), (4.0, 1), (2.0, 5)]
        expected = model.resolve_interference(
            1.0, 10.5, 1e-9, 0.05, contributions
        )
        shuffled = [contributions[i] for i in (2, 0, 3, 1)]
        assert (
            model.resolve_interference(1.0, 10.5, 1e-9, 0.05, shuffled)
            == expected
        )

    @settings(max_examples=200, deadline=None)
    @given(
        powers=st.lists(
            st.floats(min_value=1e-6, max_value=1e3), min_size=0, max_size=8
        ),
        wanted=st.floats(min_value=1e-6, max_value=1e3),
        threshold=st.floats(min_value=1e-3, max_value=2.0),
        depth=st.integers(min_value=1, max_value=6),
    )
    def test_matches_independent_greedy_chain(
        self, powers, wanted, threshold, depth
    ):
        thermal = 1e-9
        contributions = [(p, seq) for seq, p in enumerate(powers)]
        interference = float(np.sum(powers)) if powers else 0.0
        model = SicReceiver(depth=depth)
        reduced, cancelled = model.resolve_interference(
            wanted, interference, thermal, threshold, contributions
        )
        exp_reduced, exp_cancelled = greedy_chain(
            wanted, interference, thermal, threshold, contributions, depth
        )
        assert cancelled == exp_cancelled
        assert reduced == exp_reduced
        # Invariants: bounded depth, never negative, never amplifies.
        assert 0 <= cancelled <= depth
        assert 0.0 <= reduced <= interference

    @settings(max_examples=100, deadline=None)
    @given(
        powers=st.lists(
            st.floats(min_value=1e-6, max_value=1e3), min_size=1, max_size=8
        ),
        wanted=st.floats(min_value=1e-6, max_value=1e3),
        threshold=st.floats(min_value=1e-3, max_value=2.0),
    )
    def test_cancellation_is_exact_restore(self, powers, wanted, threshold):
        """The residual equals the original interference minus exactly
        the cancelled contributions — nothing else is touched."""
        thermal = 1e-9
        contributions = [(p, seq) for seq, p in enumerate(powers)]
        interference = float(np.sum(powers))
        model = SicReceiver(depth=8)
        reduced, cancelled = model.resolve_interference(
            wanted, interference, thermal, threshold, contributions
        )
        ordered = sorted(contributions, key=lambda entry: (-entry[0], entry[1]))
        cancelled_sum = sum(p for p, _ in ordered[:cancelled])
        assert reduced == max(interference - cancelled_sum, 0.0)
