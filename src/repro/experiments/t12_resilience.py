"""Experiment T12: resilience under station churn, per MAC.

The paper's self-organisation argument (Sections 1 and 6) is that a
large dense network must survive stations appearing and disappearing
without operator action.  This experiment injects a deterministic
churn episode (crash/recover cycles drawn from the fault seed tree)
into the T7 shootout networks and measures, per MAC and churn rate:
the pre-fault delivery ratio, the ratio during the churn episode, how
long after the episode delivery returns to within 5% of the pre-fault
steady state, and the routing layer's mean time-to-reroute.

Expected shape: every MAC loses deliveries while stations are down
(those losses are physics, not protocol); the scheme recovers its
steady-state delivery ratio once churn stops, and rerouting latency is
set by the injected reroute delay, not by the MAC.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentReport, register, run_many
from repro.experiments.simsetup import add_uniform_poisson, standard_network
from repro.faults import StationChurn, compile_plan, install_faults
from repro.mac.registry import get_mac, mac_names
from repro.net.network import NetworkConfig
from repro.obs import Instrumentation, MetricTimelines
from repro.parallel.seedtree import derive_seed

__all__ = ["RECOVERY_FRACTION", "run", "run_resilience_point"]

#: Recovery criterion: a post-churn window counts as recovered once its
#: delivery ratio reaches this fraction of the pre-fault steady state.
RECOVERY_FRACTION = 0.95


def _window_ratio(before: Tuple[int, int], after: Tuple[int, int]) -> float:
    """Delivery ratio of the window between two snapshots (NaN if no
    traffic originated in the window)."""
    originated = after[0] - before[0]
    delivered = after[1] - before[1]
    if originated <= 0:
        return float("nan")
    return delivered / originated


def run_resilience_point(
    churn_rate: float,
    station_count: int = 24,
    warmup_slots: float = 150.0,
    churn_slots: float = 150.0,
    recovery_slots: float = 300.0,
    window_slots: float = 50.0,
    mean_downtime_slots: float = 40.0,
    load_packets_per_slot: float = 0.05,
    seed: int = 47,
    macs: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """One churn-rate point: every requested MAC through the same fault
    schedule.

    The importable unit of work the parallel task layer fans out
    (``kind="function"``, target ``repro.experiments.t12_resilience:
    run_resilience_point``).  The churn plan is compiled once per point
    from the fault seed tree, so every MAC faces the identical
    crash/recover schedule and the point is bit-reproducible at any
    worker count.

    Returns the report rows plus the recovery tallies the summary
    claims accumulate.
    """
    if churn_rate <= 0.0:
        raise ValueError("churn_rate must be positive")
    if warmup_slots <= window_slots:
        raise ValueError("warmup must be longer than one measurement window")
    if macs is None:
        names = mac_names()
    else:
        names = tuple(macs)
        for name in names:
            get_mac(name)  # fail fast on unknown names
    churn = StationChurn(
        rate_per_slot=churn_rate,
        start_slot=warmup_slots,
        end_slot=warmup_slots + churn_slots,
        mean_downtime_slots=mean_downtime_slots,
    )
    plan = compile_plan(
        [churn],
        seed=derive_seed(seed, "t12", "churn"),
        station_count=station_count,
    )
    rows: List[Tuple[Any, ...]] = []
    recoveries: Dict[str, float] = {}
    for name in names:
        timelines = MetricTimelines(station_count=station_count)
        network = standard_network(
            station_count,
            placement_seed=seed,
            config=NetworkConfig(seed=seed),
            mac=name,
            trace=False,
            instrumentation=Instrumentation((timelines,)),
        )
        add_uniform_poisson(network, load_packets_per_slot, seed + 1)
        injector = install_faults(network, plan)
        assert injector is not None  # churn_rate > 0 always emits events
        slot = network.budget.slot_time

        # The first window absorbs the pipeline-fill transient (deliveries
        # lag originations until queues reach steady state) and is
        # excluded from the pre-fault baseline.
        network.run(window_slots * slot)
        fill_snapshot = timelines.delivery_snapshot()
        network.run((warmup_slots - window_slots) * slot)
        pre_snapshot = timelines.delivery_snapshot()
        pre_ratio = _window_ratio(fill_snapshot, pre_snapshot)

        network.run(churn_slots * slot)
        churn_snapshot = timelines.delivery_snapshot()
        churn_ratio = _window_ratio(pre_snapshot, churn_snapshot)

        threshold = RECOVERY_FRACTION * pre_ratio
        recovery_latency = float("nan")
        final_ratio = float("nan")
        elapsed = 0.0
        last = churn_snapshot
        while elapsed < recovery_slots:
            network.run(window_slots * slot)
            elapsed += window_slots
            snapshot = timelines.delivery_snapshot()
            final_ratio = _window_ratio(last, snapshot)
            last = snapshot
            if math.isnan(recovery_latency) and final_ratio >= threshold:
                recovery_latency = elapsed

        reroute_slots = injector.log.mean_time_to_reroute() / slot
        rows.append(
            (
                name,
                churn_rate,
                timelines.fault_count("down"),
                pre_ratio,
                churn_ratio,
                final_ratio,
                recovery_latency,
                reroute_slots,
                timelines.fault_losses(),
                timelines.sir_losses(),
                timelines.fault_queue_drops,
                timelines.arq_retries,
                timelines.arq_giveups,
            )
        )
        recoveries[name] = (
            final_ratio / pre_ratio if pre_ratio > 0 else float("nan")
        )
    return {"rows": rows, "recoveries": recoveries}


@register("T12")
def run(
    churn_rates: Sequence[float] = (0.01, 0.03),
    station_count: int = 24,
    warmup_slots: float = 150.0,
    churn_slots: float = 150.0,
    recovery_slots: float = 300.0,
    window_slots: float = 50.0,
    mean_downtime_slots: float = 40.0,
    load_packets_per_slot: float = 0.05,
    seed: int = 47,
    macs: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> ExperimentReport:
    """Delivery ratio and recovery latency versus churn rate, per MAC.

    Each churn rate is an independent task (:func:`run_resilience_point`)
    fanned over ``jobs`` workers; results merge in churn-rate order, so
    the report is identical at any worker count.
    """
    from repro.parallel.task import TaskSpec

    report = ExperimentReport(
        experiment_id="T12",
        title="Resilience under deterministic station churn",
        columns=(
            "mac",
            "churn/slot",
            "crashes",
            "pre-fault ratio",
            "churn ratio",
            "recovered ratio",
            "recovery (slots)",
            "reroute (slots)",
            "fault losses",
            "sir losses",
            "fault drops",
            "arq retries",
            "arq giveups",
        ),
    )
    specs = [
        TaskSpec(
            task_id=f"T12[churn={rate!r}]",
            kind="function",
            target="repro.experiments.t12_resilience:run_resilience_point",
            params={
                "churn_rate": rate,
                "station_count": station_count,
                "warmup_slots": warmup_slots,
                "churn_slots": churn_slots,
                "recovery_slots": recovery_slots,
                "window_slots": window_slots,
                "mean_downtime_slots": mean_downtime_slots,
                "load_packets_per_slot": load_packets_per_slot,
                "seed": seed,
                "macs": list(macs) if macs is not None else None,
            },
        )
        for rate in churn_rates
    ]
    shepard_recoveries: List[float] = []
    for outcome in run_many(specs, jobs=jobs):
        if not outcome.ok or outcome.payload is None:
            raise RuntimeError(
                f"churn point {outcome.task_id} failed: {outcome.error}"
            )
        for row in outcome.payload["rows"]:
            report.add_row(*row)
        recovered = outcome.payload["recoveries"].get("shepard")
        if recovered is not None:
            shepard_recoveries.append(recovered)
    if shepard_recoveries:
        report.claim(
            "scheme post-churn delivery vs pre-fault steady state",
            f">= {RECOVERY_FRACTION}",
            min(shepard_recoveries),
        )
    report.notes.append(
        "Every MAC faces the identical seed-tree churn schedule; losses "
        "while stations are down are physics, so the discriminating "
        "columns are the recovered ratio and recovery latency."
    )
    return report
