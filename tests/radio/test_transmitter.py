"""Tests for transmitter state and duty-cycle accounting."""

import pytest

from repro.radio.transmitter import Transmitter, TransmitterBusyError


class TestTransmitterLifecycle:
    def test_begin_end_counts_transmission(self):
        tx = Transmitter()
        tx.begin(0.0, 0.5)
        tx.end(2.0)
        assert tx.transmissions == 1

    def test_busy_flag(self):
        tx = Transmitter()
        assert not tx.is_transmitting
        tx.begin(0.0, 0.5)
        assert tx.is_transmitting
        tx.end(1.0)
        assert not tx.is_transmitting

    def test_double_begin_raises(self):
        tx = Transmitter()
        tx.begin(0.0, 0.5)
        with pytest.raises(TransmitterBusyError):
            tx.begin(0.5, 0.5)

    def test_end_without_begin_raises(self):
        with pytest.raises(TransmitterBusyError):
            Transmitter().end(1.0)

    def test_end_before_begin_raises(self):
        tx = Transmitter()
        tx.begin(5.0, 0.5)
        with pytest.raises(ValueError):
            tx.end(4.0)

    def test_current_power_reflects_burst(self):
        tx = Transmitter()
        tx.begin(0.0, 0.7)
        assert tx.current_power_w == 0.7
        tx.end(1.0)
        assert tx.current_power_w == 0.0


class TestAccounting:
    def test_time_transmitting_accumulates(self):
        tx = Transmitter()
        tx.begin(0.0, 1.0)
        tx.end(2.0)
        tx.begin(10.0, 1.0)
        tx.end(13.0)
        assert tx.time_transmitting == pytest.approx(5.0)

    def test_energy_is_power_times_time(self):
        tx = Transmitter()
        tx.begin(0.0, 0.25)
        tx.end(4.0)
        assert tx.energy_radiated_j == pytest.approx(1.0)

    def test_duty_cycle(self):
        tx = Transmitter()
        tx.begin(0.0, 1.0)
        tx.end(3.0)
        assert tx.duty_cycle(10.0) == pytest.approx(0.3)

    def test_duty_cycle_rejects_zero_elapsed(self):
        with pytest.raises(ValueError):
            Transmitter().duty_cycle(0.0)


class TestPowerLimits:
    def test_clamp_power(self):
        tx = Transmitter(max_power_w=2.0)
        assert tx.clamp_power(5.0) == 2.0
        assert tx.clamp_power(1.0) == 1.0

    def test_clamp_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Transmitter().clamp_power(0.0)

    def test_begin_rejects_over_limit(self):
        tx = Transmitter(max_power_w=1.0)
        with pytest.raises(ValueError):
            tx.begin(0.0, 1.5)

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            Transmitter(max_power_w=0.0)
