"""Bench F4: the 20-station pseudo-random schedule raster (Figure 4)."""

import pytest

from repro.experiments import get_experiment


def test_bench_fig4_schedule_raster(benchmark, show_report):
    report = benchmark(lambda: get_experiment("F4")())
    show_report(report)
    assert len(report.rows) == 20
    paper, measured = report.claims["receive duty cycle p"]
    assert measured == pytest.approx(paper, abs=0.05)
