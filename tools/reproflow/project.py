"""Whole-program model: every module of a package, parsed once.

:func:`load_project` walks a package root (``src/repro`` for the real
tree, a synthetic fixture package in tests), parses each module, and
builds:

* a per-module **symbol table** — every top-level binding with its kind
  (function / class / constant / import) and, for imports, the module
  and name it refers to;
* the **import graph** between project modules;
* an index of every function and method body, keyed by qualified name
  (``package.module:func`` / ``package.module:Class.method``), which
  the call-graph builder and the passes iterate.

Resolution (:meth:`Project.resolve`) follows import chains across
modules, so a pass asking "what does ``TxStart`` mean at this call
site" lands on the defining class even when the name was re-exported
through two ``__init__`` modules.  Everything is best-effort static
analysis: dynamic tricks resolve to ``None`` and passes must treat an
unresolved name as unknown, never as proof.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "Symbol",
    "dotted_name",
    "iter_calls",
    "load_project",
]

#: Symbol kinds in a module's top-level namespace.
_KINDS = ("function", "class", "constant", "import")


@dataclass(frozen=True)
class Symbol:
    """One top-level binding in a module.

    Attributes:
        name: the bound name.
        kind: ``function`` / ``class`` / ``constant`` / ``import``.
        module: the module the binding lives in.
        node: defining AST node (def/class/assign/import alias site).
        target: for imports, the ``(module, name)`` referred to —
            ``("repro.obs.events", "TxStart")`` for
            ``from repro.obs.events import TxStart``, and
            ``("numpy.random", "")`` for ``import numpy.random``.
    """

    name: str
    kind: str
    module: str
    node: ast.AST
    target: Optional[Tuple[str, str]] = None


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method body, addressable project-wide.

    Attributes:
        qualname: ``module:func`` or ``module:Class.method``.
        module: containing module name.
        node: the ``FunctionDef`` AST node.
        cls: containing class name, empty for module-level functions.
    """

    qualname: str
    module: str
    node: ast.AST
    cls: str = ""

    @property
    def name(self) -> str:
        """The bare function name."""
        return self.qualname.rsplit(".", 1)[-1].rsplit(":", 1)[-1]


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str
    path: Path
    tree: ast.Module
    source_lines: List[str]
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    #: project modules imported (directly) by this module.
    imports: List[str] = field(default_factory=list)
    #: literal __all__ contents, when declared.
    dunder_all: Optional[List[str]] = None

    def rel_path(self, root: Path) -> str:
        """Path relative to the project root, posix-style."""
        try:
            return self.path.relative_to(root).as_posix()
        except ValueError:
            return self.path.as_posix()


class Project:
    """The parsed package: modules, symbols, functions, import graph."""

    def __init__(self, package: str, root: Path) -> None:
        self.package = package
        #: filesystem directory that *contains* the package directory.
        self.root = root
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}

    # -- construction ------------------------------------------------

    def add_module(self, info: ModuleInfo) -> None:
        """Register one parsed module and index its functions."""
        self.modules[info.name] = info
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{info.name}:{node.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=info.name, node=node
                )
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{info.name}:{node.name}.{item.name}"
                        self.functions[qualname] = FunctionInfo(
                            qualname=qualname,
                            module=info.name,
                            node=item,
                            cls=node.name,
                        )

    # -- queries -----------------------------------------------------

    def module_of_path(self, path: str) -> Optional[ModuleInfo]:
        """The module whose file is ``path`` (project-root relative)."""
        for info in self.modules.values():
            if info.rel_path(self.root) == path:
                return info
        return None

    def resolve(
        self, module: str, name: str, _depth: int = 0
    ) -> Optional[Symbol]:
        """Resolve ``name`` as seen from ``module``, following imports.

        Returns the defining :class:`Symbol` (kind function/class/
        constant) inside the project, the import symbol itself when the
        chain leaves the project (e.g. numpy), or ``None``.
        """
        if _depth > 16 or module not in self.modules:
            return None
        symbol = self.modules[module].symbols.get(name)
        if symbol is None or symbol.kind != "import" or symbol.target is None:
            return symbol
        target_module, target_name = symbol.target
        if not target_name:
            # ``import x.y`` style: the binding is the module itself.
            return symbol
        if target_module in self.modules:
            resolved = self.resolve(target_module, target_name, _depth + 1)
            return resolved if resolved is not None else symbol
        # Package __init__ re-export: ``from repro.obs import TxStart``
        # where repro.obs/__init__ itself imports it from .events.
        init_name = target_module
        if init_name in self.modules:
            return self.resolve(init_name, target_name, _depth + 1)
        return symbol

    def resolve_dotted(self, module: str, dotted: str) -> Optional[Symbol]:
        """Resolve a dotted expression like ``events.TxStart`` or
        ``repro.parallel.seedtree.derive_seed`` from ``module``."""
        parts = dotted.split(".")
        if len(parts) == 1:
            return self.resolve(module, dotted)
        head = self.resolve(module, parts[0])
        if head is None or head.kind != "import" or head.target is None:
            return None
        target_module = head.target[0]
        # ``import repro.parallel.seedtree as st`` → walk the remainder
        # of the dotted path down the module tree.
        for part in parts[1:-1]:
            candidate = f"{target_module}.{part}"
            if candidate in self.modules:
                target_module = candidate
            elif target_module in self.modules:
                inner = self.resolve(target_module, part)
                if (
                    inner is not None
                    and inner.kind == "import"
                    and inner.target is not None
                    and not inner.target[1]
                ):
                    target_module = inner.target[0]
                else:
                    return None
            else:
                # External module (numpy.random etc.): synthesize an
                # import symbol naming the external target.
                return Symbol(
                    name=parts[-1],
                    kind="import",
                    module=module,
                    node=head.node,
                    target=(f"{target_module}." + ".".join(parts[1:-1])
                            if len(parts) > 2 else target_module,
                            parts[-1]),
                )
        if target_module in self.modules:
            return self.resolve(target_module, parts[-1])
        return Symbol(
            name=parts[-1],
            kind="import",
            module=module,
            node=head.node,
            target=(target_module, parts[-1]),
        )

    def external_name(self, module: str, dotted: str) -> Optional[str]:
        """The fully-qualified external name a dotted expression refers
        to (``np.random.default_rng`` → ``numpy.random.default_rng``),
        or ``None`` when it resolves inside the project or not at all."""
        symbol = self.resolve_dotted(module, dotted)
        if symbol is None:
            parts = dotted.split(".")
            head = self.modules.get(module, None)
            if head is not None and parts[0] not in head.symbols:
                return None
            return None
        if symbol.kind == "import" and symbol.target is not None:
            target_module, target_name = symbol.target
            if target_module.split(".")[0] == self.package:
                return None
            return f"{target_module}.{target_name}" if target_name else target_module
        return None


def _module_name(package: str, package_dir: Path, path: Path) -> str:
    rel = path.relative_to(package_dir)
    parts = [package] + list(rel.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts)


def _literal_strings(node: ast.AST) -> Optional[List[str]]:
    if isinstance(node, (ast.List, ast.Tuple)) and all(
        isinstance(e, ast.Constant) and isinstance(e.value, str)
        for e in node.elts
    ):
        return [e.value for e in node.elts]
    return None


def _collect_symbols(info: ModuleInfo, package: str) -> None:
    """Fill ``info.symbols`` / ``info.imports`` / ``info.dunder_all``.

    Module-level statements define the namespace; imports that live
    *inside* function bodies (the lazy-import idiom used to break
    import cycles) are folded in afterwards for any name not already
    bound at module level, so call resolution can follow them.
    """
    module = info.name
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.symbols[node.name] = Symbol(node.name, "function", module, node)
        elif isinstance(node, ast.ClassDef):
            info.symbols[node.name] = Symbol(node.name, "class", module, node)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            _add_import(info, node, package, overwrite=True)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__all__":
                    value = node.value
                    if value is not None:
                        info.dunder_all = _literal_strings(value)
                else:
                    info.symbols[target.id] = Symbol(
                        target.id, "constant", module, node
                    )
    # Second sweep: lazy imports inside function bodies.
    for node in ast.walk(info.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)) and node not in info.tree.body:
            _add_import(info, node, package, overwrite=False)


def _add_import(
    info: ModuleInfo, node: ast.AST, package: str, overwrite: bool
) -> None:
    module = info.name
    if isinstance(node, ast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            if overwrite or bound not in info.symbols:
                info.symbols[bound] = Symbol(
                    bound, "import", module, node, target=(target, "")
                )
            if alias.name.split(".")[0] == package:
                info.imports.append(alias.name)
    elif isinstance(node, ast.ImportFrom):
        source = node.module or ""
        if node.level:
            # Relative import: resolve against this module's package.
            base = module.split(".")
            if not info.path.name == "__init__.py":
                base = base[:-1]
            base = base[: len(base) - (node.level - 1)]
            source = ".".join(base + ([source] if source else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            if overwrite or bound not in info.symbols:
                info.symbols[bound] = Symbol(
                    bound, "import", module, node, target=(source, alias.name)
                )
        if source.split(".")[0] == package:
            info.imports.append(source)


def load_project(package_dir: Path, package: Optional[str] = None) -> Project:
    """Parse every ``.py`` file under ``package_dir`` into a Project.

    Args:
        package_dir: the package directory itself (``src/repro``).
        package: dotted package name; defaults to the directory name.
    """
    package_dir = Path(package_dir)
    package = package or package_dir.name
    project = Project(package=package, root=package_dir.parent)
    for path in sorted(package_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        info = ModuleInfo(
            name=_module_name(package, package_dir, path),
            path=path,
            tree=tree,
            source_lines=source.splitlines(),
        )
        _collect_symbols(info, package)
        project.add_module(info)
    return project


def iter_calls(node: ast.AST) -> Iterable[ast.Call]:
    """Every Call node in a subtree (helper shared by the passes)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def dotted_name(node: ast.AST) -> Optional[str]:
    """Reconstruct ``a.b.c`` from nested Attribute/Name nodes."""
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
        return ".".join(reversed(chain))
    return None
