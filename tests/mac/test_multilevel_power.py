"""Tests for the multi-level random transmit power MAC."""

import numpy as np
import pytest

from repro.experiments.simsetup import add_uniform_poisson, standard_network
from repro.mac.multilevel_power import MultilevelPowerMac
from repro.net.network import NetworkConfig
from repro.obs import Instrumentation, MemorySink, MetricTimelines
from repro.sim.sanitizer import sanitized


def mlp_run(seed=29, count=12, load=0.2, duration_slots=60.0):
    timelines = MetricTimelines(station_count=count)
    sink = MemorySink()
    with sanitized(True):
        network = standard_network(
            count,
            seed,
            NetworkConfig(seed=seed),
            mac="multilevel_power",
            trace=False,
            instrumentation=Instrumentation((sink, timelines)),
        )
        add_uniform_poisson(network, load, seed + 1)
        network.run(duration_slots * network.budget.slot_time)
        digest = network.env.replay_digest()
    return network, timelines, sink, digest


class TestValidation:
    def test_needs_a_real_ladder(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            MultilevelPowerMac(rng, levels=0)
        with pytest.raises(ValueError):
            MultilevelPowerMac(rng, level_spread=1.0)

    def test_name_not_shadowed_by_slotted_aloha(self):
        mac = MultilevelPowerMac(np.random.default_rng(1))
        assert mac.name == "multilevel_power"
        assert mac.slotted


class TestBehaviour:
    def test_every_attempt_draws_a_level(self):
        _network, timelines, sink, _digest = mlp_run()
        draws = [r for r in sink.events() if r.KIND == "tx_power_level"]
        assert draws
        assert timelines.power_level_draws == len(draws)
        # Drawn levels live on the configured ladder with the expected
        # downward-geometric scales.
        for record in draws:
            assert 0 <= record.level < 3
            assert record.scale == pytest.approx(4.0 ** (-record.level))
        # All rungs get exercised over a run of this length.
        assert {record.level for record in draws} == {0, 1, 2}

    def test_scaled_bursts_stay_under_power_budget(self):
        network, _timelines, _sink, _digest = mlp_run(duration_slots=30.0)
        max_power = network.stations[0].transmitter.max_power_w
        for station in network.stations:
            assert station.transmitter.max_power_w == max_power

    def test_still_delivers(self):
        _network, timelines, _sink, _digest = mlp_run()
        assert timelines.end_to_end_deliveries > 0


class TestDeterminism:
    def test_replay_digest_bit_identical(self):
        _n1, t1, _s1, d1 = mlp_run()
        _n2, t2, _s2, d2 = mlp_run()
        assert d1 == d2
        assert t1.power_level_draws == t2.power_level_draws

    def test_t7_rows_identical_jobs_1_vs_2(self):
        from repro.experiments.t7_baselines import run

        kwargs = dict(
            loads_packets_per_slot=(0.05, 0.1),
            station_count=12,
            duration_slots=80.0,
            macs=("multilevel_power",),
        )
        assert run(jobs=1, **kwargs).rows == run(jobs=2, **kwargs).rows
