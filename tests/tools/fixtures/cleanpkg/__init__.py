"""A miniature repro-shaped package with nothing wrong with it."""

__all__ = []
