"""Command-line interface: run the paper's experiments by id.

Usage::

    python -m repro list
    python -m repro run T4
    python -m repro run T4 --set station_counts='(100,)' --set duration_slots=200
    python -m repro run-all --jobs 4 --quick --output suite.json
    python -m repro sweep --experiment T7 --jobs 4 --replications 5
    python -m repro sweep --experiment T7 --cache ~/.repro-cache
    python -m repro cache stats ~/.repro-cache --json
    python -m repro cache gc ~/.repro-cache --max-bytes 100000000
    python -m repro cache verify ~/.repro-cache --recompute 3
    python -m repro serve --cache ~/.repro-cache --socket /tmp/repro.sock
    python -m repro submit --socket /tmp/repro.sock --experiment T7
    python -m repro bench --rounds 5
    python -m repro bench --suite --jobs 1,2,4 --output BENCH_suite.json
    python -m repro design --stations 1e9 --duty 0.5
    python -m repro metro --stations 1e6 --bandwidth 1e9
    python -m repro trace --experiment T7 --jsonl t7.jsonl --summary
    python -m repro trace --read t7.jsonl --kind rx_fail --limit 20
    python -m repro report --timeline duty --stations 100 --duration-slots 300

``--set`` values are parsed as Python literals (falling back to plain
strings), so tuples, floats, and booleans all work.  ``run-all`` and
``sweep`` fan tasks over a multiprocess pool; results are bit-identical
at any ``--jobs`` because per-task seeds come from the seed tree, never
from scheduling order.  ``trace`` streams any experiment's typed event
stream to JSONL/binary sinks (or decodes one back); ``report`` runs the
T2-style loaded network and renders per-station metric timelines.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.metro import MetroProjection
from repro.core.design import DesignPoint
from repro.experiments import all_experiments, get_experiment
from repro.sim.sanitizer import sanitized

__all__ = ["main", "build_parser", "parse_overrides", "run_digest"]


def parse_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    """Parse ``key=value`` strings; values are Python literals when
    possible, raw strings otherwise."""
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise ValueError(f"override {pair!r} is not of the form key=value")
        try:
            overrides[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            overrides[key] = raw
    return overrides


def _experiment_summary(run_callable) -> str:
    module = sys.modules.get(run_callable.__module__)
    doc = (module.__doc__ or "").strip() if module else ""
    return doc.splitlines()[0] if doc else "(no description)"


def _cmd_list(_args: argparse.Namespace) -> int:
    experiments = all_experiments()

    def sort_key(eid: str) -> "tuple[str, int]":
        return (eid[0], int(eid[1:]))

    for experiment_id in sorted(experiments, key=sort_key):
        summary = _experiment_summary(experiments[experiment_id])
        print(f"{experiment_id:>4s}  {summary}")
    return 0


def _cmd_macs(_args: argparse.Namespace) -> int:
    from repro.mac.registry import get_mac, mac_names

    for name in mac_names():
        descriptor = get_mac(name)
        flags = []
        if descriptor.builder_default:
            flags.append("default")
        if descriptor.slotted:
            flags.append("slotted")
        if descriptor.needs_bank:
            flags.append("needs-bank")
        if descriptor.receiver_model is not None:
            flags.append(f"rx={descriptor.receiver_model}")
        tag = f" [{', '.join(flags)}]" if flags else ""
        print(f"{name:>18s}{tag}  {descriptor.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        run = get_experiment(args.experiment_id)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    try:
        overrides = parse_overrides(args.set or [])
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    report = run(**overrides)
    print(report.format())
    return 0


def _find_reproflow_root(explicit: Optional[str]) -> Optional[Path]:
    """The repository checkout holding ``tools/reproflow``.

    The deep linter is a repo tool, not part of the installed package,
    so it is located by walking up from the cwd (and, as a fallback,
    from this file's own checkout) rather than imported directly.
    """
    candidates: List[Path] = []
    if explicit:
        candidates.append(Path(explicit))
    else:
        here = Path.cwd().resolve()
        candidates.extend([here, *here.parents])
        candidates.append(Path(__file__).resolve().parent.parent.parent)
    for candidate in candidates:
        if (candidate / "tools" / "reproflow").is_dir() and (
            candidate / "src" / "repro"
        ).is_dir():
            return candidate.resolve()
    return None


def _cmd_lint(args: argparse.Namespace) -> int:
    if not args.deep:
        print(
            "repro lint: the shallow AST rules run via "
            "'python -m tools.reprolint'; this command drives the "
            "whole-program analyzer — pass --deep",
            file=sys.stderr,
        )
        return 2
    root = _find_reproflow_root(args.root)
    if root is None:
        print(
            "repro lint --deep needs the repository checkout "
            "(tools/reproflow next to src/repro); run from inside the "
            "repo or pass --root DIR",
            file=sys.stderr,
        )
        return 2
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from tools.reproflow.runner import main as reproflow_main

    argv = ["--root", str(root)]
    if args.json:
        argv.append("--json")
    if args.write_locks:
        argv.append("--write-locks")
    if args.select:
        argv.extend(["--select", args.select])
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    return reproflow_main(argv)


def _cmd_design(args: argparse.Namespace) -> int:
    point = DesignPoint(
        station_count=args.stations,
        duty_cycle=args.duty,
        detection_margin_db=args.margin,
        reach_doublings=args.reach_doublings,
    )
    for key, value in point.summary().items():
        print(f"{key:>24s}: {value:.4g}" if isinstance(value, float) else
              f"{key:>24s}: {value}")
    return 0


def _cmd_metro(args: argparse.Namespace) -> int:
    projection = MetroProjection(
        station_count=args.stations,
        bandwidth_hz=args.bandwidth,
        duty_cycle=args.duty,
        beta=args.beta,
        reach_doublings=args.reach_doublings,
    )
    for key, value in projection.summary().items():
        print(f"{key:>24s}: {value:.4g}" if isinstance(value, float) else
              f"{key:>24s}: {value}")
    return 0


def run_digest(
    stations: int,
    load: float,
    duration_slots: float,
    seed: int,
) -> str:
    """Run the T4-style loaded-network scenario once, sanitized, and
    return the engine's replay digest."""
    from repro.experiments.simsetup import run_loaded_network

    with sanitized(True):
        network, _ = run_loaded_network(
            stations,
            load,
            duration_slots,
            placement_seed=seed + stations,
            traffic_seed=seed,
        )
    return network.env.replay_digest()


def _cmd_verify_determinism(args: argparse.Namespace) -> int:
    digests = []
    for attempt in (1, 2):
        digest = run_digest(args.stations, args.load, args.duration_slots, args.seed)
        digests.append(digest)
        print(f"run {attempt}: replay digest {digest}")
    if digests[0] == digests[1]:
        print("determinism verified: digests identical")
        return 0
    print(
        "DETERMINISM VIOLATION: same-seed runs produced different replay "
        "digests",
        file=sys.stderr,
    )
    return 1


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.suite:
        return _cmd_bench_suite(args)
    from repro.analysis.perf import (
        format_samples,
        run_perf_scenario,
        write_report,
    )

    if args.rounds < 1:
        print("--rounds must be >= 1", file=sys.stderr)
        return 2
    samples = [
        run_perf_scenario(
            stations=args.stations,
            load=args.load,
            duration_slots=args.duration,
            seed=args.seed,
        )
        for _ in range(args.rounds)
    ]
    best = min(samples, key=lambda sample: sample.wall_s)
    print(format_samples([best]))
    if args.rounds > 1:
        print(f"(best of {args.rounds} rounds by wall-clock)")
    if args.output:
        write_report(
            args.output,
            [best],
            notes={
                "rounds": args.rounds,
                "selection": "minimum wall-clock run",
            },
        )
        print(f"wrote {args.output}")
    return 0


def _parse_jobs_list(raw: str) -> List[int]:
    jobs_counts = [int(part) for part in raw.split(",") if part.strip()]
    if not jobs_counts or any(jobs < 1 for jobs in jobs_counts):
        raise ValueError(f"bad worker-count list {raw!r}; want e.g. 1,2,4")
    return jobs_counts


def _cmd_bench_suite(args: argparse.Namespace) -> int:
    from repro.parallel.bench import bench_suite, write_suite_report

    try:
        jobs_counts = _parse_jobs_list(args.jobs)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    payload = bench_suite(
        jobs_counts=jobs_counts,
        quick=not args.full,
        rounds=args.rounds,
    )
    for entry in payload["measurements"]:
        print(
            f"jobs={entry['jobs']}: {entry['wall_s']:.3f}s "
            f"(speedup {entry['speedup_vs_jobs_%d' % jobs_counts[0]]}x, "
            f"digest {entry['suite_digest']})"
        )
    if args.output:
        write_suite_report(args.output, payload)
        print(f"wrote {args.output}")
    return 0


def _open_cache(path: Optional[str]):
    if path is None:
        return None
    from repro.parallel.cache import ResultCache

    return ResultCache(path)


def _print_cache_traffic(cache) -> None:
    if cache is None:
        return
    session = cache.stats()["session"]
    total = session["hits"] + session["misses"]
    rate = (100.0 * session["hits"] / total) if total else 0.0
    print(
        f"cache: {session['hits']}/{total} hits ({rate:.1f}%), "
        f"{session['puts']} written, {session['corrupt']} quarantined "
        f"[{cache.root}]",
        file=sys.stderr,
    )


def _cmd_run_all(args: argparse.Namespace) -> int:
    import json

    from repro.parallel.suite import run_suite

    def progress(done: int, total: int, result) -> None:
        status = "ok" if result.ok else "FAILED"
        print(f"[{done}/{total}] {result.task_id}: {status}", file=sys.stderr)

    cache = _open_cache(args.cache)
    suite = run_suite(
        jobs=args.jobs,
        quick=args.quick,
        timeout_s=args.timeout_s,
        retries=args.retries,
        progress=progress if not args.no_progress else None,
        checkpoint=args.checkpoint,
        watchdog_s=args.watchdog_s,
        cache=cache,
    )
    print(suite.format())
    _print_cache_traffic(cache)
    if args.output:
        # sort_keys: journal replay and cache hits rebuild payloads from
        # canonical (sorted) JSON, so sorting here keeps the artifact
        # byte-identical however each row was obtained.
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(suite.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 1 if suite.errors else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.parallel.sweep import (
        SweepPlan,
        default_sweep_values,
        run_sweep,
        sweep_parameter,
    )

    try:
        parameter = sweep_parameter(args.experiment, args.parameter)
        if args.values:
            values = tuple(
                ast.literal_eval(part) for part in args.values.split(",") if part
            )
        else:
            values = default_sweep_values(args.experiment, parameter)
        base_params = parse_overrides(args.set or [])
        plan = SweepPlan(
            experiment_id=args.experiment,
            parameter=parameter,
            values=values,
            replications=args.replications,
            root_seed=args.root_seed,
            base_params=base_params,
            timeout_s=args.timeout_s,
            retries=args.retries,
        )
    except (KeyError, ValueError, SyntaxError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(message, file=sys.stderr)
        return 2
    cache = _open_cache(args.cache)
    try:
        outcome = run_sweep(
            plan,
            jobs=args.jobs,
            checkpoint=args.checkpoint,
            watchdog_s=args.watchdog_s,
            cache=cache,
        )
    except ValueError as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    print(outcome.format())
    _print_cache_traffic(cache)
    if args.output:
        # sort_keys: see _cmd_run_all — byte-identical artifacts whether
        # rows were computed, journal-replayed, or cache hits.
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(outcome.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 1 if outcome.errors else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from repro.parallel.cache import CacheDivergenceError, ResultCache

    try:
        cache = ResultCache(args.dir)
    except ValueError as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2

    if args.cache_command == "stats":
        report = cache.stats()
    elif args.cache_command == "gc":
        if args.max_bytes is None and args.max_age_s is None:
            print(
                "cache gc needs --max-bytes and/or --max-age-s",
                file=sys.stderr,
            )
            return 2
        report = cache.gc(max_bytes=args.max_bytes, max_age_s=args.max_age_s)
    else:  # verify
        try:
            report = cache.verify(recompute=args.recompute)
        except CacheDivergenceError as exc:
            print(f"DIVERGENCE: {exc}", file=sys.stderr)
            return 1
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for key, value in report.items():
            if key == "corrupt_keys" and not value:
                continue
            print(f"{key:>20s}: {value}")
    if args.cache_command == "verify" and report["corrupt_quarantined"]:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.parallel.service import serve

    def ready(server) -> None:
        print(
            f"repro sweep service: cache {args.cache}, "
            f"socket {server.socket_path}, jobs {args.jobs} "
            "(ctrl-C to stop)",
            file=sys.stderr,
        )

    try:
        serve(
            args.cache,
            args.socket,
            jobs=args.jobs,
            watchdog_s=args.watchdog_s,
            ready=ready,
        )
    except ValueError as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.parallel.service import submit_request

    request: Dict[str, Any] = {"op": args.op}
    if args.op == "sweep":
        if not args.experiment:
            print("submit --op sweep needs --experiment ID", file=sys.stderr)
            return 2
        try:
            values = (
                [ast.literal_eval(part) for part in args.values.split(",") if part]
                if args.values
                else None
            )
            base_params = parse_overrides(args.set or [])
        except (ValueError, SyntaxError) as exc:
            print(exc, file=sys.stderr)
            return 2
        request.update(
            {
                "experiment": args.experiment,
                "parameter": args.parameter,
                "values": values,
                "replications": args.replications,
                "root_seed": args.root_seed,
                "base_params": base_params,
                "trace": args.trace,
                "records": args.json,
            }
        )

    failed = False

    def on_event(event: Dict[str, Any]) -> None:
        nonlocal failed
        kind = event.get("event")
        if args.json:
            print(json.dumps(event, sort_keys=True))
            failed = failed or kind == "error" or bool(event.get("errors"))
            return
        if kind == "plan":
            print(f"submitted: {event['total']} tasks", file=sys.stderr)
        elif kind == "task":
            status = "ok" if event["ok"] else "FAILED"
            print(
                f"[{event['done']}/{event['total']}] {event['task_id']}: "
                f"{status} ({event['source']})",
                file=sys.stderr,
            )
        elif kind == "done":
            for key in ("hits", "joined", "executed", "errors"):
                if key in event and event[key]:
                    print(f"{key}: {event[key]}", file=sys.stderr)
            if "results_digest" in event:
                print(f"results digest: {event['results_digest']}")
            if "stats" in event:
                print(json.dumps(event["stats"], indent=2, sort_keys=True))
            failed = failed or bool(event.get("errors"))
        elif kind == "error":
            print(f"error: {event.get('message')}", file=sys.stderr)
            failed = True

    try:
        events = submit_request(args.socket, request, on_event=on_event)
    except (ConnectionRefusedError, FileNotFoundError):
        print(
            f"no sweep service listening on {args.socket} "
            "(start one with: repro serve --cache DIR --socket PATH)",
            file=sys.stderr,
        )
        return 2
    if not events:
        print("the service closed the stream without answering",
              file=sys.stderr)
        return 1
    return 1 if failed else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        BinarySink,
        Instrumentation,
        JsonlSink,
        MetricTimelines,
        read_trace,
        use_instrumentation,
    )

    if args.read:
        wanted = set(args.kind or [])
        counts: Dict[str, int] = {}
        shown = 0
        for event in read_trace(args.read):
            counts[event.KIND] = counts.get(event.KIND, 0) + 1
            if wanted and event.KIND not in wanted:
                continue
            if args.limit is None or shown < args.limit:
                record = {"kind": event.KIND, "time": event.time}
                record.update(event.to_record().data)
                print(json.dumps(record, sort_keys=True))
                shown += 1
        if args.summary:
            total = sum(counts.values())
            print(f"{total} events across {len(counts)} kinds", file=sys.stderr)
            for kind in sorted(counts):
                print(f"  {kind:>18s}  {counts[kind]}", file=sys.stderr)
        return 0

    if not args.experiment:
        print("trace needs --experiment ID (or --read PATH)", file=sys.stderr)
        return 2
    try:
        run = get_experiment(args.experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    try:
        overrides = parse_overrides(args.set or [])
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    timelines = MetricTimelines()
    sinks = [timelines]
    if args.jsonl:
        sinks.append(JsonlSink(args.jsonl, rotate_bytes=args.rotate_bytes))
    if args.binary:
        sinks.append(BinarySink(args.binary))
    if len(sinks) == 1:
        print("trace needs a sink: --jsonl PATH and/or --binary PATH",
              file=sys.stderr)
        return 2
    instrumentation = Instrumentation(tuple(sinks))
    with use_instrumentation(instrumentation):
        report = run(**overrides)
    instrumentation.close()
    print(report.format())
    for path in ([args.jsonl] if args.jsonl else []) + (
        [args.binary] if args.binary else []
    ):
        print(f"wrote {path}")
    if args.summary:
        kind_counts = timelines.kinds()
        total = sum(kind_counts.values())
        print(f"\n{total} events across {len(kind_counts)} kinds")
        for kind in sorted(kind_counts):
            print(f"  {kind:>18s}  {kind_counts[kind]}")
    return 0


_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def _sparkline(values: Sequence[float], peak: float) -> str:
    import math

    cells = []
    for value in values:
        if value != value:  # NaN: no observation in this window
            cells.append("·")
            continue
        if peak <= 0.0:
            cells.append(_SPARK_LEVELS[0])
            continue
        level = min(1.0, max(0.0, value / peak))
        cells.append(_SPARK_LEVELS[math.ceil(level * (len(_SPARK_LEVELS) - 1))])
    return "".join(cells)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.simsetup import add_uniform_poisson, standard_network
    from repro.net.network import NetworkConfig
    from repro.obs import Instrumentation, MetricTimelines

    timelines = MetricTimelines(station_count=args.stations)
    network = standard_network(
        args.stations,
        args.seed,
        NetworkConfig(seed=args.seed),
        trace=False,
        instrumentation=Instrumentation((timelines,)),
    )
    slot = network.budget.slot_time
    # The window is in slots on the CLI but seconds internally; the slot
    # time is only known once the network's link budget is calibrated,
    # so assign it after build and before any event is emitted.
    timelines.window = args.window_slots * slot
    add_uniform_poisson(network, args.load, args.seed + 1)
    result = network.run(args.duration_slots * slot)

    metric = args.timeline
    series_of = {
        "duty": timelines.duty_series,
        "queue": timelines.queue_depth_series,
        "sir": timelines.sir_series,
        "loss": lambda station: timelines.loss_series(station),
    }[metric]
    rows = [series_of(station) for station in range(args.stations)]
    peak = max(
        (value for row in rows for _t, value in row if value == value),
        default=0.0,
    )

    print(
        f"{metric} timeline: {args.stations} stations, "
        f"{args.duration_slots:g} slots, window {args.window_slots:g} slots "
        f"({timelines.window_count} windows), seed {args.seed}"
    )
    print(
        f"load {args.load:g} pkt/slot/station | "
        f"hop deliveries {timelines.hop_deliveries} | "
        f"losses {timelines.losses_total} | peak {peak:.4g}"
    )
    for station in range(args.stations):
        values = [value for _t, value in rows[station]]
        line = _sparkline(values, peak)
        tail = max((v for v in values if v == v), default=0.0)
        print(f"  s{station:03d} |{line}| max {tail:.3g}")
    if metric == "duty":
        summary = timelines.duty_summary(result.duration)
        print(
            f"duty cycle across stations: mean {summary.mean:.4f}, "
            f"std {summary.stddev:.4f}, max {summary.maximum:.4f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Shepard (SIGCOMM 1996): run any of the "
            "paper's figures/tables and the design calculators."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_cmd = commands.add_parser("list", help="list available experiments")
    list_cmd.set_defaults(handler=_cmd_list)

    macs_cmd = commands.add_parser(
        "macs",
        help="list the registered channel access schemes (MAC registry)",
    )
    macs_cmd.set_defaults(handler=_cmd_macs)

    run_cmd = commands.add_parser("run", help="run one experiment by id")
    run_cmd.add_argument("experiment_id", help="experiment id, e.g. T4 or F1")
    run_cmd.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="override an experiment parameter (repeatable)",
    )
    run_cmd.set_defaults(handler=_cmd_run)

    run_all_cmd = commands.add_parser(
        "run-all",
        help=(
            "run every registered experiment over a worker pool "
            "(bit-identical results at any --jobs)"
        ),
    )
    run_all_cmd.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1 = inline serial)",
    )
    run_all_cmd.add_argument(
        "--quick", action="store_true",
        help="seconds-scale parameterisations (the CI smoke set)",
    )
    run_all_cmd.add_argument(
        "--timeout-s", type=float, default=None, metavar="SECONDS",
        help="per-experiment timeout enforced by the pool",
    )
    run_all_cmd.add_argument(
        "--retries", type=int, default=1,
        help="crash/timeout retries per experiment (default 1)",
    )
    run_all_cmd.add_argument(
        "--output", metavar="PATH",
        help="write every report plus the suite digest as JSON",
    )
    run_all_cmd.add_argument(
        "--checkpoint", metavar="PATH",
        help=(
            "journal completed experiments to PATH; a killed run "
            "resumes from it with bit-identical final digests"
        ),
    )
    run_all_cmd.add_argument(
        "--watchdog-s", type=float, default=None, metavar="SECONDS",
        help=(
            "fallback wall-clock limit for experiments without "
            "--timeout-s (converts a hung worker into a timeout)"
        ),
    )
    run_all_cmd.add_argument(
        "--no-progress", action="store_true",
        help="suppress the per-experiment progress lines on stderr",
    )
    run_all_cmd.add_argument(
        "--cache", metavar="DIR",
        help=(
            "content-addressed result cache: experiments already stored "
            "return instantly, only misses run"
        ),
    )
    run_all_cmd.set_defaults(handler=_cmd_run_all)

    sweep_cmd = commands.add_parser(
        "sweep",
        help=(
            "sweep one experiment's natural parameter over a worker "
            "pool, with seeded replications per point"
        ),
    )
    sweep_cmd.add_argument(
        "--experiment", required=True, metavar="ID",
        help="experiment id, e.g. T7",
    )
    sweep_cmd.add_argument(
        "--parameter", metavar="NAME",
        help="sweep parameter (defaults to the experiment's natural one)",
    )
    sweep_cmd.add_argument(
        "--values", metavar="V1,V2,...",
        help=(
            "comma-separated Python literals; defaults to the "
            "experiment's own default sequence"
        ),
    )
    sweep_cmd.add_argument(
        "--replications", type=int, default=1, metavar="R",
        help="independently seeded runs per sweep point",
    )
    sweep_cmd.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1 = inline serial)",
    )
    sweep_cmd.add_argument(
        "--root-seed", type=int, default=0,
        help="seed-tree root; per-task seeds derive from it",
    )
    sweep_cmd.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="extra experiment parameter applied to every task",
    )
    sweep_cmd.add_argument(
        "--timeout-s", type=float, default=None, metavar="SECONDS",
        help="per-task timeout enforced by the pool",
    )
    sweep_cmd.add_argument(
        "--retries", type=int, default=1,
        help="crash/timeout retries per task (default 1)",
    )
    sweep_cmd.add_argument(
        "--output", metavar="PATH",
        help="write rows, summaries, and digests as JSON",
    )
    sweep_cmd.add_argument(
        "--checkpoint", metavar="PATH",
        help=(
            "journal completed tasks to PATH; a killed sweep resumes "
            "from it with bit-identical final digests"
        ),
    )
    sweep_cmd.add_argument(
        "--watchdog-s", type=float, default=None, metavar="SECONDS",
        help=(
            "fallback wall-clock limit for tasks without --timeout-s "
            "(converts a hung worker into a timeout)"
        ),
    )
    sweep_cmd.add_argument(
        "--cache", metavar="DIR",
        help=(
            "content-addressed result cache: points already stored "
            "return instantly (bit-identical), only misses run"
        ),
    )
    sweep_cmd.set_defaults(handler=_cmd_sweep)

    cache_cmd = commands.add_parser(
        "cache",
        help=(
            "inspect or maintain a content-addressed result cache "
            "(stats, gc, verify)"
        ),
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)
    for name, blurb in (
        ("stats", "entry/byte totals plus session traffic counters"),
        ("gc", "evict entries by age and/or total size"),
        ("verify", "re-check every entry's digests (optionally re-run some)"),
    ):
        sub = cache_sub.add_parser(name, help=blurb)
        sub.add_argument("dir", help="cache directory")
        sub.add_argument(
            "--json", action="store_true", help="emit the report as JSON"
        )
        if name == "gc":
            sub.add_argument(
                "--max-bytes", type=int, default=None, metavar="N",
                help="evict oldest entries until the store fits N bytes",
            )
            sub.add_argument(
                "--max-age-s", type=float, default=None, metavar="SECONDS",
                help="evict entries not written in the last SECONDS",
            )
        if name == "verify":
            sub.add_argument(
                "--recompute", type=int, default=0, metavar="N",
                help=(
                    "re-execute up to N entries from their stored spec and "
                    "hard-fail on any digest divergence"
                ),
            )
        sub.set_defaults(handler=_cmd_cache)

    serve_cmd = commands.add_parser(
        "serve",
        help=(
            "run the warm sweep service: a foreground daemon answering "
            "sweep submissions from one shared result cache"
        ),
    )
    serve_cmd.add_argument(
        "--cache", required=True, metavar="DIR",
        help="result cache directory backing the service",
    )
    serve_cmd.add_argument(
        "--socket", required=True, metavar="PATH",
        help="Unix socket to listen on",
    )
    serve_cmd.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per submission's cache misses",
    )
    serve_cmd.add_argument(
        "--watchdog-s", type=float, default=None, metavar="SECONDS",
        help="fallback wall-clock limit per pooled task",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)

    submit_cmd = commands.add_parser(
        "submit",
        help="submit a sweep (or stats/ping) to a running sweep service",
    )
    submit_cmd.add_argument(
        "--socket", required=True, metavar="PATH",
        help="Unix socket of the running service",
    )
    submit_cmd.add_argument(
        "--op", choices=("sweep", "stats", "ping"), default="sweep",
        help="request type (default sweep)",
    )
    submit_cmd.add_argument(
        "--experiment", metavar="ID", help="experiment id, e.g. T7",
    )
    submit_cmd.add_argument(
        "--parameter", metavar="NAME",
        help="sweep parameter (defaults to the experiment's natural one)",
    )
    submit_cmd.add_argument(
        "--values", metavar="V1,V2,...",
        help="comma-separated Python literals (default: experiment's own)",
    )
    submit_cmd.add_argument(
        "--replications", type=int, default=1, metavar="R",
        help="independently seeded runs per sweep point",
    )
    submit_cmd.add_argument(
        "--root-seed", type=int, default=0,
        help="seed-tree root; per-task seeds derive from it",
    )
    submit_cmd.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="extra experiment parameter applied to every task",
    )
    submit_cmd.add_argument(
        "--trace", action="store_true",
        help=(
            "run this submission's misses under a JSONL event trace "
            "(written into the cache's traces/ directory)"
        ),
    )
    submit_cmd.add_argument(
        "--json", action="store_true",
        help="print the raw event stream as JSON lines",
    )
    submit_cmd.set_defaults(handler=_cmd_submit)

    design_cmd = commands.add_parser(
        "design", help="print the Section 6 link budget for a scale"
    )
    design_cmd.add_argument("--stations", type=float, default=1e9)
    design_cmd.add_argument("--duty", type=float, default=1.0)
    design_cmd.add_argument("--margin", type=float, default=5.0)
    design_cmd.add_argument("--reach-doublings", type=float, default=1.0)
    design_cmd.set_defaults(handler=_cmd_design)

    metro_cmd = commands.add_parser(
        "metro", help="print the metro-scale rate projection"
    )
    metro_cmd.add_argument("--stations", type=float, default=1e6)
    metro_cmd.add_argument("--bandwidth", type=float, default=1e9)
    metro_cmd.add_argument("--duty", type=float, default=0.35)
    metro_cmd.add_argument("--beta", type=float, default=1.0)
    metro_cmd.add_argument("--reach-doublings", type=float, default=0.0)
    metro_cmd.set_defaults(handler=_cmd_metro)

    lint_cmd = commands.add_parser(
        "lint",
        help=(
            "run the reproflow whole-program analyzer (seed provenance, "
            "event-schema contracts, fork-safety, API lock)"
        ),
    )
    lint_cmd.add_argument(
        "--deep", action="store_true",
        help="run the interprocedural passes (required; reserved flag)",
    )
    lint_cmd.add_argument(
        "--json", action="store_true", help="emit the findings as JSON"
    )
    lint_cmd.add_argument(
        "--write-locks", action="store_true",
        help="regenerate schema.lock and api.lock from the current tree",
    )
    lint_cmd.add_argument(
        "--select", metavar="PASSES",
        help="comma-separated subset of passes (seeds,schema,fork,api)",
    )
    lint_cmd.add_argument(
        "--baseline", metavar="PATH",
        help="baseline file (default: tools/reproflow/baseline.json)",
    )
    lint_cmd.add_argument(
        "--root", metavar="DIR",
        help="repository root (default: walk up from the cwd)",
    )
    lint_cmd.set_defaults(handler=_cmd_lint)

    verify_cmd = commands.add_parser(
        "verify-determinism",
        help="run a seeded scenario twice and compare replay digests",
    )
    verify_cmd.add_argument("--stations", type=int, default=40)
    verify_cmd.add_argument("--load", type=float, default=0.03)
    verify_cmd.add_argument("--duration-slots", type=float, default=80.0)
    verify_cmd.add_argument("--seed", type=int, default=29)
    verify_cmd.set_defaults(handler=_cmd_verify_determinism)

    bench_cmd = commands.add_parser(
        "bench",
        help=(
            "time the seeded loaded-network scenario and report events/sec "
            "(optionally writing a JSON perf report)"
        ),
    )
    bench_cmd.add_argument("--stations", type=int, default=100)
    bench_cmd.add_argument("--load", type=float, default=0.1)
    bench_cmd.add_argument(
        "--duration", type=float, default=60.0, metavar="SLOTS",
        help="simulated duration in slots (default 60)",
    )
    bench_cmd.add_argument("--seed", type=int, default=29)
    bench_cmd.add_argument(
        "--rounds", type=int, default=1, metavar="N",
        help="timed rounds; the minimum wall-clock run is reported",
    )
    bench_cmd.add_argument(
        "--suite", action="store_true",
        help=(
            "benchmark the full experiment registry at several worker "
            "counts instead of the single scenario (BENCH_suite.json)"
        ),
    )
    bench_cmd.add_argument(
        "--jobs", default="1,2,4", metavar="N1,N2,...",
        help="suite mode: comma-separated worker counts (default 1,2,4)",
    )
    bench_cmd.add_argument(
        "--full", action="store_true",
        help="suite mode: full parameterisations instead of quick",
    )
    bench_cmd.add_argument(
        "--output", metavar="PATH",
        help="write the sample as a JSON perf report (BENCH_medium.json format)",
    )
    bench_cmd.set_defaults(handler=_cmd_bench)

    trace_cmd = commands.add_parser(
        "trace",
        help=(
            "stream an experiment's typed event trace to JSONL/binary "
            "sinks, or decode a written trace back"
        ),
    )
    trace_cmd.add_argument(
        "--experiment", metavar="ID",
        help="experiment id to run under instrumentation (e.g. T7)",
    )
    trace_cmd.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="override an experiment parameter (repeatable)",
    )
    trace_cmd.add_argument(
        "--jsonl", metavar="PATH", help="write events as JSON lines",
    )
    trace_cmd.add_argument(
        "--binary", metavar="PATH",
        help="write events as a compact columnar .npz trace",
    )
    trace_cmd.add_argument(
        "--rotate-bytes", type=int, default=None, metavar="N",
        help="rotate the JSONL file into .1/.2/... segments at N bytes",
    )
    trace_cmd.add_argument(
        "--read", metavar="PATH",
        help="decode a written trace (JSONL or binary) instead of running",
    )
    trace_cmd.add_argument(
        "--kind", action="append", metavar="KIND",
        help="read mode: only print events of this kind (repeatable)",
    )
    trace_cmd.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="read mode: print at most N events",
    )
    trace_cmd.add_argument(
        "--summary", action="store_true",
        help="print per-kind event counts",
    )
    trace_cmd.set_defaults(handler=_cmd_trace)

    report_cmd = commands.add_parser(
        "report",
        help=(
            "run the seeded loaded network and render per-station metric "
            "timelines (duty cycle, queue depth, SIR, losses)"
        ),
    )
    report_cmd.add_argument(
        "--timeline", required=True,
        choices=("duty", "queue", "sir", "loss"),
        help="which per-station series to render",
    )
    report_cmd.add_argument("--stations", type=int, default=100)
    report_cmd.add_argument("--load", type=float, default=0.05)
    report_cmd.add_argument(
        "--duration-slots", type=float, default=300.0, metavar="SLOTS",
    )
    report_cmd.add_argument(
        "--window-slots", type=float, default=10.0, metavar="SLOTS",
        help="aggregation window width in slots (default 10)",
    )
    report_cmd.add_argument("--seed", type=int, default=7)
    report_cmd.set_defaults(handler=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
