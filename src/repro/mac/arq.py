"""Stop-and-wait ARQ: bounded retransmission under any MAC.

The paper's scheme deliberately has no per-packet acknowledgement —
the schedule makes hops collision-free, so reliability is structural.
The contention baselines are different: they lose hops routinely, and
each of their MAC loops historically retried privately and then
*silently* dropped (``self.dropped += 1`` and nothing else), which
makes lossy operation collapse invisibly at high load or under a
time-varying channel.

:class:`ArqSublayer` moves reliability out of the MACs into one
station-level link layer, pluggable under every ``MacFactory`` MAC
(enable it with ``NetworkConfig.arq_max_retries``):

* On a failed data burst the sublayer takes ownership of the packet:
  it reports the attempt as *handled* to the MAC above (so contention
  MACs do not also retry — with ARQ installed every MAC becomes a
  single-attempt channel-access behaviour) and schedules a
  retransmission after ``timeout + backoff_base * 2**(attempt-1)``
  slots, capped, with a bounded number of retries.  The delay schedule
  is fully deterministic — no RNG — so enabling ARQ perturbs nothing
  but the packets it saves.
* A retransmission re-enters the transmit queue through a *fresh*
  routing-table lookup (:meth:`repro.net.station.Station.requeue`), so
  a retry after a reroute or a mobility re-convergence follows the new
  route; with a continuously fading channel a retry later than the
  coherence time sees an independent fade draw, which is exactly what
  turns transient losses into delayed deliveries.
* Exhausting the budget is *loud*: an :class:`~repro.obs.events
  .ArqGiveUp` event, a per-station counter, and a column in the
  experiment rows — never a silent drop.

Control frames (MACA's RTS/CTS handshake) bypass the sublayer
entirely; their retry logic is the MAC protocol itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.obs.events import ArqGiveUp, ArqRetry
from repro.routing.table import RouteError
from repro.sim.process import ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    # Type-only: importing repro.net here would close an import cycle
    # (net.network imports this module to install the sublayer).
    from repro.net.packet import Packet
    from repro.net.station import Station

__all__ = ["ArqConfig", "ArqSublayer"]


@dataclass(frozen=True)
class ArqConfig:
    """Stop-and-wait retransmission policy.

    Attributes:
        max_retries: retransmissions per packet before giving up.
        timeout_slots: fixed wait (slots) before every retransmission —
            the stop-and-wait acknowledgement timeout.
        backoff_slots: base of the exponential backoff added on top of
            the timeout; attempt k waits ``backoff_slots * 2**(k-1)``
            extra slots.
        backoff_cap_slots: upper bound on the total per-retry delay.
    """

    max_retries: int = 3
    timeout_slots: float = 4.0
    backoff_slots: float = 2.0
    backoff_cap_slots: float = 64.0

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError("ARQ needs at least one retry")
        if self.timeout_slots <= 0.0:
            raise ValueError("ARQ timeout must be positive")
        if self.backoff_slots < 0.0:
            raise ValueError("ARQ backoff must be non-negative")
        if self.backoff_cap_slots < self.timeout_slots:
            raise ValueError("ARQ backoff cap must cover the timeout")

    def retry_delay_slots(self, attempt: int) -> float:
        """Slots to wait before retransmission number ``attempt``."""
        delay = self.timeout_slots + self.backoff_slots * 2.0 ** (attempt - 1)
        return min(delay, self.backoff_cap_slots)


class ArqSublayer:
    """Per-station stop-and-wait retransmission state.

    One instance is installed per station by ``build_network`` when
    ``NetworkConfig.arq_max_retries`` is set; the station consults it
    from :meth:`~repro.net.station.Station.transmit_packet`.
    """

    def __init__(
        self, station: "Station", config: ArqConfig, slot_time: float
    ) -> None:
        if slot_time <= 0.0:
            raise ValueError("slot time must be positive")
        self.station = station
        self.config = config
        self.slot_time = slot_time
        self.retries = 0
        self.giveups = 0
        self._attempts: Dict[int, int] = {}

    def on_success(self, packet: Packet) -> None:
        """Clear retry state for a delivered hop."""
        self._attempts.pop(packet.packet_id, None)

    def on_failure(self, packet: Packet, next_hop: int) -> bool:
        """Take ownership of a failed data burst.

        Either schedules a bounded retransmission or records a loud
        give-up.  Always returns True: the MAC above must treat the
        attempt as handled and must not retry on its own.
        """
        station = self.station
        attempt = self._attempts.get(packet.packet_id, 0) + 1
        if attempt > self.config.max_retries:
            self._give_up(packet, next_hop, attempt)
            return True
        self._attempts[packet.packet_id] = attempt
        self.retries += 1
        station.stats.arq_retries += 1
        if station.instr.active:
            station.instr.emit(
                ArqRetry(
                    station.env.now,
                    station.index,
                    next_hop,
                    packet.packet_id,
                    attempt,
                )
            )
        delay = self.config.retry_delay_slots(attempt) * self.slot_time
        station.env.process(self._redeliver(packet, delay))
        return True

    def _give_up(self, packet: Packet, next_hop: int, attempts: int) -> None:
        self._attempts.pop(packet.packet_id, None)
        self.giveups += 1
        station = self.station
        station.stats.arq_giveups += 1
        if station.instr.active:
            station.instr.emit(
                ArqGiveUp(
                    station.env.now,
                    station.index,
                    next_hop,
                    packet.packet_id,
                    attempts,
                )
            )

    def _redeliver(self, packet: Packet, delay: float) -> ProcessGenerator:
        """Wait out the timeout+backoff, then re-enqueue on the packet's
        *current* best route (routes may have changed meanwhile)."""
        station = self.station
        yield station.env.timeout(delay)
        if not station.alive:
            # The retrying station crashed while holding the packet.
            self._give_up(
                packet, -1, self._attempts.get(packet.packet_id, 0)
            )
            return
        try:
            next_hop = station.table.next_hop(packet.destination)
        except RouteError:
            self._attempts.pop(packet.packet_id, None)
            station.record_no_route(packet.destination)
            return
        if not station.requeue(packet, next_hop):
            # The bounded queue (or a crash) refused the retry; the
            # drop was counted by requeue itself.
            self._attempts.pop(packet.packet_id, None)
