"""Bench A8: self-organisation — routes learned over the air."""

from repro.experiments import get_experiment


def test_bench_a8_self_organization(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("A8")(),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    assert report.claims["missing routes after convergence"][1] == 0
    assert (
        report.claims[
            "next-hop agreement with centralised minimum-energy routing"
        ][1]
        == 1.0
    )
    assert report.claims["route-cost agreement"][1] == 1.0
    assert report.claims["losses during bootstrap and data phases"][1] == 0
