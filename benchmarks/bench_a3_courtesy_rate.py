"""Bench A3: the design-rate benefit of the Section 7.3 courtesy."""

from repro.experiments import get_experiment


def test_bench_a3_courtesy_rate(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("A3")(),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    assert (
        report.claims["design-rate gain from the courtesy (ratio on/off)"][1] > 1.0
    )
    loss_claims = [v for k, v in report.claims.items() if k.startswith("losses")]
    assert all(measured == 0 for _paper, measured in loss_claims)
