"""Tests for transmit power policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.power_control import (
    ConstantDeliveredPolicy,
    FullPowerPolicy,
    PolicyKind,
    TargetSirPolicy,
    make_policy,
)


class TestFullPower:
    def test_always_maximum(self):
        policy = FullPowerPolicy()
        assert policy.transmit_power(0.001, 5.0) == 5.0
        assert policy.transmit_power(0.9, 5.0) == 5.0


class TestConstantDelivered:
    def test_inverts_path_gain(self):
        policy = ConstantDeliveredPolicy(target_received_w=2.0)
        assert policy.transmit_power(0.01, 1e9) == pytest.approx(200.0)

    def test_clamped_by_hardware(self):
        policy = ConstantDeliveredPolicy(target_received_w=2.0)
        assert policy.transmit_power(1e-9, 10.0) == 10.0

    def test_delivered_power_is_constant(self):
        policy = ConstantDeliveredPolicy(target_received_w=3.0)
        for gain in (0.5, 0.01, 1e-4):
            delivered = policy.transmit_power(gain, 1e12) * gain
            assert delivered == pytest.approx(3.0)

    @given(st.floats(min_value=1e-9, max_value=1.0))
    def test_never_exceeds_limit(self, gain):
        policy = ConstantDeliveredPolicy(target_received_w=1.0)
        assert policy.transmit_power(gain, 7.0) <= 7.0

    def test_density_compensation(self):
        # Section 6.1: quadruple density -> half distance -> quarter
        # power under 1/r^2 loss (gain x4).
        policy = ConstantDeliveredPolicy(target_received_w=1.0)
        sparse = policy.transmit_power(0.01, 1e9)
        dense = policy.transmit_power(0.04, 1e9)
        assert sparse / dense == pytest.approx(4.0)

    def test_rejects_zero_gain(self):
        with pytest.raises(ValueError):
            ConstantDeliveredPolicy(1.0).transmit_power(0.0, 1.0)


class TestTargetSir:
    def test_uses_observed_noise(self):
        policy = TargetSirPolicy(target_sir=0.1, fallback_noise_w=1.0)
        power = policy.transmit_power(0.01, 1e9, observed_noise_w=5.0)
        # Delivered 0.1 * 5.0 = 0.5 -> transmit 0.5 / 0.01.
        assert power == pytest.approx(50.0)

    def test_falls_back_without_observation(self):
        policy = TargetSirPolicy(target_sir=0.1, fallback_noise_w=2.0)
        assert policy.transmit_power(0.01, 1e9) == pytest.approx(20.0)

    def test_adapts_to_quieter_channel(self):
        policy = TargetSirPolicy(target_sir=0.1, fallback_noise_w=1.0)
        loud = policy.transmit_power(0.01, 1e9, observed_noise_w=10.0)
        quiet = policy.transmit_power(0.01, 1e9, observed_noise_w=1.0)
        assert loud == pytest.approx(10.0 * quiet)


class TestFactory:
    def test_all_kinds(self):
        assert isinstance(make_policy(PolicyKind.FULL), FullPowerPolicy)
        assert isinstance(
            make_policy(PolicyKind.CONSTANT_DELIVERED, target_received_w=2.0),
            ConstantDeliveredPolicy,
        )
        assert isinstance(
            make_policy(PolicyKind.TARGET_SIR, target_sir=0.2),
            TargetSirPolicy,
        )

    def test_parameters_flow_through(self):
        policy = make_policy(PolicyKind.CONSTANT_DELIVERED, target_received_w=9.0)
        assert policy.target_received_w == 9.0
