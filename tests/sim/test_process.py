"""Tests for generator-based processes."""

import pytest

from repro.sim.engine import Environment
from repro.sim.events import Interrupt
from repro.sim.process import Process


class TestProcessBasics:
    def test_return_value_becomes_event_value(self):
        env = Environment()

        def worker(env):
            yield env.timeout(1.0)
            return 42

        process = env.process(worker(env))
        env.run()
        assert process.value == 42

    def test_sequential_timeouts(self):
        env = Environment()
        ticks = []

        def worker(env):
            for _ in range(3):
                yield env.timeout(2.0)
                ticks.append(env.now)

        env.process(worker(env))
        env.run()
        assert ticks == [2.0, 4.0, 6.0]

    def test_process_waits_on_process(self):
        env = Environment()

        def child(env):
            yield env.timeout(3.0)
            return "child done"

        def parent(env):
            result = yield env.process(child(env))
            return f"saw: {result}"

        parent_proc = env.process(parent(env))
        env.run()
        assert parent_proc.value == "saw: child done"

    def test_is_alive(self):
        env = Environment()

        def worker(env):
            yield env.timeout(1.0)

        process = env.process(worker(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_yielding_non_event_fails_process(self):
        env = Environment()

        def bad(env):
            yield 42  # noqa: REP007 - deliberately broken process

        process = env.process(bad(env))
        with pytest.raises(RuntimeError, match="not an Event"):
            env.run()
        assert not process.ok

    def test_requires_generator(self):
        with pytest.raises(TypeError):
            Process(Environment(), lambda: None)

    def test_immediate_return(self):
        env = Environment()

        def instant(env):
            return "done"
            yield  # noqa: REP007 - pragma: no cover - makes this a generator

        process = env.process(instant(env))
        env.run()
        assert process.value == "done"


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        env = Environment()
        caught = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                caught.append(interrupt.cause)

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert caught == ["wake up"]

    def test_interrupted_process_continues(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                log.append(("interrupted", env.now))
            yield env.timeout(5.0)
            log.append(("done", env.now))

        def interrupter(env, victim):
            yield env.timeout(2.0)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [("interrupted", 2.0), ("done", 7.0)]

    def test_interrupt_finished_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_uncaught_interrupt_fails_process(self):
        env = Environment()

        def fragile(env):
            yield env.timeout(100.0)

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt()

        victim = env.process(fragile(env))
        env.process(interrupter(env, victim))
        with pytest.raises(Interrupt):
            env.run()


class TestExceptionFlow:
    def test_exception_reaches_waiting_process(self):
        env = Environment()
        seen = []

        def failing(env):
            yield env.timeout(1.0)
            raise KeyError("inner")

        def waiter(env, child):
            try:
                yield child
            except KeyError as exc:
                seen.append(exc.args[0])

        child = env.process(failing(env))
        env.process(waiter(env, child))
        env.run()
        assert seen == ["inner"]

    def test_exception_in_handler_propagates(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1.0)
            raise KeyError("inner")

        def bad_handler(env, child):
            try:
                yield child
            except KeyError:
                raise ValueError("handler broke")

        child = env.process(failing(env))
        env.process(bad_handler(env, child))
        with pytest.raises(ValueError, match="handler broke"):
            env.run()
