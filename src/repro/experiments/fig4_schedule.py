"""Experiment F4: regenerate Figure 4 (pseudo-random schedule raster).

Figure 4 shows 20 stations' schedules over ~0.5 s with 30% receive duty
cycle: a raster of transmit runs, with slot boundaries unaligned across
stations.  This experiment regenerates the raster from the shared hash
schedule and per-station random clocks, verifies the duty cycle, and
reconstructs the figure's circled-instant example: an instant where
station 0 is in a transmit window, stations 1 and 2 are not listening,
and station 3 is.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.clock.clock import Clock
from repro.core.access import ScheduleView
from repro.core.schedule import Schedule
from repro.experiments.runner import ExperimentReport, register

__all__ = ["run"]


def _raster_string(
    view: ScheduleView, start: float, end: float, cells: int
) -> str:
    """ASCII raster: '#' where transmitting is allowed, '.' listening."""
    width = (end - start) / cells
    return "".join(
        "." if view.is_receiving_at(start + (k + 0.5) * width) else "#"
        for k in range(cells)
    )


@register("F4")
def run(
    station_count: int = 20,
    slot_time: float = 0.02,
    receive_fraction: float = 0.3,
    span: float = 0.5,
    cells: int = 100,
    seed: int = 4,
) -> ExperimentReport:
    """Regenerate the Figure 4 raster and its worked example."""
    if station_count < 4:
        raise ValueError("the Figure 4 example needs at least four stations")
    schedule = Schedule(
        slot_time=slot_time, receive_fraction=receive_fraction, key=seed
    )
    rng = np.random.default_rng(seed)
    clocks = [
        Clock(offset=float(rng.uniform(0.0, 1e4 * slot_time)))
        for _ in range(station_count)
    ]
    views = [ScheduleView.own(schedule, clock) for clock in clocks]

    report = ExperimentReport(
        experiment_id="F4",
        title="Pseudo-random unaligned schedules for 20 stations (Figure 4)",
        columns=("station", "raster (.=listen #=transmit)"),
    )
    for index, view in enumerate(views):
        report.add_row(index, _raster_string(view, 0.0, span, cells))

    # Measured receive duty cycle across all stations and the span.
    samples = 200
    listening = sum(
        1
        for view in views
        for k in range(samples)
        if view.is_receiving_at((k + 0.5) * span / samples)
    )
    measured_p = listening / (samples * station_count)
    report.claim("receive duty cycle p", receive_fraction, measured_p)

    example = _find_example_instant(views, span)
    if example is not None:
        instant, blocked, open_to = example
        report.claim(
            "circled-instant example (cannot send to two neighbours, can "
            "send to a third)",
            "station 0 -> not 1, not 2, yes 3",
            f"t={instant:.4f}: station 0 cannot reach {blocked}, can reach {open_to}",
        )
    report.notes.append(
        "All stations share one schedule function; the rasters differ only "
        "through their independently set clocks (Section 7.1)."
    )
    return report


def _find_example_instant(
    views, span: float
) -> Optional[Tuple[float, Tuple[int, int], int]]:
    """An instant where station 0 may transmit, two stations are deaf,
    and a third is listening — Figure 4's circled example."""
    steps = 1000
    for k in range(steps):
        instant = (k + 0.5) * span / steps
        if views[0].is_receiving_at(instant):
            continue
        listening = [
            index
            for index in range(1, len(views))
            if views[index].is_receiving_at(instant)
        ]
        deaf = [
            index
            for index in range(1, len(views))
            if not views[index].is_receiving_at(instant)
        ]
        if len(deaf) >= 2 and listening:
            return instant, (deaf[0], deaf[1]), listening[0]
    return None
