"""A worker entry point with a laundered seed and shared-state writes."""

import numpy as np

__all__ = ["execute_task"]

_CACHE = {}


def _make_rng(n):
    return np.random.default_rng(n)


def ambient_rng():
    return np.random.default_rng()


def execute_task(index: int) -> int:
    global _COUNT
    _COUNT = index
    rng = _make_rng(1234)
    value = int(rng.integers(10))
    _CACHE[index] = value
    return value
