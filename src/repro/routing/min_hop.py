"""Minimum-hop routing: the conventional baseline.

The traditional nodes-and-edges view (Section 2) routes over the fewest
hops, which under power control means preferring long, high-power hops
— exactly what Section 6.2 argues against: "The criteria used to
determine routes will need to prefer the short hops, which produce less
interference, and avoid skipping over intermediate stations."  The
routing trade-off experiment (T10) compares the two.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict

import numpy as np

from repro.propagation.matrix import PropagationMatrix
from repro.routing.table import RoutingTable

__all__ = ["hop_costs", "min_hop_tables"]


def hop_costs(matrix: PropagationMatrix, min_gain: float) -> np.ndarray:
    """Unit cost for every usable link, +inf otherwise."""
    if min_gain <= 0.0:
        raise ValueError(
            "min-hop routing needs an explicit usability threshold; with "
            "min_gain=0 every pair is one hop and the metric is vacuous"
        )
    costs = np.full_like(matrix.gains, math.inf)
    usable = matrix.gains >= min_gain
    np.fill_diagonal(usable, False)
    costs[usable] = 1.0
    return costs


def min_hop_tables(
    matrix: PropagationMatrix, min_gain: float
) -> Dict[int, RoutingTable]:
    """All-pairs min-hop routing tables via per-source BFS.

    Ties between equal-hop routes break toward the lowest-numbered
    neighbour, keeping tables deterministic.
    """
    usable = matrix.gains >= min_gain
    np.fill_diagonal(usable, False)
    count = matrix.count
    tables: Dict[int, RoutingTable] = {}
    for source in range(count):
        parent = np.full(count, -1, dtype=int)
        depth = np.full(count, -1, dtype=int)
        depth[source] = 0
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            for v in np.nonzero(usable[u])[0]:
                if depth[v] < 0:
                    depth[v] = depth[u] + 1
                    parent[v] = u
                    frontier.append(int(v))
        table = RoutingTable(source)
        for destination in range(count):
            if destination == source or depth[destination] < 0:
                continue
            hop = destination
            while parent[hop] != source:
                hop = parent[hop]
            table.set_route(destination, int(hop), float(depth[destination]))
        tables[source] = table
    return tables
