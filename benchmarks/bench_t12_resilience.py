"""Bench T12: delivery recovery under deterministic station churn."""

import math

from repro.experiments import get_experiment


def test_bench_t12_resilience(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("T12")(
            churn_rates=(0.01, 0.03),
            station_count=24,
        ),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    # The scheme's post-churn delivery ratio recovers to within 5% of
    # its pre-fault steady state at every churn rate.
    recovered = report.claims[
        "scheme post-churn delivery vs pre-fault steady state"
    ][1]
    assert recovered >= 0.95
    # Churn actually happened and rerouting engaged at every point.
    assert all(row[2] > 0 for row in report.rows)
    shepard_rows = [r for r in report.rows if r[0] == "shepard"]
    assert all(not math.isnan(row[7]) for row in shepard_rows)
