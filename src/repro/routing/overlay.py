"""Over-the-air route computation: the self-organising bootstrap.

The paper's abstract promises "a self-organizing packet radio network";
Section 6.2 notes that the distributed Bellman-Ford "is also easy to
distribute" and footnote 11 cites its asynchronous form.  This module
closes the loop: the distance-vector computation runs as *actual
control packets* carried by the collision-free access scheme itself —
no side channel, no central table computation for forwarding.

Protocol: every station starts knowing only its hearable neighbours and
the observed link gains (Section 6.2: "they will be able to observe the
path gains between themselves").  Each station keeps a cost vector
(initially ``{self: 0}``) and unicasts it to each hearable neighbour as
a ``"dv"`` control frame.  A receiver folds the advert in through the
link's energy cost (reciprocal gain) and, when its vector improves,
schedules a re-advertisement (triggered updates with damping).  Because
the carrier is the paper's scheme, adverts are never lost, and the
computation converges to exactly the minimum-energy tables the
centralised Dijkstra produces — experiment A8 asserts bit-for-bit
agreement of next hops and costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

import numpy as np

from repro.net.packet import Packet
from repro.sim.process import ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover - avoids routing <-> net cycle
    from repro.net.station import Station

__all__ = ["DistanceVectorOverlay", "DV_KIND"]

DV_KIND = "dv"


class DistanceVectorOverlay:
    """Distributed minimum-energy route computation over the air.

    Args:
        network: a built (not yet started) network; the overlay clears
            every station's forwarding table and re-learns it on air.
        control_size_bits: advert frame size (must keep its airtime at
            or below the scheme's quarter-slot packet budget).
        advert_interval_slots: damping interval between a station's
            re-advertisements.
    """

    def __init__(
        self,
        network,
        control_size_bits: float = 250.0,
        advert_interval_slots: float = 2.0,
    ) -> None:
        if control_size_bits <= 0.0:
            raise ValueError("control frame size must be positive")
        if advert_interval_slots <= 0.0:
            raise ValueError("advert interval must be positive")
        airtime = control_size_bits / network.budget.data_rate_bps
        if airtime > network.budget.packet_airtime + 1e-12:
            raise ValueError(
                "advert airtime exceeds the quarter-slot packet budget"
            )
        self.network = network
        self.control_size_bits = control_size_bits
        self.advert_interval = advert_interval_slots * network.budget.slot_time
        # A station's world: hearable neighbours and observed gains.
        self._gains = network.matrix.observed(
            min_gain=network.budget.min_gain
        ).gains
        self._neighbors: Dict[int, List[int]] = {
            station.index: [
                int(n) for n in np.nonzero(self._gains[:, station.index])[0]
            ]
            for station in network.stations
        }
        self._vectors: Dict[int, Dict[int, float]] = {}
        self._dirty: Dict[int, bool] = {}
        self.adverts_sent = 0
        self.last_change_at = 0.0
        for station in network.stations:
            station.register_control_handler(
                DV_KIND, self._make_handler(station)
            )

    def install(self) -> None:
        """Clear the forwarding tables and launch the advert processes.

        Must be called before :meth:`repro.net.network.Network.start`.
        """
        for station in self.network.stations:
            station.table.next_hops.clear()
            station.table.costs.clear()
            self._vectors[station.index] = {station.index: 0.0}
            self._dirty[station.index] = True
        for station in self.network.stations:
            self.network.env.process(self._advertiser(station))

    # -- receive side -----------------------------------------------------

    def _make_handler(self, station: "Station"):
        def handler(tx) -> None:
            self._absorb(station, tx.source, tx.packet.payload["vector"])

        return handler

    def _absorb(
        self, station: "Station", advertiser: int, vector: Dict[int, float]
    ) -> None:
        gain = self._gains[station.index, advertiser]
        if gain <= 0.0:
            return  # an advert from beyond the usable range; ignore
        link_cost = 1.0 / gain
        own = self._vectors[station.index]
        improved = False
        for destination, cost in vector.items():
            destination = int(destination)
            if destination == station.index:
                continue
            candidate = link_cost + float(cost)
            current = own.get(destination)
            if current is None or candidate < current - 1e-15:
                own[destination] = candidate
                station.table.set_route(destination, advertiser, candidate)
                improved = True
        if improved:
            self._dirty[station.index] = True
            self.last_change_at = self.network.env.now

    # -- send side --------------------------------------------------------

    def _advertiser(self, station: "Station") -> ProcessGenerator:
        env = self.network.env
        # Desynchronise first adverts a little, deterministically.
        yield env.timeout(
            (station.index % 7) * self.advert_interval / 7.0
        )
        while True:
            if self._dirty.get(station.index):
                self._dirty[station.index] = False
                snapshot = dict(self._vectors[station.index])
                for neighbor in self._neighbors[station.index]:
                    advert = Packet(
                        source=station.index,
                        destination=neighbor,
                        size_bits=self.control_size_bits,
                        created_at=env.now,
                        kind=DV_KIND,
                        payload={"vector": snapshot},
                    )
                    station.send_control(neighbor, advert)
                    self.adverts_sent += 1
            yield env.timeout(self.advert_interval)

    # -- verification -------------------------------------------------------

    def agreement_with(self, reference_tables: Dict) -> Dict[str, float]:
        """Compare the learned tables against a reference (e.g. the
        centralised Dijkstra result); returns agreement statistics."""
        total = matching_hop = matching_cost = missing = 0
        for station in self.network.stations:
            reference = reference_tables[station.index]
            for destination, next_hop in reference.next_hops.items():
                total += 1
                if not station.table.has_route(destination):
                    missing += 1
                    continue
                if station.table.next_hop(destination) == next_hop:
                    matching_hop += 1
                ref_cost = reference.cost(destination)
                if abs(station.table.cost(destination) - ref_cost) <= max(
                    1e-9 * ref_cost, 1e-12
                ):
                    matching_cost += 1
        return {
            "routes": total,
            "missing": missing,
            "next_hop_agreement": matching_hop / total if total else 1.0,
            "cost_agreement": matching_cost / total if total else 1.0,
        }
