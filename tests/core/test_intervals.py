"""Tests for interval-stream algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import (
    clip,
    first_fitting,
    intersect,
    intersect_many,
    subtract,
    total_length,
    validate_stream,
)


def stream_strategy():
    """Random ordered disjoint interval streams."""
    return st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=0.01, max_value=5.0),
        ),
        max_size=15,
    ).map(_to_stream)


def _to_stream(pairs):
    intervals = []
    cursor = 0.0
    for gap, length in sorted(pairs):
        start = cursor + gap / 10.0 + 0.01
        intervals.append((start, start + length))
        cursor = start + length
    return intervals


class TestValidate:
    def test_passes_ordered(self):
        assert list(validate_stream([(0, 1), (2, 3)])) == [(0, 1), (2, 3)]

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            list(validate_stream([(1, 1)]))

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            list(validate_stream([(0, 2), (1, 3)]))


class TestIntersect:
    def test_basic_overlap(self):
        a = [(0.0, 10.0)]
        b = [(5.0, 15.0)]
        assert list(intersect(a, b)) == [(5.0, 10.0)]

    def test_disjoint_is_empty(self):
        assert list(intersect([(0, 1)], [(2, 3)])) == []

    def test_multiple_fragments(self):
        a = [(0.0, 10.0)]
        b = [(1.0, 2.0), (3.0, 4.0), (9.0, 12.0)]
        assert list(intersect(a, b)) == [(1.0, 2.0), (3.0, 4.0), (9.0, 10.0)]

    def test_touching_edges_do_not_intersect(self):
        assert list(intersect([(0, 1)], [(1, 2)])) == []

    def test_intersect_many(self):
        streams = [[(0.0, 10.0)], [(2.0, 8.0)], [(4.0, 12.0)]]
        assert list(intersect_many(streams)) == [(4.0, 8.0)]

    def test_intersect_many_requires_input(self):
        with pytest.raises(ValueError):
            intersect_many([])

    @given(stream_strategy(), stream_strategy())
    def test_result_within_both(self, a, b):
        for lo, hi in intersect(a, b):
            assert any(s <= lo and hi <= e for s, e in a)
            assert any(s <= lo and hi <= e for s, e in b)

    @given(stream_strategy(), stream_strategy())
    def test_commutative_total_length(self, a, b):
        assert total_length(intersect(a, b)) == pytest.approx(
            total_length(intersect(b, a))
        )


class TestSubtract:
    def test_hole_in_middle(self):
        assert list(subtract([(0.0, 10.0)], [(4.0, 6.0)])) == [
            (0.0, 4.0),
            (6.0, 10.0),
        ]

    def test_hole_covering_all(self):
        assert list(subtract([(2.0, 3.0)], [(0.0, 5.0)])) == []

    def test_hole_at_edges(self):
        assert list(subtract([(0.0, 10.0)], [(0.0, 2.0), (8.0, 10.0)])) == [
            (2.0, 8.0)
        ]

    def test_no_holes(self):
        assert list(subtract([(1.0, 2.0)], [])) == [(1.0, 2.0)]

    def test_multiple_base_intervals(self):
        base = [(0.0, 3.0), (5.0, 8.0)]
        holes = [(2.0, 6.0)]
        assert list(subtract(base, holes)) == [(0.0, 2.0), (6.0, 8.0)]

    @given(stream_strategy(), stream_strategy())
    def test_result_disjoint_from_removed(self, base, removed):
        for lo, hi in subtract(base, removed):
            for s, e in removed:
                assert hi <= s or lo >= e

    @given(stream_strategy(), stream_strategy())
    def test_lengths_partition(self, base, removed):
        kept = total_length(subtract(base, removed))
        cut = total_length(intersect(base, removed))
        assert kept + cut == pytest.approx(total_length(base), abs=1e-9)


class TestClip:
    def test_clip_trims(self):
        assert list(clip([(0.0, 10.0)], 3.0, 7.0)) == [(3.0, 7.0)]

    def test_clip_stops_lazily(self):
        def infinite():
            t = 0.0
            while True:
                yield (t, t + 0.5)
                t += 1.0

        assert list(clip(infinite(), 0.0, 2.0)) == [(0.0, 0.5), (1.0, 1.5)]

    def test_clip_rejects_empty_window(self):
        with pytest.raises(ValueError):
            list(clip([(0.0, 1.0)], 5.0, 5.0))


class TestFirstFitting:
    def test_finds_earliest(self):
        windows = [(0.0, 0.3), (1.0, 3.0)]
        assert first_fitting(windows, 1.0) == (1.0, 2.0)

    def test_respects_not_before(self):
        windows = [(0.0, 10.0)]
        assert first_fitting(windows, 2.0, not_before=4.0) == (4.0, 6.0)

    def test_none_when_nothing_fits(self):
        assert first_fitting([(0.0, 0.5)], 1.0) is None

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            first_fitting([(0.0, 1.0)], 0.0)


class TestTotalLength:
    def test_sum(self):
        assert total_length([(0.0, 1.0), (2.0, 4.5)]) == pytest.approx(3.5)

    def test_empty(self):
        assert total_length([]) == 0.0
