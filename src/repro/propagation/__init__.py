"""Propagation substrate: placements, path-loss models, the H matrix."""

from repro.propagation.geometry import (
    Placement,
    characteristic_length,
    clustered,
    jittered_grid,
    pairwise_distances,
    uniform_disk,
    uniform_square,
)
from repro.propagation.horizon import (
    DEFAULT_ANTENNA_HEIGHT_M,
    EARTH_RADIUS_M,
    EFFECTIVE_EARTH_FACTOR,
    interference_circle_radius,
    mutual_radio_horizon_m,
    radio_horizon_m,
)
from repro.propagation.matrix import PropagationMatrix
from repro.propagation.sparse import DEFAULT_CHUNK_COLUMNS, SparseGainField
from repro.propagation.models import (
    AttenuatedFreeSpace,
    FreeSpace,
    ObstructedUrban,
    PathLossExponent,
    PropagationModel,
    model_from_name,
)

__all__ = [
    "AttenuatedFreeSpace",
    "DEFAULT_ANTENNA_HEIGHT_M",
    "DEFAULT_CHUNK_COLUMNS",
    "EARTH_RADIUS_M",
    "EFFECTIVE_EARTH_FACTOR",
    "FreeSpace",
    "ObstructedUrban",
    "PathLossExponent",
    "Placement",
    "PropagationMatrix",
    "PropagationModel",
    "SparseGainField",
    "characteristic_length",
    "clustered",
    "interference_circle_radius",
    "jittered_grid",
    "model_from_name",
    "mutual_radio_horizon_m",
    "pairwise_distances",
    "radio_horizon_m",
    "uniform_disk",
    "uniform_square",
]
