"""Bench T10: minimum-energy versus minimum-hop routing (§6.2)."""

from repro.experiments import get_experiment


def test_bench_t10_routing_tradeoff(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("T10")(station_count=60, duration_slots=400),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    assert report.claims["interference energy ratio (min-hop / min-energy)"][1] > 1.0
    assert report.claims["hop-count ratio (min-energy / min-hop)"][1] > 1.0
    energies = {row[0]: row[3] for row in report.rows}
    assert energies["min_energy"] < energies["min_hop"]
