"""Synthetic fixture packages for the reproflow analyzer tests.

``cleanpkg`` passes every pass; ``dirtypkg`` trips each of them once.
These are parsed by the analyzer, never imported as code.
"""
