#!/usr/bin/env python
"""Quickstart: build a 100-station packet radio network and verify the
paper's headline claim — collision-free transfer with a single
transmission per hop.

The whole pipeline is one call: :func:`repro.simulate` places the
stations, applies the Section 6 design strategy (minimum-energy routes,
constant-delivered-power control, a data rate calibrated so the SIR
criterion holds under any concurrency the schedules permit, and the
Section 7 pseudo-random schedules), loads every station with Poisson
traffic, and runs.

Run::

    python examples/quickstart.py
"""

import repro


def main() -> None:
    # One call: a 2 km-diameter neighbourhood (the paper's simulation
    # scale) under uniform Poisson load, run for 500 slots.
    scenario = repro.Scenario(
        station_count=100,
        radius_m=1000.0,
        load_packets_per_slot=0.05,
        duration_slots=500.0,
    )
    outcome = repro.simulate(scenario, seed=42, trace=True)
    network, result = outcome.network, outcome.result

    budget = network.budget
    print("Calibrated design point")
    print(f"  data rate           : {budget.data_rate_bps:,.0f} bit/s")
    print(f"  processing gain     : {budget.processing_gain_db:.1f} dB "
          "(the paper argues for 20-25 dB)")
    print(f"  slot time           : {budget.slot_time * 1e3:.2f} ms "
          "(packets fill a quarter slot)")
    print(f"  SIR threshold       : {budget.sir_threshold:.4f}")
    neighbor_counts = network.routing_neighbor_counts()
    print(f"  routing neighbours  : max {max(neighbor_counts)} "
          "(the paper saw at most 8)")

    print("\nRun outcome")
    print(f"  packets originated  : {result.originated}")
    print(f"  hop transmissions   : {result.transmissions}")
    print(f"  hop deliveries      : {result.hop_deliveries}")
    print(f"  end-to-end delivered: {result.delivered_end_to_end}")
    print(f"  mean route length   : {result.mean_hops:.2f} hops")
    print(f"  mean delay          : {result.mean_delay / budget.slot_time:.1f} slots")
    print(f"  losses (any type)   : {result.losses_total}")

    assert result.collision_free, "the scheme must be collision-free"
    print("\nEvery transmitted hop was received: no Type 1, 2, or 3 "
          "collisions, with zero per-packet control traffic.")


if __name__ == "__main__":
    main()
