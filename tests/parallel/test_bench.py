"""Suite benchmark: digest checking, speedup columns, report writing."""

import json

import pytest

import repro.parallel.bench as bench_module
from repro.parallel.bench import bench_suite, write_suite_report


class _FakeSuite:
    def __init__(self, digest):
        self._digest = digest
        self.errors = {}

    def digest(self):
        return self._digest


class TestBenchSuite:
    def test_measurements_and_speedups(self, monkeypatch):
        calls = []

        def fake_run_suite(jobs, quick, timeout_s, progress):
            calls.append(jobs)
            return _FakeSuite("abc123")

        monkeypatch.setattr(bench_module, "run_suite", fake_run_suite)
        payload = bench_suite(jobs_counts=(1, 2), rounds=2)
        assert calls == [1, 1, 2, 2]
        assert [m["jobs"] for m in payload["measurements"]] == [1, 2]
        for entry in payload["measurements"]:
            assert entry["suite_digest"] == "abc123"
            assert entry["errors"] == 0
            assert "speedup_vs_jobs_1" in entry
        assert payload["host_cpus"] is not None
        assert "best (minimum wall-clock)" in payload["methodology"]

    def test_digest_divergence_raises(self, monkeypatch):
        digests = iter(["one", "two"])

        def fake_run_suite(jobs, quick, timeout_s, progress):
            return _FakeSuite(next(digests))

        monkeypatch.setattr(bench_module, "run_suite", fake_run_suite)
        with pytest.raises(RuntimeError, match="digest diverged"):
            bench_suite(jobs_counts=(1, 2), rounds=1)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            bench_suite(jobs_counts=(), rounds=1)
        with pytest.raises(ValueError):
            bench_suite(jobs_counts=(1,), rounds=0)

    def test_write_suite_report(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            bench_module,
            "run_suite",
            lambda jobs, quick, timeout_s, progress: _FakeSuite("d"),
        )
        payload = bench_suite(jobs_counts=(1,), rounds=1)
        path = tmp_path / "BENCH_suite.json"
        write_suite_report(str(path), payload, notes={"context": "test"})
        loaded = json.loads(path.read_text())
        assert loaded["notes"] == {"context": "test"}
        assert loaded["measurements"][0]["jobs"] == 1
