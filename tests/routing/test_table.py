"""Tests for routing tables and route tracing."""

import pytest

from repro.routing.table import RouteError, RoutingTable, trace_route


class TestRoutingTable:
    def test_set_and_get(self):
        table = RoutingTable(0)
        table.set_route(5, next_hop=2, cost=7.5)
        assert table.next_hop(5) == 2
        assert table.cost(5) == 7.5

    def test_missing_route_raises(self):
        with pytest.raises(RouteError):
            RoutingTable(0).next_hop(9)

    def test_route_to_self_rejected(self):
        table = RoutingTable(3)
        with pytest.raises(ValueError):
            table.set_route(3, 1, 1.0)
        with pytest.raises(ValueError):
            table.next_hop(3)

    def test_self_next_hop_rejected(self):
        with pytest.raises(ValueError):
            RoutingTable(3).set_route(5, 3, 1.0)

    def test_replace_route(self):
        table = RoutingTable(0)
        table.set_route(5, 2, 10.0)
        table.set_route(5, 4, 3.0)
        assert table.next_hop(5) == 4

    def test_neighbors_in_use_distinct_sorted(self):
        table = RoutingTable(0)
        table.set_route(5, 2, 1.0)
        table.set_route(6, 2, 2.0)
        table.set_route(7, 1, 3.0)
        assert table.neighbors_in_use() == [1, 2]

    def test_has_route_and_count(self):
        table = RoutingTable(0)
        assert not table.has_route(4)
        table.set_route(4, 1, 1.0)
        assert table.has_route(4)
        assert table.destination_count == 1


class TestTraceRoute:
    def _tables(self):
        # 0 -> 1 -> 2 -> 3 linear topology.
        tables = {i: RoutingTable(i) for i in range(4)}
        tables[0].set_route(3, 1, 3.0)
        tables[1].set_route(3, 2, 2.0)
        tables[2].set_route(3, 3, 1.0)
        return tables

    def test_follows_next_hops(self):
        assert trace_route(self._tables(), 0, 3) == [0, 1, 2, 3]

    def test_trivial_route(self):
        assert trace_route({}, 4, 4) == [4]

    def test_loop_detected(self):
        tables = {0: RoutingTable(0), 1: RoutingTable(1)}
        tables[0].set_route(9, 1, 1.0)
        tables[1].set_route(9, 0, 1.0)
        with pytest.raises(RouteError, match="loop"):
            trace_route(tables, 0, 9)

    def test_hop_limit(self):
        with pytest.raises(RouteError):
            trace_route(self._tables(), 0, 3, max_hops=2)
