"""repro: a reproduction of Shepard's SIGCOMM 1996 channel access scheme
for large dense packet radio networks.

The package is organised as the paper is:

* :mod:`repro.radio` — signals, spread spectrum, radios (Section 3.1);
* :mod:`repro.propagation` — placements, path loss, the H matrix
  (Sections 3.2-3.5, 4);
* :mod:`repro.clock` — free-running clocks and neighbour clock models
  (Section 7);
* :mod:`repro.sim` — the discrete-event substrate;
* :mod:`repro.core` — the reception model, noise-growth analysis,
  collision taxonomy, pseudo-random schedules, and the collision-free
  access scheme (Sections 3-7);
* :mod:`repro.routing` — minimum-energy routing and baselines
  (Section 6.2);
* :mod:`repro.mac` — the scheme and the classical MACs it displaces;
* :mod:`repro.net` — stations, the physical medium, network assembly;
* :mod:`repro.analysis` — the paper's closed-form arguments;
* :mod:`repro.experiments` — one module per figure/table reproduced.

Quickstart::

    from repro.propagation import uniform_disk
    from repro.net import build_network, NetworkConfig, PoissonTraffic
    import numpy as np

    placement = uniform_disk(100, radius=1000.0, seed=1)
    network = build_network(placement, NetworkConfig(seed=1))
    rng = np.random.default_rng(2)
    for i in range(placement.count):
        network.add_traffic(PoissonTraffic(
            origin=i, rate=0.05 / network.budget.slot_time,
            destinations=list(range(placement.count)),
            size_bits=1000.0, rng=rng))
    result = network.run(500 * network.budget.slot_time)
    assert result.collision_free
"""

__version__ = "1.0.0"

from repro.core import Schedule, ScheduleView, find_transmit_window
from repro.net import NetworkConfig, build_network

__all__ = [
    "NetworkConfig",
    "Schedule",
    "ScheduleView",
    "__version__",
    "build_network",
    "find_transmit_window",
]
