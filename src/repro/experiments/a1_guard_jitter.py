"""Ablation A1: clock-model quality and guard band versus losses.

The scheme's correctness rests on senders predicting receivers' receive
windows through clock models fitted from rendezvous exchanges
(Section 7).  Two knobs control the prediction error:

* the number of (noisy) rendezvous samples — more samples pin the
  *rate* difference, whose residual error grows linearly in time and
  which no fixed margin can absorb;
* the ``guard`` band — a fixed margin shaved off each believed window,
  absorbing the bounded *offset* error.

This ablation sweeps both under 0.05-slot rendezvous jitter.  The
measured surface shows the paper's claim is an engineering statement,
not magic: with casual synchronisation (2 exchanges, no guard) about a
third of transmissions miss their window, while 8 exchanges plus a
0.1-slot guard restore exactly zero loss — and, because mis-predicted
transmissions waste airtime, the robust corner also delivers *more*.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentReport, register
from repro.experiments.simsetup import run_loaded_network, standard_network
from repro.net.network import NetworkConfig

__all__ = ["run"]


@register("A1")
def run(
    rendezvous_counts: Sequence[int] = (2, 8),
    guard_fractions: Sequence[float] = (0.0, 0.05, 0.1),
    jitter_slot_fraction: float = 0.05,
    station_count: int = 20,
    load_packets_per_slot: float = 0.05,
    duration_slots: float = 250.0,
    seed: int = 67,
) -> ExperimentReport:
    """Sweep (rendezvous count x guard) under noisy clock exchanges."""
    report = ExperimentReport(
        experiment_id="A1",
        title="Ablation: clock-model quality and guard band vs losses",
        columns=(
            "rendezvous",
            "guard (slots)",
            "losses",
            "not_listening",
            "hop deliveries",
        ),
    )
    # Resolve the slot-relative jitter via one probe build so every run
    # shares the same absolute jitter.
    slot_time = standard_network(
        station_count, seed, NetworkConfig(seed=seed), trace=False
    ).budget.slot_time
    jitter = jitter_slot_fraction * slot_time

    losses = {}
    deliveries = {}
    for rendezvous in rendezvous_counts:
        for guard in guard_fractions:
            config = NetworkConfig(
                seed=seed,
                guard_fraction=guard,
                rendezvous_jitter=jitter,
                rendezvous_count=rendezvous,
            )
            _network, result = run_loaded_network(
                station_count,
                load_packets_per_slot,
                duration_slots,
                placement_seed=seed,
                traffic_seed=seed + 1,
                config=config,
            )
            losses[(rendezvous, guard)] = result.losses_total
            deliveries[(rendezvous, guard)] = result.hop_deliveries
            report.add_row(
                rendezvous,
                guard,
                result.losses_total,
                result.losses_by_reason.get("not_listening", 0),
                result.hop_deliveries,
            )

    worst = (min(rendezvous_counts), min(guard_fractions))
    best = (max(rendezvous_counts), max(guard_fractions))
    report.claim(
        f"losses with {worst[0]} exchanges, guard {worst[1]}",
        "> 0 (mis-predicted windows)",
        losses[worst],
    )
    report.claim(
        f"losses with {best[0]} exchanges, guard {best[1]}",
        0,
        losses[best],
    )
    report.claim(
        "robust corner also delivers more (ratio best/worst)",
        "> 1 (missed windows waste airtime)",
        deliveries[best] / max(deliveries[worst], 1),
    )
    report.notes.append(
        f"Rendezvous jitter sigma = {jitter_slot_fraction} slots.  More "
        "exchanges pin the relative clock *rate* (whose error grows over "
        "the run); the guard absorbs the remaining bounded offset error."
    )
    return report
