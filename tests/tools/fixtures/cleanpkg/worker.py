"""Task execution entry point: pure function of its arguments."""

import numpy as np

from cleanpkg.events import Ping

__all__ = ["execute_task"]


def execute_task(task_seed: int, instr) -> int:
    rng = np.random.default_rng(task_seed)
    value = int(rng.integers(10))
    instr.emit(Ping(time=0.0, station=1, payload=value))
    return value
