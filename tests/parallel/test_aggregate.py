"""Deterministic aggregation: Welford summaries and report merging."""

import pytest

from repro.parallel.aggregate import (
    MetricSummary,
    failed_results,
    reports_in_order,
    summarize,
    summarize_rows,
)
from repro.parallel.task import TaskResult


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats == MetricSummary(
            count=3, mean=2.0, stddev=1.0, minimum=1.0, maximum=3.0
        )

    def test_single_value_has_zero_stddev(self):
        stats = summarize([5.0])
        assert stats.count == 1
        assert stats.stddev == 0.0
        assert stats.minimum == stats.maximum == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestSummarizeRows:
    COLUMNS = ("mac", "deliveries", "loss")

    def test_per_position_per_numeric_column(self):
        rep0 = [("shepard", 10, 0.0), ("aloha", 8, 0.25)]
        rep1 = [("shepard", 12, 0.0), ("aloha", 6, 0.35)]
        summary = summarize_rows(self.COLUMNS, [rep0, rep1])
        # 2 row positions x 2 numeric columns.
        assert len(summary) == 4
        by_key = {(label, metric): rest for label, metric, *rest in summary}
        count, mean, _stddev, minimum, maximum = by_key[("shepard", "deliveries")]
        assert (count, mean, minimum, maximum) == (2, 11.0, 10.0, 12.0)
        assert by_key[("aloha", "loss")][1] == pytest.approx(0.3)

    def test_all_numeric_rows_use_positional_labels(self):
        summary = summarize_rows(("a", "b"), [[(1, 2)], [(3, 4)]])
        assert {entry[0] for entry in summary} == {0}

    def test_ragged_replications_align_to_shortest(self):
        rep0 = [("x", 1.0, 0.0), ("y", 2.0, 0.0)]
        rep1 = [("x", 3.0, 0.0)]
        summary = summarize_rows(self.COLUMNS, [rep0, rep1])
        assert {entry[0] for entry in summary} == {"x"}

    def test_empty_input(self):
        assert summarize_rows(self.COLUMNS, []) == []


class TestResultHelpers:
    def test_reports_in_order_preserves_errors_as_none(self):
        ok = TaskResult(
            task_id="good",
            ok=True,
            payload={
                "experiment_id": "T0",
                "title": "t",
                "columns": ["a"],
                "rows": [[1]],
                "claims": {},
                "notes": [],
            },
        )
        bad = TaskResult(task_id="bad", ok=False, error="kaput")
        reports = reports_in_order([ok, bad, ok])
        assert reports[0].experiment_id == "T0"
        assert reports[1] is None
        assert reports[2].rows == [(1,)]

    def test_failed_results(self):
        results = [
            TaskResult(task_id="a", ok=True, payload={}),
            TaskResult(task_id="b", ok=False, error="kaput"),
            TaskResult(task_id="c", ok=False, error=None),
        ]
        assert failed_results(results) == {
            "b": "kaput",
            "c": "unknown failure",
        }
