"""Horizon-culled sparse gain field: the metro-scale form of H.

Section 4 escapes the divergent-interference paradox with the radio
horizon: "only stations that are not hidden over the horizon can
contribute to the interference at a receiver".  At metro scale that
observation is also the key to a *computable* medium: a dense ``(M, M)``
gain matrix is 80 GB at 10^5 stations, but each transmitter's over-the-
horizon links are physically zero and its sub-significance links are
negligible, so per-transmitter columns of (receiver, gain) pairs — a
CSR-by-transmitter layout — hold everything the interference field
needs in O(M x neighbourhood) memory.

Two distinct mechanisms shrink a column, with different standing:

* **Horizon culling** (``horizon_m``): links longer than the mutual
  radio horizon are set to *exactly zero*.  This is model physics, not
  an approximation — the paper's Section 4 argument — so it carries no
  error accounting.
* **Significance culling** (``cull_gain``): links weaker than a gain
  threshold are dropped from the stored structure but **accounted**:
  every culled gain is summed per receiver (``culled_in_sum``) and
  maxed per transmitter (``culled_out_max``) during the build.  The
  interference the simulator then under-reports at receiver ``i`` is
  provably at most ``sum_{j active} P_j * g_ij^culled``, which both
  ``culled_in_sum[i] * max_power`` (static, per receiver) and
  ``sum_{j active} P_j * culled_out_max[j]`` (dynamic, maintained by
  the medium) bound from above.  With ``cull_gain == 0`` nothing is
  culled, both accounts are identically zero, and the sparse field is
  *bit-identical* to the dense one: exact zeros are the only dropped
  entries, and adding ``0.0`` to a non-negative float is the identity.

The chunked builder (:meth:`SparseGainField.from_placement`) streams the
pairwise geometry in ``(M, chunk)`` slabs so a million-station scene
never materialises an O(M^2) array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.propagation.geometry import Placement
from repro.propagation.models import PropagationModel

__all__ = ["SparseGainField", "DEFAULT_CHUNK_COLUMNS"]

#: Default number of transmitter columns per build slab.  At 10^5
#: stations a slab is ``(10^5, 128)`` floats (~100 MB transient), small
#: enough to stream comfortably and large enough to amortise numpy
#: dispatch.
DEFAULT_CHUNK_COLUMNS = 128


@dataclass(frozen=True)
class SparseGainField:
    """Power gains stored as per-transmitter CSR columns.

    ``column(j)`` yields the receivers that hear transmitter ``j`` and
    the gains into them — exactly the axpy vector of the medium's
    incremental interference field.  Receiver indices are strictly
    ascending within each column, which makes single-gain lookups a
    binary search and scattered field updates cache-friendly.

    Attributes:
        count: number of stations M.
        indptr: ``(M + 1,)`` int64 column boundaries into ``rows``/``vals``.
        rows: ``(nnz,)`` int32 receiver indices, sorted per column.
        vals: ``(nnz,)`` float64 power gains.
        cull_gain: significance threshold; stored entries satisfy
            ``gain >= cull_gain`` (and ``gain > 0``).
        culled_in_sum: ``(M,)`` per-receiver sum of significance-culled
            gains (the static error account).
        culled_out_max: ``(M,)`` per-transmitter maximum culled gain
            (the dynamic error account).
        horizon_m: mutual radio horizon applied at build time, if any
            (informational; horizon-zeroed links are physics, not error).
        symmetric: whether the underlying matrix is reciprocal
            (``g_ij == g_ji``); required by :meth:`neighbors`.
    """

    count: int
    indptr: np.ndarray
    rows: np.ndarray
    vals: np.ndarray
    cull_gain: float
    culled_in_sum: np.ndarray
    culled_out_max: np.ndarray
    horizon_m: Optional[float] = None
    symmetric: bool = True

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("need at least one station")
        if self.indptr.shape != (self.count + 1,):
            raise ValueError("indptr must have M + 1 entries")
        if self.rows.shape != self.vals.shape:
            raise ValueError("rows and vals must be parallel arrays")
        if int(self.indptr[-1]) != self.rows.size:
            raise ValueError("indptr must end at nnz")
        if self.cull_gain < 0.0:
            raise ValueError("cull gain must be non-negative")
        if self.culled_in_sum.shape != (self.count,):
            raise ValueError("need one culled-in sum per receiver")
        if self.culled_out_max.shape != (self.count,):
            raise ValueError("need one culled-out max per transmitter")

    # -- structure ------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Stored (receiver, transmitter) pairs."""
        return int(self.rows.size)

    @property
    def density(self) -> float:
        """Stored fraction of the off-diagonal dense matrix."""
        off_diagonal = self.count * (self.count - 1)
        if off_diagonal == 0:
            return 0.0
        return self.nnz / off_diagonal

    @property
    def memory_bytes(self) -> int:
        """Bytes held by the CSR arrays (the dense matrix needs 8 M^2)."""
        return int(
            self.indptr.nbytes
            + self.rows.nbytes
            + self.vals.nbytes
            + self.culled_in_sum.nbytes
            + self.culled_out_max.nbytes
        )

    def column_sizes(self) -> np.ndarray:
        """Stored receivers per transmitter (the interferer-set sizes)."""
        return np.diff(self.indptr)

    def column(self, transmitter: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(receivers, gains)`` views for one transmitter's column."""
        if not 0 <= transmitter < self.count:
            raise ValueError("transmitter index out of range")
        lo = int(self.indptr[transmitter])
        hi = int(self.indptr[transmitter + 1])
        return self.rows[lo:hi], self.vals[lo:hi]

    # -- gain queries ---------------------------------------------------

    def gain(self, receiver: int, transmitter: int) -> float:
        """Stored power gain from ``transmitter`` to ``receiver``.

        Culled and over-horizon links read as 0.0, exactly as the
        medium's field arithmetic treats them.
        """
        if receiver == transmitter:
            raise ValueError("self-gain is undefined; Type 3 is handled locally")
        rows, vals = self.column(transmitter)
        position = int(np.searchsorted(rows, receiver))
        if position < rows.size and int(rows[position]) == receiver:
            return float(vals[position])
        return 0.0

    def gather(self, transmitter: int, receivers: np.ndarray) -> np.ndarray:
        """Gains from ``transmitter`` into an array of receivers.

        The sparse analogue of ``gains_columns[transmitter][receivers]``;
        absent entries gather as 0.0.
        """
        rows, vals = self.column(transmitter)
        receivers = np.asarray(receivers)
        positions = np.searchsorted(rows, receivers)
        clipped = np.minimum(positions, max(rows.size - 1, 0))
        if rows.size == 0:
            return np.zeros(receivers.shape)
        found = rows[clipped] == receivers
        out = np.where(found, vals[clipped], 0.0)
        return np.asarray(out, dtype=float)

    def neighbors(self, station: int, min_gain: float) -> np.ndarray:
        """Stations with a stored link to ``station`` of at least
        ``min_gain`` — the CSR form of
        :meth:`repro.propagation.matrix.PropagationMatrix.neighbors`,
        computed from one column without densifying anything.

        Requires a reciprocal matrix (``symmetric=True``): the stations
        ``station`` hears are exactly the stations that hear it.
        """
        if min_gain <= 0.0:
            raise ValueError("minimum gain must be positive")
        if not self.symmetric:
            raise ValueError(
                "neighbor queries need a reciprocal (symmetric) gain field"
            )
        rows, vals = self.column(station)
        return rows[vals >= min_gain].astype(np.intp)

    def received_powers(self, transmit_powers: np.ndarray) -> np.ndarray:
        """Eq. 2 over the sparse structure: ``sum_j g_ij P_j`` per
        receiver, in one pass over the stored entries."""
        powers = np.asarray(transmit_powers, dtype=float)
        if powers.shape != (self.count,):
            raise ValueError(f"expected {self.count} transmit powers")
        if np.any(powers < 0.0):
            raise ValueError("transmit powers must be non-negative")
        per_entry = np.repeat(powers, np.diff(self.indptr))
        return np.bincount(
            self.rows, weights=self.vals * per_entry, minlength=self.count
        )

    def interference_bound_w(self, peak_powers: np.ndarray) -> np.ndarray:
        """Worst-case aggregate interference per receiver, *including*
        the culled mass: the stored Eq. 2 sum at peak powers plus
        ``culled_in_sum * max(peak_powers)``.

        Folding the culled account into the bound is what keeps a
        design calibrated on the sparse field sound: the true dense
        interference can exceed the simulated one by at most the culled
        term, which this bound already charges for.
        """
        peak = np.asarray(peak_powers, dtype=float)
        stored = self.received_powers(peak)
        top = float(peak.max()) if peak.size else 0.0
        return stored + self.culled_in_sum * top

    # -- construction ---------------------------------------------------

    @classmethod
    def from_dense(
        cls,
        gains: np.ndarray,
        cull_gain: float = 0.0,
        horizon_m: Optional[float] = None,
        distances: Optional[np.ndarray] = None,
    ) -> "SparseGainField":
        """Convert a dense gain matrix, culling below ``cull_gain``.

        Args:
            gains: ``(M, M)`` power-gain matrix, zero diagonal.
            cull_gain: significance threshold (0.0 keeps every nonzero
                entry — the bit-identical configuration).
            horizon_m: with ``distances`` given, zero links longer than
                this before culling (physics, not accounted error).
            distances: pairwise distances matching ``gains``.
        """
        gains = np.asarray(gains, dtype=float)
        if gains.ndim != 2 or gains.shape[0] != gains.shape[1]:
            raise ValueError("gain matrix must be square")
        if np.any(gains < 0.0):
            raise ValueError("power gains must be non-negative")
        if cull_gain < 0.0:
            raise ValueError("cull gain must be non-negative")
        if horizon_m is not None:
            if distances is None:
                raise ValueError("horizon culling needs the distance matrix")
            gains = np.where(distances > horizon_m, 0.0, gains)
        count = gains.shape[0]
        positive = gains > 0.0
        np.fill_diagonal(positive, False)
        kept = positive & (gains >= cull_gain)
        culled = positive & ~kept
        culled_gains = np.where(culled, gains, 0.0)
        culled_in_sum = culled_gains.sum(axis=1)
        culled_out_max = culled_gains.max(axis=0)
        # Column-major walk: transpose so nonzero() yields entries
        # grouped by transmitter with ascending receiver index.
        cols, receivers = np.nonzero(kept.T)
        indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(np.bincount(cols, minlength=count), out=indptr[1:])
        symmetric = bool(np.array_equal(gains, gains.T))
        return cls(
            count=count,
            indptr=indptr,
            rows=receivers.astype(np.int32),
            vals=gains.T[cols, receivers].astype(float),
            cull_gain=float(cull_gain),
            culled_in_sum=culled_in_sum,
            culled_out_max=culled_out_max,
            horizon_m=horizon_m,
            symmetric=symmetric,
        )

    @classmethod
    def from_placement(
        cls,
        placement: Placement,
        model: PropagationModel,
        cull_gain: float = 0.0,
        horizon_m: Optional[float] = None,
        chunk_columns: int = DEFAULT_CHUNK_COLUMNS,
    ) -> "SparseGainField":
        """Chunked build straight from geometry: O(M x chunk) memory.

        Streams transmitters in slabs of ``chunk_columns``: for each
        slab the distances from every receiver are formed, mapped
        through the propagation model, horizon-zeroed, and split into
        kept CSR entries plus the two culled accounts.  The stored
        entries (``rows``/``vals``) and ``culled_out_max`` are
        bit-identical for every chunk size — each entry's gain is
        computed by the same scalar arithmetic regardless of slab
        boundaries, and the out-max is column-local.  ``culled_in_sum``
        accumulates across slabs, so its grouping (and hence its last
        few ulps) follows the chunk size; it is an error *bound*
        account, not simulated state, so replay determinism is
        unaffected as long as one chunk size is used per scene build
        (the default is fixed at :data:`DEFAULT_CHUNK_COLUMNS`).
        """
        if cull_gain < 0.0:
            raise ValueError("cull gain must be non-negative")
        if chunk_columns < 1:
            raise ValueError("need at least one column per chunk")
        positions = placement.positions
        count = placement.count
        x = positions[:, 0]
        y = positions[:, 1]
        row_pieces = []
        val_pieces = []
        sizes = np.zeros(count, dtype=np.int64)
        culled_in_sum = np.zeros(count)
        culled_out_max = np.zeros(count)
        for begin in range(0, count, chunk_columns):
            end = min(begin + chunk_columns, count)
            width = end - begin
            dx = x[:, None] - x[None, begin:end]
            dy = y[:, None] - y[None, begin:end]
            distance = np.sqrt(dx * dx + dy * dy)
            gains = np.asarray(model.power_gain(distance), dtype=float)
            # Zero the self-gain diagonal (Type 3 is handled locally).
            gains[np.arange(begin, end), np.arange(width)] = 0.0
            if horizon_m is not None:
                gains[distance > horizon_m] = 0.0
            positive = gains > 0.0
            kept = positive & (gains >= cull_gain)
            culled_gains = np.where(positive & ~kept, gains, 0.0)
            culled_in_sum += culled_gains.sum(axis=1)
            culled_out_max[begin:end] = culled_gains.max(axis=0)
            cols, receivers = np.nonzero(kept.T)
            sizes[begin:end] = np.bincount(cols, minlength=width)
            row_pieces.append(receivers.astype(np.int32))
            val_pieces.append(gains.T[cols, receivers])
        indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        return cls(
            count=count,
            indptr=indptr,
            rows=(
                np.concatenate(row_pieces)
                if row_pieces
                else np.zeros(0, dtype=np.int32)
            ),
            vals=np.concatenate(val_pieces) if val_pieces else np.zeros(0),
            cull_gain=float(cull_gain),
            culled_in_sum=culled_in_sum,
            culled_out_max=culled_out_max,
            horizon_m=horizon_m,
            symmetric=True,
        )

    def to_dense(self) -> np.ndarray:
        """Dense ``(M, M)`` reconstruction (tests and small scenes only)."""
        dense = np.zeros((self.count, self.count))
        for transmitter in range(self.count):
            rows, vals = self.column(transmitter)
            dense[rows, transmitter] = vals
        return dense
