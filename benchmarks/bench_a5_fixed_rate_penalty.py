"""Bench A5: the aggregate-capacity cost of the fixed design rate."""

from repro.experiments import get_experiment


def test_bench_a5_fixed_rate_penalty(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("A5")(),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    assert report.claims["aggregate capacity left on the table (uniform)"][1] > 1.0
    assert (
        report.claims["penalty grows with density variation (clustered / uniform)"][1]
        > 1.0
    )
