"""The worker pool: spec-order results, crash capture, timeouts, retry.

Cross-process determinism is the load-bearing property: every pooled
test compares against inline execution of the same specs.
"""

import pytest

from repro.parallel.pool import run_tasks
from repro.parallel.task import TaskSpec, results_digest

WORKERS = "tests.parallel.workers"


def echo_spec(task_id, **params):
    return TaskSpec(
        task_id=task_id,
        kind="function",
        target=f"{WORKERS}:echo",
        params=params,
    )


class TestInlinePath:
    def test_empty_task_list(self):
        assert run_tasks([]) == []

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            run_tasks([echo_spec("same"), echo_spec("same")], jobs=1)

    def test_results_in_spec_order(self):
        specs = [echo_spec(f"t{i}", i=i) for i in range(5)]
        results = run_tasks(specs, jobs=1)
        assert [r.task_id for r in results] == [s.task_id for s in specs]
        assert [r.payload["i"] for r in results] == list(range(5))

    def test_progress_callback(self):
        seen = []
        run_tasks(
            [echo_spec("a"), echo_spec("b")],
            jobs=1,
            progress=lambda done, total, result: seen.append(
                (done, total, result.task_id)
            ),
        )
        assert seen == [(1, 2, "a"), (2, 2, "b")]


class TestPooledPath:
    def test_pooled_matches_inline_bit_for_bit(self):
        specs = [echo_spec(f"t{i}", i=i, x=i * 0.5) for i in range(6)]
        inline = run_tasks(specs, jobs=1)
        pooled = run_tasks(specs, jobs=3)
        assert [r.task_id for r in pooled] == [r.task_id for r in inline]
        assert [r.payload for r in pooled] == [r.payload for r in inline]
        assert results_digest(pooled) == results_digest(inline)

    def test_crash_yields_structured_error_not_a_hang(self):
        specs = [
            echo_spec("before", v=1),
            TaskSpec(
                task_id="crasher",
                kind="function",
                target=f"{WORKERS}:crash",
                retries=1,
            ),
            echo_spec("after", v=2),
        ]
        results = run_tasks(specs, jobs=2)
        assert [r.task_id for r in results] == ["before", "crasher", "after"]
        crashed = results[1]
        assert not crashed.ok
        assert "died" in crashed.error
        # retries=1 means two total attempts before giving up.
        assert crashed.attempts == 2
        assert results[0].ok and results[2].ok

    def test_timeout_yields_structured_error(self):
        specs = [
            TaskSpec(
                task_id="sleeper",
                kind="function",
                target=f"{WORKERS}:sleep_forever",
                timeout_s=0.75,
                retries=0,
            ),
            echo_spec("quick", v=3),
        ]
        results = run_tasks(specs, jobs=2)
        slept = results[0]
        assert not slept.ok
        assert "timed out" in slept.error
        assert slept.attempts == 1
        assert results[1].ok

    def test_deterministic_exception_is_not_retried(self):
        spec = TaskSpec(
            task_id="boom",
            kind="function",
            target=f"{WORKERS}:explode",
            retries=3,
        )
        (result,) = run_tasks([spec, echo_spec("pad")], jobs=2)[:1]
        assert not result.ok
        assert "ValueError: boom" in result.error
        # Captured by execute_task inside the worker: one attempt only.
        assert result.attempts == 1
