"""``python -m repro`` — the experiment runner CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
