"""Tests for the capacity arithmetic and its paper spot values."""

import math

import pytest

from repro.analysis.capacity import (
    bits_per_sec_per_khz,
    linearization_error,
    low_snr_linearization,
    rate_gain_from_duty_change,
    spectral_efficiency,
)


class TestSpotValues:
    def test_snr_one_percent_gives_14_bits_per_khz(self):
        # The paper's "C/W = 0.014" at SNR = 0.01.
        assert bits_per_sec_per_khz(0.01) == pytest.approx(14.36, abs=0.01)

    def test_snr_four_percent_gives_56_bits_per_khz(self):
        # "around 56 bits per second per kilohertz" at eta = 0.25.
        assert bits_per_sec_per_khz(0.04) == pytest.approx(56.6, abs=0.1)

    def test_nonzero_capacity_at_any_positive_snr(self):
        # "even with a signal-to-noise ratio of one part in one hundred,
        # the theoretical communication capacity remains non-zero".
        assert spectral_efficiency(1e-6) > 0.0


class TestLinearization:
    def test_footnote_4_coefficient(self):
        # log2(1+x) ~= x / ln 2 ~= 1.44 x at small x.
        assert low_snr_linearization(0.01) == pytest.approx(0.01443, abs=1e-4)

    def test_error_small_at_low_snr(self):
        assert linearization_error(0.01) < 0.01

    def test_error_grows_with_snr(self):
        assert linearization_error(1.0) > linearization_error(0.1) > linearization_error(0.01)


class TestDutyCycleInvariance:
    def test_halving_duty_is_nearly_free(self):
        # Section 4: "Halving the duty cycle ... would result in no net
        # gain in performance."
        ratio = rate_gain_from_duty_change(1e9, duty_from=1.0, duty_to=0.5)
        assert ratio == pytest.approx(1.0, abs=0.03)

    def test_small_systems_do_benefit(self):
        # The invariance is a low-SNR property; at small M the SNR is
        # high and lowering the duty cycle genuinely costs throughput.
        ratio = rate_gain_from_duty_change(30.0, duty_from=1.0, duty_to=0.5)
        assert ratio < 0.95
