"""Tests for the Section 4 noise-growth analysis."""

import math

import numpy as np
import pytest

from repro.core.noise import (
    interference_integral,
    sample_snr,
    snr_curve,
    snr_nearest_neighbor,
    snr_nearest_neighbor_db,
)


class TestClosedForm:
    def test_paper_spot_value_minus_12db_at_1e8(self):
        # Section 4: "even with eta = 1, it does not reach -12 db until
        # 10^8 stations".
        assert snr_nearest_neighbor_db(1e8, 1.0) == pytest.approx(-12.65, abs=0.05)

    def test_duty_cycle_quarter_gains_6db(self):
        # "At an average duty cycle of one quarter ... the signal-to-
        # noise ratio is better by a factor of four, or +6 db."
        gain = snr_nearest_neighbor_db(1e6, 0.25) - snr_nearest_neighbor_db(1e6, 1.0)
        assert gain == pytest.approx(6.02, abs=0.01)

    def test_logarithmic_decline(self):
        # Squaring the station count doubles ln M, halving the SNR.
        assert snr_nearest_neighbor(1e6, 1.0) / snr_nearest_neighbor(
            1e12, 1.0
        ) == pytest.approx(2.0)

    def test_independent_of_scale_length(self):
        # Eq. 15 has no rho: only M and eta appear.
        assert snr_nearest_neighbor(1e6, 0.5) == 1.0 / (0.5 * math.log(1e6))

    def test_rejects_tiny_system(self):
        with pytest.raises(ValueError):
            snr_nearest_neighbor(2.0, 1.0)

    def test_rejects_bad_duty(self):
        with pytest.raises(ValueError):
            snr_nearest_neighbor(1e6, 0.0)


class TestInterferenceIntegral:
    def test_matches_closed_form(self):
        # N = 2 pi eta rho ln(R/R0).
        value = interference_integral(100.0, 1.0, density=2.0, duty_cycle=0.5)
        assert value == pytest.approx(2 * math.pi * 0.5 * 2.0 * math.log(100.0))

    def test_diverges_logarithmically(self):
        # Doubling the outer radius adds a constant (the paper's
        # "integral just barely diverges").
        a = interference_integral(100.0, 1.0, 1.0, 1.0)
        b = interference_integral(200.0, 1.0, 1.0, 1.0)
        c = interference_integral(400.0, 1.0, 1.0, 1.0)
        assert b - a == pytest.approx(c - b)

    def test_rejects_bad_radii(self):
        with pytest.raises(ValueError):
            interference_integral(1.0, 2.0, 1.0, 1.0)


class TestCurve:
    def test_family_shape(self):
        curves = snr_curve([6.0, 9.0, 12.0], [0.1, 1.0])
        assert set(curves) == {0.1, 1.0}
        assert len(curves[0.1]) == 3
        # Lower duty cycle -> higher SNR at every scale.
        assert all(a > b for a, b in zip(curves[0.1], curves[1.0]))
        # SNR declines with scale.
        assert curves[1.0][0] > curves[1.0][2]


class TestMonteCarlo:
    def test_matches_analytic_within_a_db(self):
        trials = [sample_snr(3000, 0.5, seed=k).snr for k in range(25)]
        measured_db = 10.0 * math.log10(float(np.mean(trials)))
        analytic_db = snr_nearest_neighbor_db(3000, 0.5)
        assert measured_db == pytest.approx(analytic_db, abs=1.0)

    def test_duty_cycle_scales_interference(self):
        full = sample_snr(1000, 1.0, seed=7)
        half = sample_snr(1000, 0.5, seed=7)
        assert half.snr / full.snr == pytest.approx(2.0)

    def test_exclusion_zone_raises_snr(self):
        with_zone = sample_snr(1000, 1.0, seed=9)
        without = sample_snr(
            1000, 1.0, seed=9, exclude_within_characteristic=False
        )
        assert with_zone.snr >= without.snr

    def test_interferer_count_reported(self):
        sample = sample_snr(500, 1.0, seed=11)
        assert 0 < sample.active_interferers < 500

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            sample_snr(1, 1.0)
