"""Ablation A6: spatial reuse — the scheme vs textbook TDMA (Section 2).

"An important idea in multihop packet radio networks is that the
channel can be spatially reused."  Section 2's textbook alternative —
globally synchronised, centrally coloured TDMA — also reuses space (two
stations far apart share a slot), but rations airtime at 1/C per
station regardless of demand.  The pseudo-random schedules instead let
any station transmit in up to (1-p) of time, with demand finding idle
air.

Measured here under saturation: mean concurrent transmissions (the
spatial-reuse factor), per-station airtime share, and delivered hop
throughput, for the paper's scheme, the TDMA baseline (granted free
global synchronisation and central control), and ALOHA.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentReport, register
from repro.experiments.simsetup import add_uniform_poisson, standard_network
from repro.mac.aloha import AlohaMac
from repro.mac.tdma import TdmaMac, build_tdma_plan
from repro.net.network import (
    LinkBudget,
    MacFactory,
    Network,
    NetworkConfig,
    NetworkResult,
)
from repro.sim.streams import RandomStreams

__all__ = ["run"]


def _mean_concurrency(network, duration: float) -> float:
    """Average number of simultaneous transmissions over the run."""
    airtime_total = sum(
        station.transmitter.time_transmitting for station in network.stations
    )
    return airtime_total / duration


@register("A6")
def run(
    station_count: int = 40,
    load_packets_per_slot: float = 0.3,
    duration_slots: float = 400.0,
    seed: int = 131,
) -> ExperimentReport:
    """Compare spatial reuse under saturating load."""
    report = ExperimentReport(
        experiment_id="A6",
        title="Spatial reuse: pseudo-random schedules vs textbook TDMA",
        columns=(
            "mac",
            "mean concurrency",
            "frame/airtime share",
            "hop deliveries",
            "losses",
        ),
    )
    concurrency = {}
    deliveries = {}

    def build_and_run(
        name: str, factory: "MacFactory | None", share_note: str
    ) -> "tuple[Network, NetworkResult]":
        config = NetworkConfig(seed=seed)
        network = standard_network(station_count, seed, config, mac_factory=factory)
        add_uniform_poisson(network, load_packets_per_slot, seed + 1)
        result = network.run(duration_slots * network.budget.slot_time)
        reuse = _mean_concurrency(network, result.duration)
        concurrency[name] = reuse
        deliveries[name] = result.hop_deliveries
        report.add_row(name, reuse, share_note, result.hop_deliveries, result.losses_total)
        return network, result

    # The paper's scheme.
    build_and_run("shepard", None, "<= 1-p = 0.7 per station")

    # Textbook TDMA, granted global sync and a central colouring.
    probe = standard_network(station_count, seed, NetworkConfig(seed=seed), trace=False)
    usable = probe.matrix.usable_links(probe.budget.min_gain)
    plan = build_tdma_plan(usable, probe.budget.packet_airtime)

    def tdma_factory(_index: int, _budget: "LinkBudget") -> TdmaMac:
        return TdmaMac(plan)

    build_and_run(
        "tdma", tdma_factory, f"1/{plan.frame_slots} per station"
    )

    streams = RandomStreams(seed + 2)
    build_and_run(
        "aloha",
        lambda i, b: AlohaMac(streams.stream(f"a{i}")),
        "uncontrolled",
    )

    report.claim(
        "both structured schemes exceed single-channel use (concurrency > 1)",
        "> 1",
        (concurrency["shepard"], concurrency["tdma"]),
    )
    report.claim(
        "scheme outdelivers TDMA at equal physics (ratio)",
        "> 1 (demand finds idle air; TDMA rations 1/C)",
        deliveries["shepard"] / max(deliveries["tdma"], 1),
    )
    report.claim(
        f"TDMA frame needed {plan.frame_slots} colours",
        "~ max hearing degree + 1",
        plan.frame_slots,
    )
    report.notes.append(
        "TDMA is granted perfect global synchronisation and a centrally "
        "computed conflict-free colouring — the two things Section 2 says "
        "are hard at scale; the scheme needs neither."
    )
    return report
