"""Minimum-energy routing (Section 6.2).

"A routing criterion that is directly determinable from the propagation
matrix and that seems to meet our needs is minimum-energy routing. ...
The common algorithms for computing min-cost paths in networks can be
used to find the least-cost paths in the propagation matrix H, where
the costs are the reciprocal of the path gains.  (The reciprocal of the
path gain is proportional to the power that would be used with power
control.)"

Under power control, a hop over a link with power gain ``g`` radiates
``P_target / g`` for the (fixed) packet airtime, so the energy a packet
injects into the ether — the interference it costs every distant
receiver — is proportional to ``sum(1/g)`` along its route.

The geometric consequence (Figure 3): with ``1/r^2`` loss, a relay B is
taken between A and C exactly when ``|AB|^2 + |BC|^2 < |AC|^2``, i.e.
when B lies strictly inside the circle whose diameter is the segment
AC.  :func:`relay_helps` states that criterion directly for the tests.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.propagation.matrix import PropagationMatrix
from repro.routing.table import RoutingTable

__all__ = [
    "energy_costs",
    "dijkstra",
    "build_tables",
    "min_energy_tables",
    "relay_helps",
    "route_energy",
]


def energy_costs(
    matrix: PropagationMatrix, min_gain: float = 0.0
) -> np.ndarray:
    """Link-cost matrix: reciprocal path gain; +inf for unusable links.

    Args:
        matrix: the (possibly observed/censored) propagation matrix.
        min_gain: links with gain below this are unusable (the sender
            would exceed its power limit trying to reach them).
    """
    if min_gain < 0.0:
        raise ValueError("minimum gain must be non-negative")
    gains = matrix.gains
    costs = np.full_like(gains, math.inf)
    usable = gains > max(min_gain, 0.0)
    np.fill_diagonal(usable, False)
    costs[usable] = 1.0 / gains[usable]
    return costs


def dijkstra(costs: np.ndarray, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths on a dense cost matrix.

    Returns ``(distance, predecessor)`` arrays; unreachable stations get
    infinite distance and predecessor -1.  Deterministic tie-breaking by
    station index keeps routing tables stable across runs.
    """
    costs = np.asarray(costs, dtype=float)
    count = costs.shape[0]
    if costs.ndim != 2 or costs.shape[1] != count:
        raise ValueError("cost matrix must be square")
    if not 0 <= source < count:
        raise ValueError("source index out of range")
    distance = np.full(count, math.inf)
    predecessor = np.full(count, -1, dtype=int)
    distance[source] = 0.0
    visited = np.zeros(count, dtype=bool)
    frontier: list = [(0.0, source)]
    while frontier:
        dist_u, u = heapq.heappop(frontier)
        if visited[u]:
            continue
        visited[u] = True
        row = costs[u]
        for v in range(count):
            if visited[v]:
                continue
            weight = row[v]
            if not math.isfinite(weight):
                continue
            candidate = dist_u + weight
            if candidate < distance[v] - 1e-15:
                distance[v] = candidate
                predecessor[v] = u
                heapq.heappush(frontier, (candidate, v))
    return distance, predecessor


def build_tables(costs: np.ndarray) -> Dict[int, RoutingTable]:
    """All-pairs routing tables from a link-cost matrix.

    Uses SciPy's compiled shortest-path kernel (the centralised
    equivalent of the distributed computation in
    :mod:`repro.routing.bellman_ford`; a test pins it against the
    pure-Python :func:`dijkstra`).  Next hops are extracted per source
    by vectorised pointer doubling over the predecessor array: a
    destination whose predecessor is the source is its own first hop;
    every other destination inherits its predecessor's, and unresolved
    pointers jump an ancestor per round, so the extraction finishes in
    O(log path length) numpy passes instead of a Python loop.
    """
    from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra

    costs = np.asarray(costs, dtype=float)
    count = costs.shape[0]
    graph = np.where(np.isfinite(costs), costs, 0.0)
    distances, predecessors = csgraph_dijkstra(
        graph, directed=True, return_predecessors=True
    )
    indices = np.arange(count)
    tables: Dict[int, RoutingTable] = {}
    for source in range(count):
        distance = distances[source]
        predecessor = predecessors[source]
        reachable = np.isfinite(distance)
        reachable[source] = False
        hop = np.where(reachable & (predecessor == source), indices, -1)
        parent = predecessor.astype(np.int64)
        while True:
            todo = reachable & (hop < 0)
            if not todo.any():
                break
            ancestors = parent[todo]
            ancestor_hops = hop[ancestors]
            resolved = ancestor_hops >= 0
            hop[todo] = np.where(resolved, ancestor_hops, -1)
            parent[todo] = np.where(resolved, ancestors, parent[ancestors])
        # Install routes in increasing-distance order (matching the
        # sequential extraction this replaces, dict order included).
        order = np.argsort(distance)
        ordered = order[reachable[order]]
        destinations = ordered.tolist()
        table = RoutingTable(source)
        table.next_hops = dict(zip(destinations, hop[ordered].tolist()))
        table.costs = dict(zip(destinations, distance[ordered].tolist()))
        tables[source] = table
    return tables


def min_energy_tables(
    matrix: PropagationMatrix, min_gain: float = 0.0
) -> Dict[int, RoutingTable]:
    """Minimum-energy routing tables straight from the H matrix."""
    return build_tables(energy_costs(matrix, min_gain))


def relay_helps(
    a: Sequence[float], b: Sequence[float], c: Sequence[float]
) -> bool:
    """Whether relaying A->B->C costs less energy than A->C directly.

    With free-space ``1/r^2`` loss the comparison is
    ``|AB|^2 + |BC|^2 < |AC|^2``; geometrically B must lie strictly
    inside the circle with diameter AC (Figure 3's construction).  A
    perfectly centred relay halves the energy: two hops of a quarter
    the power each.
    """
    ax, ay = float(a[0]), float(a[1])
    bx, by = float(b[0]), float(b[1])
    cx, cy = float(c[0]), float(c[1])
    ab_sq = (bx - ax) ** 2 + (by - ay) ** 2
    bc_sq = (cx - bx) ** 2 + (cy - by) ** 2
    ac_sq = (cx - ax) ** 2 + (cy - ay) ** 2
    return ab_sq + bc_sq < ac_sq


def route_energy(
    matrix: PropagationMatrix, path: Sequence[int]
) -> float:
    """Total reciprocal-gain cost of a concrete path."""
    if len(path) < 2:
        raise ValueError("a path needs at least two stations")
    total = 0.0
    for sender, receiver in zip(path, path[1:]):
        gain = matrix.gain(receiver, sender)
        if gain <= 0.0:
            raise ValueError(f"link {sender}->{receiver} is unusable")
        total += 1.0 / gain
    return total
