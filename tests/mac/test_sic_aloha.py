"""Tests for SIC-ALOHA and the medium's receiver-model hook."""

import pytest

from repro.experiments.simsetup import add_uniform_poisson, standard_network
from repro.net.network import NetworkConfig
from repro.obs import Instrumentation, MetricTimelines
from repro.radio.receiver_model import DefaultReceiver, SicReceiver
from repro.sim.sanitizer import sanitized


def sic_run(seed=31, count=12, load=0.25, duration_slots=80.0, **config_kw):
    timelines = MetricTimelines(station_count=count)
    with sanitized(True):
        network = standard_network(
            count,
            seed,
            NetworkConfig(seed=seed, **config_kw),
            mac="sic_aloha",
            trace=False,
            instrumentation=Instrumentation((timelines,)),
        )
        add_uniform_poisson(network, load, seed + 1)
        network.run(duration_slots * network.budget.slot_time)
        digest = network.env.replay_digest()
    return network, timelines, digest


class TestWiring:
    def test_registry_installs_sic_model_on_banks(self):
        network, _timelines, _digest = sic_run(duration_slots=5.0)
        for station in network.stations:
            assert isinstance(station.bank.model, SicReceiver)

    def test_config_receiver_model_overrides_descriptor(self):
        network, _t, _d = sic_run(duration_slots=5.0, receiver_model="default")
        for station in network.stations:
            assert isinstance(station.bank.model, DefaultReceiver)

    def test_default_macs_get_no_model(self):
        network = standard_network(8, 3, NetworkConfig(seed=3), mac="aloha")
        for station in network.stations:
            assert station.bank.model is None

    def test_unknown_receiver_model_rejected(self):
        with pytest.raises(ValueError, match="unknown receiver model"):
            NetworkConfig(receiver_model="quantum")


class TestBehaviour:
    def test_cancellations_happen_under_contention(self):
        _network, timelines, _digest = sic_run()
        assert timelines.sic_receptions > 0
        assert timelines.sic_cancellations >= timelines.sic_receptions

    def test_sic_models_track_only_live_attempts(self):
        # Every cancelled-model entry must be popped by the end/fail/
        # abort lifecycle: a leak would cancel against stale attempts.
        # Transmissions still in flight when the run stops legitimately
        # keep their entry, so the invariant is subset-of-attempts.
        network, _timelines, _digest = sic_run()
        assert set(network.medium._sic_models) <= set(
            network.medium._attempts
        )

    def test_sic_recovers_deliveries_vs_plain_slotted_aloha(self):
        seed, count, load, duration = 31, 12, 0.25, 80.0
        _n, sic_timelines, _d = sic_run(seed, count, load, duration)
        plain = MetricTimelines(station_count=count)
        with sanitized(True):
            network = standard_network(
                count,
                seed,
                NetworkConfig(seed=seed),
                mac="slotted_aloha",
                trace=False,
                instrumentation=Instrumentation((plain,)),
            )
            add_uniform_poisson(network, load, seed + 1)
            network.run(duration * network.budget.slot_time)
        assert sic_timelines.hop_deliveries >= plain.hop_deliveries


class TestDeterminism:
    def test_replay_digest_bit_identical(self):
        _n1, t1, d1 = sic_run()
        _n2, t2, d2 = sic_run()
        assert d1 == d2
        assert t1.sic_cancellations == t2.sic_cancellations
        assert t1.hop_deliveries == t2.hop_deliveries

    def test_t7_rows_identical_jobs_1_vs_2(self):
        from repro.experiments.t7_baselines import run

        kwargs = dict(
            loads_packets_per_slot=(0.05, 0.1),
            station_count=12,
            duration_slots=80.0,
            macs=("sic_aloha",),
        )
        assert run(jobs=1, **kwargs).rows == run(jobs=2, **kwargs).rows
