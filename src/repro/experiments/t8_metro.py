"""Experiment T8: the metro-scale projection (abstract claim).

"... a self-organizing packet radio network may scale to millions of
stations within a metro area with raw per-station rates in the hundreds
of megabits per second."  This experiment tabulates the projection for
a range of scales and assumptions, from the abstract's optimistic case
to the conservative Section 6 design point, and checks the supporting
spot values (4 b/s/kHz at SNR 0.01 per the Shannon formula, negligible
thermal noise).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.capacity import bits_per_sec_per_khz
from repro.analysis.metro import MetroProjection
from repro.experiments.runner import ExperimentReport, register

__all__ = ["run"]


@register("T8")
def run(
    station_counts: Sequence[float] = (1e6, 1e7, 1e9),
    bandwidth_hz: float = 1e9,
) -> ExperimentReport:
    """Tabulate metro projections across scales and assumptions."""
    report = ExperimentReport(
        experiment_id="T8",
        title="Metro-scale projection: millions of stations, 100s of Mb/s",
        columns=(
            "stations",
            "case",
            "SNR dB",
            "PG dB",
            "raw Mb/s",
            "sustained Mb/s",
            "aggregate Gb/s",
        ),
    )
    optimistic_raw = None
    for count in station_counts:
        for label, beta, doublings in (
            ("optimistic (abstract)", 1.0, 0.0),
            ("conservative (Sec. 6)", 3.0, 1.0),
        ):
            projection = MetroProjection(
                station_count=count,
                bandwidth_hz=bandwidth_hz,
                beta=beta,
                reach_doublings=doublings,
            )
            summary = projection.summary()
            report.add_row(
                f"{count:.0e}",
                label,
                summary["snr_db"],
                summary["processing_gain_db"],
                summary["raw_rate_mbps"],
                summary["sustained_rate_mbps"],
                summary["aggregate_rate_gbps"],
            )
            if count == 1e6 and label.startswith("optimistic"):
                optimistic_raw = summary["raw_rate_mbps"]

    if optimistic_raw is not None:
        report.claim(
            "raw per-station rate at 10^6 stations, 1 GHz",
            "hundreds of Mb/s",
            f"{optimistic_raw:.0f} Mb/s",
        )
    report.claim(
        "capacity at SNR 0.01 (b/s per kHz)",
        "~14 (the paper's C/W = 0.014 example)",
        bits_per_sec_per_khz(0.01),
    )
    million = MetroProjection(station_count=1e6, bandwidth_hz=bandwidth_hz)
    report.claim(
        "interference dominates thermal noise (dB)",
        ">> 0",
        million.thermal_noise_check(),
    )
    report.notes.append(
        "The optimistic case is the abstract's: Shannon-bound detection "
        "(beta = 1) at the characteristic hop.  The conservative case adds "
        "the 5 dB detection margin and the 6 dB reach doubling of Section 6."
    )
    return report
