"""Signal power arithmetic and decibel helpers.

The paper (Section 3.1) models a signal by two scalar parameters that
matter for system performance: its average *power* and its *bandwidth*.
Everything else about modulation and detection is folded into the
Shannon-bound reception criterion (see :mod:`repro.core.reception`).

Powers in this package are linear watts unless a name says otherwise
(``_db``, ``_dbm``).  Interfering signals are assumed uncorrelated and
zero-mean, so their powers add (Section 3.4) — :func:`combine_powers`
implements exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "add_powers_db",
    "combine_powers",
    "power_rise_db",
    "Signal",
]


def db_to_linear(value_db: float) -> float:
    """Convert a decibel ratio to a linear power ratio."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises :class:`ValueError` for non-positive ratios, which have no
    decibel representation.
    """
    if value <= 0.0:
        raise ValueError(f"cannot express non-positive ratio {value!r} in dB")
    return 10.0 * math.log10(value)


def dbm_to_watts(value_dbm: float) -> float:
    """Convert a power in dBm (dB relative to 1 mW) to watts."""
    return db_to_linear(value_dbm) * 1e-3


def watts_to_dbm(value_w: float) -> float:
    """Convert a power in watts to dBm."""
    if value_w <= 0.0:
        raise ValueError(f"cannot express non-positive power {value_w!r} in dBm")
    return linear_to_db(value_w / 1e-3)


def combine_powers(powers_w: Iterable[float]) -> float:
    """Total power of a sum of mutually uncorrelated zero-mean signals.

    Per Section 3.4 of the paper, "the power in this signal is the same
    as the sum of the powers of each of the interfering signals".
    """
    total = 0.0
    for power in powers_w:
        if power < 0.0:
            raise ValueError(f"signal power must be non-negative, got {power!r}")
        total += power
    return total


def add_powers_db(*powers_db: float) -> float:
    """Add signal powers expressed in dB (power-domain addition).

    This is the operation behind the paper's Section 7.3 example: adding
    a 10 dB signal to a 20 dB signal yields a 20.4 dB signal, a "barely
    significant" change.
    """
    if not powers_db:
        raise ValueError("at least one power is required")
    return linear_to_db(combine_powers(db_to_linear(p) for p in powers_db))


def power_rise_db(base_w: float, addition_w: float) -> float:
    """Rise in total power level, in dB, when ``addition_w`` joins ``base_w``.

    Section 7.3 uses a one-decibel rise as the threshold of significance
    for an added interferer: a rise of 1 dB requires the addition to be
    at least about one fourth of the existing power.
    """
    if base_w <= 0.0:
        raise ValueError("base power must be positive")
    if addition_w < 0.0:
        raise ValueError("added power must be non-negative")
    return linear_to_db((base_w + addition_w) / base_w)


@dataclass(frozen=True)
class Signal:
    """A transmitted or received signal, reduced to the parameters that
    determine system performance (Section 3.1): power and bandwidth.

    Attributes:
        power_w: average signal power in watts.
        bandwidth_hz: occupied (spread) bandwidth in hertz.
    """

    power_w: float
    bandwidth_hz: float

    def __post_init__(self) -> None:
        if self.power_w < 0.0:
            raise ValueError("signal power must be non-negative")
        if self.bandwidth_hz <= 0.0:
            raise ValueError("signal bandwidth must be positive")

    @property
    def power_dbm(self) -> float:
        """Signal power in dBm."""
        return watts_to_dbm(self.power_w)

    def attenuated(self, power_gain: float) -> "Signal":
        """The same signal after propagation with the given power gain."""
        if power_gain < 0.0:
            raise ValueError("power gain must be non-negative")
        return Signal(self.power_w * power_gain, self.bandwidth_hz)

    def scaled_db(self, gain_db: float) -> "Signal":
        """The same signal scaled by a gain expressed in dB."""
        return self.attenuated(db_to_linear(gain_db))
