"""Relating one station's clock to another's (Section 7).

"This ability can be accomplished if stations occasionally rendezvous
and exchange clock readings.  Differences between clocks and small
differences in clock rates can be mutually modeled, and the resulting
models ... can be used by neighbors to predict when a station will be
transmitting."

A :class:`NeighborClockModel` is an affine fit
``neighbor_reading ~= intercept + slope * own_reading`` built from
rendezvous samples, possibly noisy.  With two or more samples the slope
captures the relative rate; with one sample the model assumes equal
rates (slope 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.clock.clock import Clock

__all__ = ["ClockSample", "NeighborClockModel", "exchange_readings", "exact_model"]


@dataclass(frozen=True)
class ClockSample:
    """One rendezvous observation: simultaneous readings of both clocks.

    Attributes:
        own_reading: the observer's clock at the exchange instant.
        neighbor_reading: the neighbour's clock at the same instant
            (possibly corrupted by measurement jitter).
    """

    own_reading: float
    neighbor_reading: float


class NeighborClockModel:
    """Affine model of a neighbour's clock in terms of one's own.

    The model refits lazily on each prediction after new samples; with
    many samples it performs a least-squares line fit, which averages
    out exchange jitter exactly as the paper's reference to oscillator
    modelling ([25]) envisions.
    """

    def __init__(self, max_samples: int = 64) -> None:
        if max_samples < 1:
            raise ValueError("must retain at least one sample")
        self._max_samples = max_samples
        self._samples: List[ClockSample] = []
        self._fit: Optional[Tuple[float, float]] = None  # (intercept, slope)

    @property
    def sample_count(self) -> int:
        """Number of retained rendezvous samples."""
        return len(self._samples)

    def add_sample(self, sample: ClockSample) -> None:
        """Fold in a rendezvous observation (oldest dropped when full)."""
        self._samples.append(sample)
        if len(self._samples) > self._max_samples:
            self._samples.pop(0)
        self._fit = None

    def reset(self) -> None:
        """Discard every sample and the fit.

        Used after a clock fault: samples taken of the pre-fault clock
        describe an affine relation that no longer holds, so the next
        rendezvous must start the fit from scratch rather than average
        stale history in.
        """
        self._samples.clear()
        self._fit = None

    def _fitted(self) -> Tuple[float, float]:
        if self._fit is not None:
            return self._fit
        if not self._samples:
            raise RuntimeError("no rendezvous samples yet")
        if len(self._samples) == 1:
            sample = self._samples[0]
            self._fit = (sample.neighbor_reading - sample.own_reading, 1.0)
            return self._fit
        own = np.array([s.own_reading for s in self._samples])
        neighbor = np.array([s.neighbor_reading for s in self._samples])
        if np.ptp(own) == 0.0:
            # Degenerate: repeated exchanges at one instant.
            self._fit = (float(neighbor.mean() - own.mean()), 1.0)
            return self._fit
        # Centre the data before fitting: own readings can be ~1e6
        # while the slope differs from 1 by ~1e-5, and an uncentred
        # normal-equation fit loses that signal to rounding.
        own_center = own.mean()
        neighbor_center = neighbor.mean()
        slope = float(
            np.dot(own - own_center, neighbor - neighbor_center)
            / np.dot(own - own_center, own - own_center)
        )
        intercept = float(neighbor_center - slope * own_center)
        self._fit = (intercept, slope)
        return self._fit

    def predict_neighbor_reading(self, own_reading: float) -> float:
        """Predicted neighbour clock reading when ours shows ``own_reading``."""
        intercept, slope = self._fitted()
        return intercept + slope * own_reading

    def own_reading_for(self, neighbor_reading: float) -> float:
        """Our reading when the neighbour's clock shows ``neighbor_reading``."""
        intercept, slope = self._fitted()
        if slope <= 0.0:
            raise RuntimeError("fitted model is not invertible (slope <= 0)")
        return (neighbor_reading - intercept) / slope

    @property
    def relative_rate(self) -> float:
        """Fitted neighbour-seconds per own-second."""
        return self._fitted()[1]

    @property
    def reading_offset(self) -> float:
        """Fitted intercept of the neighbour's clock."""
        return self._fitted()[0]


def exchange_readings(
    own: Clock,
    neighbor: Clock,
    true_time: float,
    jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> ClockSample:
    """Simulate one rendezvous: both clocks read at the same instant.

    Args:
        own: the observer's clock.
        neighbor: the neighbour's clock.
        true_time: the instant of the exchange.
        jitter: standard deviation of Gaussian measurement error applied
            to the neighbour's reading (propagation delay, turnaround
            asymmetry).  Requires ``rng`` when nonzero.
    """
    neighbor_reading = neighbor.reading(true_time)
    if jitter > 0.0:
        if rng is None:
            raise ValueError("jitter requires an rng")
        neighbor_reading += float(rng.normal(0.0, jitter))
    elif jitter < 0.0:
        raise ValueError("jitter must be non-negative")
    return ClockSample(own.reading(true_time), neighbor_reading)


def exact_model(own: Clock, neighbor: Clock) -> NeighborClockModel:
    """The ideal model an omniscient observer would hold.

    Used by tests and by simulations that isolate scheduling behaviour
    from clock-model estimation error.
    """
    model = NeighborClockModel()
    # Two exact samples determine the affine relation completely.
    for true_time in (0.0, 1.0):
        model.add_sample(exchange_readings(own, neighbor, true_time))
    return model
