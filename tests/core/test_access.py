"""Tests for the collision-free channel access computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock.clock import Clock
from repro.clock.sync import exact_model
from repro.core.access import (
    NoTransmitWindowError,
    ScheduleView,
    expected_wait_slots,
    find_transmit_window,
    overlap_fraction,
)
from repro.core.schedule import Schedule


SCHEDULE = Schedule(slot_time=1.0, receive_fraction=0.3, key=99)


def own_view(offset, rate_error=0.0):
    return ScheduleView.own(SCHEDULE, Clock(offset=offset, rate_error=rate_error))


def neighbor_view(own_clock, neighbor_clock):
    return ScheduleView.of_neighbor(
        SCHEDULE, own_clock, exact_model(own_clock, neighbor_clock)
    )


class TestScheduleView:
    def test_own_view_matches_schedule(self):
        clock = Clock(offset=123.0)
        view = ScheduleView.own(SCHEDULE, clock)
        for t in (0.0, 1.7, 55.3):
            assert view.is_receiving_at(t) == SCHEDULE.is_receiving_at(
                clock.reading(t)
            )

    def test_neighbor_view_with_exact_model_matches_truth(self):
        own_clock = Clock(offset=5.0, rate_error=1e-5)
        neighbor_clock = Clock(offset=321.0, rate_error=-1e-5)
        believed = neighbor_view(own_clock, neighbor_clock)
        truth = ScheduleView.own(SCHEDULE, neighbor_clock)
        for t in (0.0, 10.1, 77.7):
            assert believed.is_receiving_at(t) == truth.is_receiving_at(t)

    def test_windows_are_ordered(self):
        view = own_view(42.7)
        previous_end = None
        gen = view.transmit_windows(0.0)
        for _ in range(30):
            lo, hi = next(gen)
            assert lo < hi
            if previous_end is not None:
                assert lo >= previous_end
            previous_end = hi


class TestFindTransmitWindow:
    def test_window_is_valid_for_both_parties(self):
        sender_clock = Clock(offset=11.3)
        receiver_clock = Clock(offset=871.9)
        sender = ScheduleView.own(SCHEDULE, sender_clock)
        receiver_believed = neighbor_view(sender_clock, receiver_clock)
        receiver_truth = ScheduleView.own(SCHEDULE, receiver_clock)
        start, end = find_transmit_window(
            sender, receiver_believed, duration=0.25, earliest=3.0
        )
        assert end - start == pytest.approx(0.25)
        assert start >= 3.0
        for t in (start, (start + end) / 2, end - 1e-9):
            assert not sender.is_receiving_at(t)
            assert receiver_truth.is_receiving_at(t)

    def test_earliest_window_is_found(self):
        sender = own_view(0.0)
        receiver = own_view(500.5)
        first = find_transmit_window(sender, receiver, 0.25, earliest=0.0)
        # No valid start earlier than the one returned: check a grid.
        step = 0.05
        t = 0.0
        while t < first[0] - 1e-9:
            fits = (
                not sender.is_receiving_at(t)
                and not sender.is_receiving_at(t + 0.25 - 1e-9)
                and receiver.is_receiving_at(t)
                and receiver.is_receiving_at(t + 0.25 - 1e-9)
            )
            if fits:
                # The candidate must span window boundaries then.
                whole = all(
                    not sender.is_receiving_at(u) and receiver.is_receiving_at(u)
                    for u in (t + k * 0.01 for k in range(26))
                )
                assert not whole, f"missed earlier window at {t}"
            t += step

    def test_guard_shrinks_usable_region(self):
        sender_clock = Clock(offset=1.0)
        receiver_clock = Clock(offset=400.9)
        sender = ScheduleView.own(SCHEDULE, sender_clock)
        receiver_truth = ScheduleView.own(SCHEDULE, receiver_clock)
        start, end = find_transmit_window(
            sender,
            neighbor_view(sender_clock, receiver_clock),
            duration=0.25,
            earliest=0.0,
            guard=0.1,
        )
        # The receiver listens for at least the guard on both sides.
        assert receiver_truth.is_receiving_at(start - 0.09)
        assert receiver_truth.is_receiving_at(end + 0.09)

    def test_avoid_views_are_respected(self):
        sender_clock = Clock(offset=3.0)
        receiver_clock = Clock(offset=907.1)
        bystander_clock = Clock(offset=5550.7)
        sender = ScheduleView.own(SCHEDULE, sender_clock)
        receiver = neighbor_view(sender_clock, receiver_clock)
        bystander = neighbor_view(sender_clock, bystander_clock)
        bystander_truth = ScheduleView.own(SCHEDULE, bystander_clock)
        start, end = find_transmit_window(
            sender, receiver, 0.25, earliest=0.0, avoid=[bystander]
        )
        for t in (start, (start + end) / 2, end - 1e-9):
            assert not bystander_truth.is_receiving_at(t)

    def test_propagation_delay_compensated(self):
        # Section 3.3: "actual delays could be observed and easily
        # compensated for in the scheduling technique."  With a large
        # artificial delay, the burst must be led so that the *arrival*
        # interval sits inside the receiver's window.
        delay = 0.3  # slots — absurd physically, visible mathematically
        sender_clock = Clock(offset=4.2)
        receiver_clock = Clock(offset=611.7)
        sender = ScheduleView.own(SCHEDULE, sender_clock)
        receiver_truth = ScheduleView.own(SCHEDULE, receiver_clock)
        start, end = find_transmit_window(
            sender,
            neighbor_view(sender_clock, receiver_clock),
            duration=0.25,
            earliest=0.0,
            propagation_delay=delay,
        )
        for t in (start + 1e-9, (start + end) / 2, end - 1e-9):
            assert not sender.is_receiving_at(t)        # sender window: tx time
            assert receiver_truth.is_receiving_at(t + delay)  # rx window: arrival

    def test_zero_delay_matches_plain_search(self):
        sender_clock = Clock(offset=4.2)
        receiver_clock = Clock(offset=611.7)
        sender = ScheduleView.own(SCHEDULE, sender_clock)
        receiver = neighbor_view(sender_clock, receiver_clock)
        plain = find_transmit_window(sender, receiver, 0.25, earliest=0.0)
        delayed = find_transmit_window(
            sender, receiver, 0.25, earliest=0.0, propagation_delay=0.0
        )
        assert plain == delayed

    def test_negative_delay_rejected(self):
        sender = own_view(0.0)
        receiver = own_view(99.5)
        with pytest.raises(ValueError):
            find_transmit_window(
                sender, receiver, 0.25, 0.0, propagation_delay=-1.0
            )

    def test_no_window_raises(self):
        # A receiver whose believed windows are always outside the
        # search horizon: use an avoid view identical to the receiver,
        # which forbids every candidate.
        sender_clock = Clock(offset=0.0)
        receiver_clock = Clock(offset=123.4)
        sender = ScheduleView.own(SCHEDULE, sender_clock)
        receiver = neighbor_view(sender_clock, receiver_clock)
        with pytest.raises(NoTransmitWindowError):
            find_transmit_window(
                sender,
                receiver,
                0.25,
                earliest=0.0,
                avoid=[receiver],
                search_slots=200,
            )

    def test_rejects_bad_arguments(self):
        sender = own_view(0.0)
        receiver = own_view(99.5)
        with pytest.raises(ValueError):
            find_transmit_window(sender, receiver, 0.0, 0.0)
        with pytest.raises(ValueError):
            find_transmit_window(sender, receiver, 0.25, 0.0, guard=-1.0)
        with pytest.raises(ValueError):
            find_transmit_window(sender, receiver, 0.25, 0.0, search_slots=0)

    def test_identical_clocks_cannot_communicate(self):
        # Section 7.1: "If the clocks were not set differently, then the
        # identical schedules would prevent communication between the
        # two stations."
        sender = own_view(10.0)
        receiver = own_view(10.0)
        with pytest.raises(NoTransmitWindowError):
            find_transmit_window(
                sender, receiver, 0.25, earliest=0.0, search_slots=500
            )

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=-5e-5, max_value=5e-5),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_window_always_valid_property(
        self, sender_offset, receiver_offset, rate_error, earliest
    ):
        from hypothesis import assume

        # Section 7.1 requires clocks set at least a slot apart; with
        # closer offsets the schedules correlate and overlap may not
        # exist (see test_identical_clocks_cannot_communicate).
        assume(abs(sender_offset - receiver_offset) >= 2.0)
        sender_clock = Clock(offset=sender_offset)
        receiver_clock = Clock(offset=receiver_offset, rate_error=rate_error)
        sender = ScheduleView.own(SCHEDULE, sender_clock)
        receiver_believed = neighbor_view(sender_clock, receiver_clock)
        receiver_truth = ScheduleView.own(SCHEDULE, receiver_clock)
        start, end = find_transmit_window(
            sender, receiver_believed, duration=0.25, earliest=earliest
        )
        assert start >= earliest
        for t in (start + 1e-9, (start + end) / 2, end - 1e-9):
            assert not sender.is_receiving_at(t)
            assert receiver_truth.is_receiving_at(t)


class TestClosedForms:
    def test_overlap_fraction_at_p03(self):
        assert overlap_fraction(0.3) == pytest.approx(0.21)

    def test_expected_wait_at_p03(self):
        assert expected_wait_slots(0.3) == pytest.approx(4.7619, abs=1e-3)

    def test_overlap_fraction_bounds(self):
        with pytest.raises(ValueError):
            overlap_fraction(0.0)
