"""Tests for neighbour clock modelling via rendezvous."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock.clock import Clock
from repro.clock.sync import (
    ClockSample,
    NeighborClockModel,
    exact_model,
    exchange_readings,
)


class TestExchange:
    def test_exact_exchange(self):
        own = Clock(offset=5.0)
        neighbor = Clock(offset=9.0)
        sample = exchange_readings(own, neighbor, true_time=10.0)
        assert sample.own_reading == 15.0
        assert sample.neighbor_reading == 19.0

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            exchange_readings(Clock(), Clock(), 0.0, jitter=0.1)

    def test_jitter_perturbs(self):
        rng = np.random.default_rng(3)
        clean = exchange_readings(Clock(), Clock(offset=1.0), 0.0)
        noisy = exchange_readings(Clock(), Clock(offset=1.0), 0.0, jitter=0.5, rng=rng)
        assert noisy.neighbor_reading != clean.neighbor_reading


class TestModelFitting:
    def test_no_samples_raises(self):
        with pytest.raises(RuntimeError):
            NeighborClockModel().predict_neighbor_reading(0.0)

    def test_single_sample_assumes_equal_rates(self):
        model = NeighborClockModel()
        model.add_sample(ClockSample(own_reading=10.0, neighbor_reading=25.0))
        assert model.predict_neighbor_reading(12.0) == pytest.approx(27.0)
        assert model.relative_rate == 1.0

    def test_two_exact_samples_fit_affine_exactly(self):
        own = Clock(offset=3.0, rate_error=1e-5)
        neighbor = Clock(offset=100.0, rate_error=-2e-5)
        model = exact_model(own, neighbor)
        for t in (0.0, 57.0, 1234.5):
            assert model.predict_neighbor_reading(
                own.reading(t)
            ) == pytest.approx(neighbor.reading(t), abs=1e-6)

    def test_inverse_prediction(self):
        own = Clock(offset=3.0)
        neighbor = Clock(offset=-7.0, rate_error=5e-5)
        model = exact_model(own, neighbor)
        t = 99.0
        assert model.own_reading_for(
            neighbor.reading(t)
        ) == pytest.approx(own.reading(t), abs=1e-6)

    def test_noisy_fit_averages_out(self):
        rng = np.random.default_rng(7)
        own = Clock()
        neighbor = Clock(offset=50.0, rate_error=3e-5)
        model = NeighborClockModel()
        for t in np.linspace(0.0, 1000.0, 40):
            model.add_sample(
                exchange_readings(own, neighbor, float(t), jitter=0.01, rng=rng)
            )
        prediction = model.predict_neighbor_reading(own.reading(2000.0))
        assert prediction == pytest.approx(neighbor.reading(2000.0), abs=0.02)

    def test_sample_window_bounded(self):
        model = NeighborClockModel(max_samples=4)
        for k in range(10):
            model.add_sample(ClockSample(float(k), float(k) + 1.0))
        assert model.sample_count == 4

    def test_repeated_instant_degenerates_gracefully(self):
        model = NeighborClockModel()
        model.add_sample(ClockSample(5.0, 8.0))
        model.add_sample(ClockSample(5.0, 8.2))
        assert model.relative_rate == 1.0
        assert model.predict_neighbor_reading(5.0) == pytest.approx(8.1)

    @settings(max_examples=25)
    @given(
        st.floats(min_value=-1e4, max_value=1e4),
        st.floats(min_value=-1e4, max_value=1e4),
        st.floats(min_value=-1e-4, max_value=1e-4),
        st.floats(min_value=-1e-4, max_value=1e-4),
        st.floats(min_value=0.0, max_value=1e5),
    )
    def test_exact_model_property(self, o1, o2, r1, r2, t):
        own = Clock(offset=o1, rate_error=r1)
        neighbor = Clock(offset=o2, rate_error=r2)
        model = exact_model(own, neighbor)
        assert model.predict_neighbor_reading(own.reading(t)) == pytest.approx(
            neighbor.reading(t), abs=1e-4
        )
