"""Graph-coloured TDMA: the textbook baseline of Section 2.

"A textbook method for ensuring non-interfering use of the channel is
to assume system-wide synchronization and control, divide time into
non-overlapping slots, and assign a compatible set of transmissions to
occur in each time slot."  The paper objects that (1) aggregate
interference from distant stations is ignored and (2) "a large system
may be difficult to synchronize reliably ... and to reliably control".

This module implements that method faithfully enough to be compared:

* a *conflict graph* joins every pair of stations that can hear each
  other (the usable-link adjacency), so no station transmits in the
  same slot as any station it could interfere with locally;
* a deterministic greedy colouring assigns each station a slot in a
  repeating frame of ``colour count`` slots;
* stations transmit only in their own slot, using the simulator's true
  time — i.e. this baseline is *granted* the perfect global
  synchronisation and the centrally computed assignment that the
  paper's scheme exists to avoid.

The physical medium still applies: the colouring guarantees only
protocol-model compatibility, and the calibrated rate covers the
aggregate interference, so TDMA runs loss-free here too.  What it
cannot do is beat the frame: each station gets 1/C of time regardless
of demand, while the pseudo-random schedules let demand find idle air.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mac.base import MacProtocol
from repro.sim.process import ProcessGenerator

__all__ = ["TdmaPlan", "TdmaMac", "greedy_coloring", "build_tdma_plan"]


def greedy_coloring(adjacency: np.ndarray) -> List[int]:
    """Deterministic greedy vertex colouring (largest-degree-first).

    Returns a colour per station; uses at most max-degree + 1 colours.
    """
    adjacency = np.asarray(adjacency, dtype=bool)
    count = adjacency.shape[0]
    if adjacency.shape != (count, count):
        raise ValueError("adjacency must be square")
    order = sorted(range(count), key=lambda v: -int(adjacency[v].sum()))
    colors = [-1] * count
    for vertex in order:
        taken = {
            colors[other]
            for other in np.nonzero(adjacency[vertex])[0]
            if colors[other] >= 0
        }
        color = 0
        while color in taken:
            color += 1
        colors[vertex] = color
    return colors


@dataclass(frozen=True)
class TdmaPlan:
    """A complete centrally computed TDMA assignment.

    Attributes:
        colors: slot index per station within the frame.
        frame_slots: number of slots per frame (the colour count).
        slot_duration: airtime of one TDMA slot (one packet).
    """

    colors: List[int]
    frame_slots: int
    slot_duration: float

    def slot_start(self, station: int, not_before: float) -> float:
        """Earliest start of ``station``'s slot at or after ``not_before``."""
        frame_length = self.frame_slots * self.slot_duration
        offset = self.colors[station] * self.slot_duration
        frames_done = max(
            0, int((not_before - offset) // frame_length) if not_before > offset else 0
        )
        start = frames_done * frame_length + offset
        while start < not_before - 1e-12:
            start += frame_length
        return start


def build_tdma_plan(
    usable: np.ndarray, packet_airtime: float, guard_fraction: float = 0.05
) -> TdmaPlan:
    """Colour the hearing graph and size the frame.

    Args:
        usable: boolean adjacency of mutually hearable stations.
        packet_airtime: airtime of the (fixed-size) packet.
        guard_fraction: inter-slot guard as a fraction of the airtime.
    """
    if packet_airtime <= 0.0:
        raise ValueError("packet airtime must be positive")
    if guard_fraction < 0.0:
        raise ValueError("guard must be non-negative")
    colors = greedy_coloring(usable)
    frame_slots = max(colors) + 1
    return TdmaPlan(
        colors=colors,
        frame_slots=frame_slots,
        slot_duration=packet_airtime * (1.0 + guard_fraction),
    )


class TdmaMac(MacProtocol):
    """Transmit only in the centrally assigned slot of each frame.

    Args:
        plan: the network-wide TDMA assignment.
    """

    name = "tdma"

    def __init__(self, plan: TdmaPlan) -> None:
        super().__init__()
        self.plan = plan

    def is_listening(self, now: float) -> bool:
        """TDMA receivers are always on when not transmitting."""
        return True

    def run(self) -> ProcessGenerator:
        station = self.station
        env = station.env
        while True:
            if station.queue.is_empty:
                yield station.next_arrival()
                continue
            start = self.plan.slot_start(station.index, env.now)
            if start > env.now:
                yield env.timeout(start - env.now)
            heads = station.queue.heads()
            if not heads:
                continue
            next_hop, packet = heads[0]
            station.dequeue(next_hop)
            airtime = packet.airtime(station.data_rate_bps)
            if airtime > self.plan.slot_duration + 1e-12:
                raise ValueError(
                    "packet airtime exceeds the TDMA slot; the plan assumes "
                    "fixed-size packets"
                )
            yield from station.transmit_packet(packet, next_hop)
            # The remainder of the slot (the guard) idles by design.
