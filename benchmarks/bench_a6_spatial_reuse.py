"""Bench A6: spatial reuse — the scheme vs textbook TDMA vs ALOHA."""

from repro.experiments import get_experiment


def test_bench_a6_spatial_reuse(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("A6")(),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    shepard, tdma = report.claims[
        "both structured schemes exceed single-channel use (concurrency > 1)"
    ][1]
    assert shepard > 1.0 and tdma > 1.0
    assert report.claims["scheme outdelivers TDMA at equal physics (ratio)"][1] > 1.0
