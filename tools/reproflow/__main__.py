"""``python -m tools.reproflow`` entry point."""

from tools.reproflow.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
