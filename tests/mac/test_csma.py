"""Tests for the CSMA baseline."""

import numpy as np
import pytest

from repro.mac.csma import CsmaMac
from repro.net.network import NetworkConfig, build_network
from repro.net.traffic import CbrTraffic
from repro.propagation.geometry import uniform_disk
from repro.sim.streams import RandomStreams


def csma_network(count=12, seed=31, threshold=0.5):
    placement = uniform_disk(count, radius=600.0, seed=seed)
    streams = RandomStreams(seed)
    return build_network(
        placement,
        NetworkConfig(seed=seed),
        mac_factory=lambda i, b: CsmaMac(
            streams.stream(f"mac{i}"), sense_threshold_w=threshold
        ),
        trace=True,
    )


class TestCsma:
    def test_delivers_on_quiet_channel(self):
        network = csma_network()
        network.add_traffic(
            CbrTraffic(
                origin=0,
                destination=int(network.tables[0].neighbors_in_use()[0]),
                interval=30 * network.budget.slot_time,
                size_bits=network.config.packet_size_bits,
                limit=4,
            )
        )
        result = network.run(200 * network.budget.slot_time)
        assert result.hop_deliveries == 4

    def test_defers_while_neighbor_transmits(self):
        # Station B starts a long burst; station A's packet arrives
        # mid-burst and must defer until the channel clears.
        network = csma_network(seed=37)
        a = 0
        neighbors = network.tables[a].neighbors_in_use()
        b = int(neighbors[0])
        slot = network.budget.slot_time
        b_target = int(network.tables[b].neighbors_in_use()[0])
        # B's stream starts first and is long (big packet).
        network.add_traffic(
            CbrTraffic(
                origin=b, destination=b_target,
                interval=1000 * slot,
                size_bits=20 * network.config.packet_size_bits,
                start_at=0.0, limit=1,
            )
        )
        network.add_traffic(
            CbrTraffic(
                origin=a, destination=b,
                interval=1000 * slot,
                size_bits=network.config.packet_size_bits,
                start_at=network.budget.packet_airtime,  # mid-burst
                limit=1,
            )
        )
        network.run(500 * slot)
        starts = sorted(
            (r.time, r.data["source"]) for r in network.trace.of_kind("tx_start")
        )
        assert starts[0][1] == b
        b_end = starts[0][0] + 20 * network.budget.packet_airtime
        # A deferred past the end of B's burst.
        a_start = next(t for t, src in starts if src == a)
        assert a_start >= b_end
        mac = network.stations[a].mac
        assert mac.busy_verdicts > 0

    def test_gives_up_when_din_exceeds_threshold(self):
        # One ALOHA station hums a very long burst; the CSMA station
        # under test, with a hair-trigger threshold, must drop its
        # packet after max_sense_deferrals rather than livelock.
        from repro.mac.aloha import AlohaMac

        placement = uniform_disk(10, radius=600.0, seed=41)
        streams = RandomStreams(41)

        def factory(index, budget):
            if index == 0:
                return CsmaMac(
                    streams.stream(f"m{index}"),
                    sense_threshold_w=1e-30,
                    max_attempts=1,
                    max_sense_deferrals=5,
                )
            return AlohaMac(streams.stream(f"m{index}"), max_attempts=1)

        network = build_network(
            placement, NetworkConfig(seed=41), mac_factory=factory, trace=True
        )
        slot = network.budget.slot_time
        network.add_traffic(
            CbrTraffic(
                origin=0,
                destination=int(network.tables[0].neighbors_in_use()[0]),
                interval=1000 * slot,
                size_bits=network.config.packet_size_bits,
                start_at=slot,  # arrives once the hum is established
                limit=1,
            )
        )
        # The hummer's single burst outlasts the whole test window.
        hummer = 1
        hum_target = int(network.tables[hummer].neighbors_in_use()[0])
        network.add_traffic(
            CbrTraffic(
                origin=hummer, destination=hum_target,
                interval=1e9,
                size_bits=10_000 * network.config.packet_size_bits,
                limit=1,
            )
        )
        network.run(300 * slot)
        assert network.stations[0].mac.dropped == 1
        assert network.stations[0].mac.busy_verdicts >= 5

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CsmaMac(np.random.default_rng(0), sense_threshold_w=0.0)
