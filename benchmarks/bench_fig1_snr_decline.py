"""Bench F1: regenerate Figure 1 (SNR decline versus system scale)."""

import pytest

from repro.experiments import get_experiment


def test_bench_fig1_snr_decline(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("F1")(
            mc_station_counts=(300, 1000, 3000, 10000),
            mc_duty_cycles=(0.2, 0.5, 1.0),
            trials=12,
        ),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    assert report.claims["Monte-Carlo vs Eq.15 worst gap (dB)"][1] < 1.5
    assert report.claims["eta=0.25 improves SNR by +6 dB over eta=1"][
        1
    ] == pytest.approx(6.02, abs=0.01)
