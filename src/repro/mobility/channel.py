"""Continuous time-varying channels: mobility plus fading, with
re-acquisition.

The fault layer's :class:`~repro.faults.spec.LinkFade` is a one-shot
episode: scale a link, hold, restore.  This module generalises it into
a *process*: a maintenance generator that, every ``tick_slots``, (1)
advances a :class:`~repro.mobility.models.MobilityModel` and
re-evaluates path gains for every link touching a moved station, (2)
evolves an AR(1) log-normal shadow-fading state per tracked link, and
(3) pushes the combined gains into the medium through
:meth:`~repro.net.medium.Medium.update_links` — an *incremental*
write that keeps the interference field consistent via the same
delta/axpy accounting (and the same sanitizer-checked resync bound) as
transmission begin/end.

Determinism: every random draw flows from the seed tree
(:func:`~repro.parallel.seedtree.derive_seed`), with independent
branches for fading, mobility, and re-acquisition, so channel
trajectories are bit-reproducible and identical across worker counts.

Exact restore: geometry gains are *cached* at install from the
medium's live values and only re-evaluated for links touching moved
stations.  With zero mobility the geometry never changes, so when the
episode ends and fades are reset, the process writes back exactly the
nominal gains — :meth:`~repro.net.medium.Medium
.channel_drift_from_nominal` returns identically ``0.0``, which the
process asserts under ``REPRO_SANITIZE=1``.

Zero cost: an inert spec (no mobility or zero speed, no fading or
zero sigma) makes :func:`install_channel` return ``None`` without
touching the network — mirroring the empty
:class:`~repro.faults.spec.FaultPlan` guarantee, replay digests are
bit-identical to runs without this package imported.

Re-acquisition (Section 7.1 under churn): every
``reacquire_every_slots`` the process compares each link's live
*geometry* against the link budget's hearability threshold.  When the
hearable set differs from the last known one, the affected stations
have stale receive-window state; after ``reacquire_delay_slots`` (the
modelled detection/rendezvous lag) the process calls
:meth:`~repro.net.network.Network.reconverge`, which re-fits clock
models for new pairs, re-derives routes, re-aims power control, and
kicks schedule-driven MACs.  Turnovers and re-acquisitions are logged
in a :class:`~repro.faults.resilience.ResilienceLog` so experiments
can report per-station rendezvous-recovery latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Set

import numpy as np

from repro.faults.resilience import ResilienceLog, ResilienceReport
from repro.mobility.models import MobilityModel
from repro.obs.events import (
    ChannelUpdate,
    NeighborTurnover,
    RendezvousReacquire,
)
from repro.parallel.seedtree import derive_seed
from repro.sim.process import ProcessGenerator
from repro.sim.sanitizer import SanitizerError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["FadingSpec", "ChannelSpec", "ChannelProcess", "install_channel"]


@dataclass(frozen=True)
class FadingSpec:
    """AR(1) log-normal shadow fading per link.

    Each tracked link carries a fade state ``x`` in dB evolving as
    ``x' = rho * x + sqrt(1 - rho^2) * sigma * eps`` with
    ``rho = exp(-tick / coherence)``: a Gauss-Markov process whose
    stationary distribution is ``N(0, sigma^2)`` regardless of tick
    rate, so the fading statistics do not depend on the tick interval.

    Attributes:
        sigma_db: stationary standard deviation of the fade, in dB.
        coherence_slots: 1/e decorrelation time of the fade, in slots —
            retries spaced further apart than this see effectively
            independent channel draws.
    """

    sigma_db: float = 3.0
    coherence_slots: float = 8.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0.0:
            raise ValueError("fade sigma must be non-negative")
        if self.coherence_slots <= 0.0:
            raise ValueError("coherence time must be positive")

    @property
    def is_inert(self) -> bool:
        """Whether the fading can never change a gain."""
        return self.sigma_db == 0.0


@dataclass(frozen=True)
class ChannelSpec:
    """Declarative description of a continuous channel episode.

    Attributes:
        mobility: station trajectory model, or ``None`` for static.
        fading: per-link shadow fading, or ``None`` for none.
        tick_slots: channel update interval, in slots.
        start_slot: episode start, slots after the process begins.
        end_slot: episode end (slots after the process begins); the
            channel holds still afterwards.  ``None`` runs forever.
        restore_fading_at_end: reset fades to 0 dB when the episode
            ends, so the channel settles on pure geometry.
        reacquire_every_slots: neighbour-set scan interval, or ``None``
            to disable re-acquisition entirely (baseline behaviour:
            the network soldiers on with stale state).
        reacquire_delay_slots: modelled detection/rendezvous lag
            between a scan that finds turnover and the re-convergence.
        track_gain_floor: optionally ignore links whose install-time
            gain is below this floor (bounds tracked-link count on
            dense media; the sparse medium's culling already does
            this, consistent with its error accounts).
    """

    mobility: Optional[MobilityModel] = None
    fading: Optional[FadingSpec] = None
    tick_slots: float = 2.0
    start_slot: float = 0.0
    end_slot: Optional[float] = None
    restore_fading_at_end: bool = True
    reacquire_every_slots: Optional[float] = None
    reacquire_delay_slots: float = 4.0
    track_gain_floor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.tick_slots <= 0.0:
            raise ValueError("tick interval must be positive")
        if self.start_slot < 0.0:
            raise ValueError("start slot must be non-negative")
        if self.end_slot is not None and self.end_slot <= self.start_slot:
            raise ValueError("episode must end after it starts")
        if (
            self.reacquire_every_slots is not None
            and self.reacquire_every_slots <= 0.0
        ):
            raise ValueError("reacquire interval must be positive")
        if self.reacquire_delay_slots < 0.0:
            raise ValueError("reacquire delay must be non-negative")
        if self.track_gain_floor is not None and self.track_gain_floor < 0.0:
            raise ValueError("track floor must be non-negative")

    @property
    def is_inert(self) -> bool:
        """Whether the spec can never change the channel.

        An inert spec installs *nothing* (see :func:`install_channel`),
        which is the zero-cost guarantee: runs are bit-identical to
        ones without channel support.
        """
        moving = self.mobility is not None and not self.mobility.is_static
        fading = self.fading is not None and not self.fading.is_inert
        return not moving and not fading


class ChannelProcess:
    """The running channel: per-tick gain updates plus re-acquisition.

    Construct via :func:`install_channel`.  Exposes the same
    ``log``/``report()`` surface as the fault injector so experiments
    treat discrete faults and continuous churn uniformly.
    """

    def __init__(
        self, network: "Network", spec: ChannelSpec, seed: int = 0
    ) -> None:
        if network.propagation_model is None:
            raise RuntimeError(
                "this network was constructed without a propagation "
                "model; mobility needs a build_network-assembled network"
            )
        self.network = network
        self.spec = spec
        self.seed = seed
        self.env = network.env
        self.medium = network.medium
        self.instr = network.instrumentation
        self.log = ResilienceLog()
        self.ticks = 0
        self.updates_applied = 0
        self._fade_rng = np.random.default_rng(
            derive_seed(seed, "channel", "fading")
        )
        self._mobility_rng = np.random.default_rng(
            derive_seed(seed, "channel", "mobility")
        )
        self._reacquire_rng = np.random.default_rng(
            derive_seed(seed, "channel", "reacquire")
        )
        self._positions = np.array(
            network.placement.positions, dtype=float, copy=True
        )
        # Routing/power geometry baseline for reconverge: tracked links
        # are overwritten with live geometry, untracked ones (e.g.
        # sparse-culled) keep their nominal values.
        self._base_gains = np.array(network.matrix.gains, copy=True)
        self._receivers, self._sources, self._geometry = self._tracked_links()
        self._indices = self.medium.link_indices(
            self._receivers, self._sources
        )
        self._fade_db = np.zeros(self._geometry.size)
        self._known_hearable = self._geometry >= network.budget.min_gain
        self._turned_over: Set[int] = set()

    # -- link tracking --------------------------------------------------

    def _tracked_links(self):
        """(receivers, sources, live gains) for every link the process
        maintains, from the medium's install-time (nominal) state."""
        medium = self.medium
        if medium.sparse is not None:
            field = medium.sparse
            sources = np.repeat(
                np.arange(field.count, dtype=np.intp),
                np.diff(field.indptr),
            )
            receivers = field.rows.astype(np.intp)
            gains = np.array(medium._svals, dtype=float, copy=True)
        else:
            assert medium.gains is not None
            receivers, sources = np.nonzero(medium.gains > 0.0)
            receivers = receivers.astype(np.intp)
            sources = sources.astype(np.intp)
            gains = medium.gains[receivers, sources].astype(float)
        keep = receivers != sources
        if self.spec.track_gain_floor is not None:
            keep &= gains >= self.spec.track_gain_floor
        return receivers[keep], sources[keep], gains[keep].copy()

    @property
    def tracked_links(self) -> int:
        """Number of links the process maintains."""
        return int(self._geometry.size)

    def _refresh_geometry(self, moved: np.ndarray) -> None:
        """Re-evaluate path gains for links touching moved stations.

        Only touched links are recomputed; untouched links keep their
        cached values bit-exactly, which is what makes the zero-
        velocity episode restore *exactly* nominal.
        """
        touched = np.isin(self._receivers, moved) | np.isin(
            self._sources, moved
        )
        idx = np.nonzero(touched)[0]
        if idx.size == 0:
            return
        delta = (
            self._positions[self._receivers[idx]]
            - self._positions[self._sources[idx]]
        )
        distance = np.sqrt((delta**2).sum(axis=1))
        self._geometry[idx] = np.asarray(
            self.network.propagation_model.power_gain(distance), dtype=float
        )

    # -- per-tick update ------------------------------------------------

    def _tick(self) -> None:
        spec = self.spec
        moved = np.empty(0, dtype=np.intp)
        if spec.mobility is not None:
            moved = spec.mobility.step(
                self._positions, spec.tick_slots, self._mobility_rng
            )
            if moved.size:
                self._refresh_geometry(moved)
        gains = self._geometry
        if spec.fading is not None and not spec.fading.is_inert:
            rho = math.exp(-spec.tick_slots / spec.fading.coherence_slots)
            noise = self._fade_rng.standard_normal(self._fade_db.size)
            self._fade_db *= rho
            self._fade_db += math.sqrt(1.0 - rho * rho) * (
                spec.fading.sigma_db * noise
            )
            gains = self._geometry * 10.0 ** (self._fade_db / 10.0)
        applied = self.medium.update_links(
            self._receivers, self._sources, gains, indices=self._indices
        )
        self.ticks += 1
        self.updates_applied += applied
        if self.instr.active:
            self.instr.emit(
                ChannelUpdate(self.env.now, int(moved.size), applied)
            )

    def _restore_fading(self) -> None:
        """Reset fades to 0 dB and settle the medium on pure geometry."""
        self._fade_db[:] = 0.0
        self.medium.update_links(
            self._receivers, self._sources, self._geometry,
            indices=self._indices,
        )
        if self.instr.active:
            self.instr.emit(ChannelUpdate(self.env.now, 0, self.tracked_links))
        if self.env.sanitizing and (
            self.spec.mobility is None or self.spec.mobility.is_static
        ):
            # Exact-restore discipline: with no mobility the geometry
            # cache was never recomputed, so the medium must be back at
            # nominal *bit-exactly* — any drift means the incremental
            # update path compounded where it should not have.
            drift = self.medium.channel_drift_from_nominal()
            if drift != 0.0:
                raise SanitizerError(
                    f"channel restore left gain drift {drift!r} "
                    "from nominal on a mobility-free episode"
                )

    # -- re-acquisition -------------------------------------------------

    def _scan_turnover(self) -> bool:
        """Compare live-geometry hearability against the known set.

        Logs per-station turnovers for stations whose neighbour set
        changed; returns whether anything turned over.
        """
        hearable = self._geometry >= self.network.budget.min_gain
        changed = hearable != self._known_hearable
        if not changed.any():
            return False
        now = self.env.now
        changed_idx = np.nonzero(changed)[0]
        for station in np.unique(
            self._receivers[changed_idx]
        ).tolist():
            at_station = changed_idx[self._receivers[changed_idx] == station]
            gained = int(np.count_nonzero(hearable[at_station]))
            lost = int(at_station.size - gained)
            self.log.turnovers.append((now, int(station)))
            self._turned_over.add(int(station))
            if self.instr.active:
                self.instr.emit(
                    NeighborTurnover(now, int(station), gained, lost)
                )
        self._known_hearable = hearable
        return True

    def _live_matrix(self):
        """Dense routing/power geometry: nominal with tracked links
        overwritten by live geometry (no fading — routing and power
        control aim at the mean channel, not the instantaneous fade)."""
        from repro.propagation.matrix import PropagationMatrix

        live = self._base_gains.copy()
        live[self._receivers, self._sources] = self._geometry
        return PropagationMatrix(live)

    def _reconverge(self) -> None:
        counters = self.network.reconverge(
            self._live_matrix(), self._reacquire_rng
        )
        now = self.env.now
        stations = sorted(self._turned_over)
        for station in stations:
            self.log.reacquired.append((now, station))
        self._turned_over.clear()
        self.log.mobility_reroutes.append(now)
        if self.instr.active:
            self.instr.emit(
                RendezvousReacquire(
                    now,
                    len(stations),
                    counters["new_pairs"],
                    counters["kicked"],
                )
            )

    # -- the maintenance process ----------------------------------------

    def process(self) -> ProcessGenerator:
        """The maintenance generator ``install_channel`` registers."""
        env = self.env
        spec = self.spec
        slot = self.network.budget.slot_time
        tick_dt = spec.tick_slots * slot
        origin = env.now
        if spec.start_slot > 0.0:
            yield env.timeout(spec.start_slot * slot)
        if spec.mobility is not None and not spec.mobility.is_static:
            spec.mobility.prepare(
                self._positions,
                self.network.placement.region_radius,
                self._mobility_rng,
            )
        end_at = (
            None
            if spec.end_slot is None
            else origin + spec.end_slot * slot
        )
        scan_dt = (
            None
            if spec.reacquire_every_slots is None
            else spec.reacquire_every_slots * slot
        )
        next_scan = None if scan_dt is None else env.now + scan_dt
        pending_at: Optional[float] = None
        while True:
            now = env.now
            if pending_at is not None and pending_at < now + tick_dt:
                # Service the scheduled re-convergence before the next
                # channel tick (the rendezvous lag elapsed mid-tick).
                if pending_at > now:
                    yield env.timeout(pending_at - now)
                self._reconverge()
                pending_at = None
                continue
            yield env.timeout(tick_dt)
            if end_at is not None and env.now > end_at + 1e-12:
                break
            self._tick()
            if next_scan is not None and env.now >= next_scan:
                if self._scan_turnover() and pending_at is None:
                    pending_at = env.now + spec.reacquire_delay_slots * slot
                next_scan = env.now + scan_dt
        # Episode over: settle the channel, then converge onto it.
        if spec.fading is not None and spec.restore_fading_at_end:
            self._restore_fading()
        if scan_dt is not None:
            self._scan_turnover()
            if spec.reacquire_delay_slots > 0.0:
                yield env.timeout(spec.reacquire_delay_slots * slot)
            self._reconverge()

    # -- reporting ------------------------------------------------------

    def report(self) -> ResilienceReport:
        """Summarise the finished run for experiment payloads."""
        stations = self.network.stations
        return ResilienceReport.from_run(
            self.log,
            self.medium.loss_counts_by_reason(),
            sum(station.stats.fault_drops for station in stations),
            arq_retries=sum(
                station.stats.arq_retries for station in stations
            ),
            arq_giveups=sum(
                station.stats.arq_giveups for station in stations
            ),
        )


def install_channel(
    network: "Network", spec: ChannelSpec, seed: int = 0
) -> Optional[ChannelProcess]:
    """Attach a continuous channel process to a network before it starts.

    Returns the installed :class:`ChannelProcess` (also stored as
    ``network.channel``), or ``None`` for an inert spec — in which
    case nothing is installed and the run is bit-identical to one
    without channel support (the mobility counterpart of the empty
    fault plan guarantee).
    """
    if spec.is_inert:
        return None
    process = ChannelProcess(network, spec, seed)
    network.add_maintenance(process.process)
    network.channel = process
    return process
