"""Thermal noise floor.

Section 3.4 notes that "in a large system the interference from other
stations will dominate any thermal noise, so the thermal noise may now
be ignored".  We model it anyway: small networks (and the unit tests)
need a nonzero noise floor so that signal-to-noise ratios are finite
when no interferer is active, and the metro-scale projection
(:mod:`repro.analysis.metro`) checks the paper's claim that thermal
noise really is negligible at scale.
"""

from __future__ import annotations

from repro.radio.signal import db_to_linear

__all__ = [
    "BOLTZMANN",
    "STANDARD_TEMPERATURE_K",
    "thermal_noise_power",
]

BOLTZMANN = 1.380649e-23
"""Boltzmann constant, J/K."""

STANDARD_TEMPERATURE_K = 290.0
"""Standard reference temperature for receiver noise calculations."""


def thermal_noise_power(
    bandwidth_hz: float,
    temperature_k: float = STANDARD_TEMPERATURE_K,
    noise_figure_db: float = 0.0,
) -> float:
    """Thermal noise power ``k T B`` referred to the receiver input, in watts.

    Args:
        bandwidth_hz: receiver noise bandwidth.
        temperature_k: system noise temperature.
        noise_figure_db: additional receiver noise figure in dB.
    """
    if bandwidth_hz <= 0.0:
        raise ValueError("bandwidth must be positive")
    if temperature_k <= 0.0:
        raise ValueError("temperature must be positive")
    return BOLTZMANN * temperature_k * bandwidth_hz * db_to_linear(noise_figure_db)
