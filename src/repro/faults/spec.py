"""Declarative fault specifications and their seed-tree compilation.

A fault run is described twice.  The *declarative* layer
(:class:`StationCrash`, :class:`StationChurn`, :class:`LinkFade`,
:class:`ClockStep`, :class:`PacketCorruption`) says what kind of
trouble the network is subjected to; the *concrete* layer
(:class:`FaultPlan`, a sorted tuple of :class:`FaultEvent`) says
exactly which station fails when, which link fades by how much, and
which RNG seed each stochastic handler uses.

:func:`compile_plan` bridges the two.  Every random draw — churn crash
instants, which station a churn event hits, downtimes — comes from
``numpy`` generators seeded via :func:`repro.parallel.seedtree.
derive_seed`, so a plan is a pure function of ``(specs, seed,
station_count)``: bit-identical across processes, worker counts, and
platforms, exactly like the experiment seeds themselves (reprolint
REP009 enforces this discipline for all fault modules).

All times are in *slots* (the natural schedule unit); the injector
converts to global seconds through the built network's slot time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.parallel.seedtree import derive_seed

__all__ = [
    "StationCrash",
    "StationChurn",
    "LinkFade",
    "ClockStep",
    "PacketCorruption",
    "FaultSpec",
    "FaultEvent",
    "FaultPlan",
    "compile_plan",
]


@dataclass(frozen=True)
class StationCrash:
    """One explicit crash (and optional recovery) of one station.

    Attributes:
        station: the station that goes down.
        at_slot: crash instant, in slots from the start of the run.
        recover_after_slots: downtime; ``None`` means the station never
            comes back.
    """

    station: int
    at_slot: float
    recover_after_slots: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_slot <= 0.0:
            raise ValueError("a crash must happen strictly after the start")
        if self.recover_after_slots is not None and self.recover_after_slots <= 0.0:
            raise ValueError("downtime must be positive")


@dataclass(frozen=True)
class StationChurn:
    """A Poisson churn episode: stations crash and recover at random.

    Crash instants form a Poisson process of ``rate_per_slot`` over
    ``[start_slot, end_slot)``; each crash hits a uniformly chosen
    eligible station (never one already down) and lasts an
    exponentially distributed downtime with the given mean.

    Attributes:
        rate_per_slot: expected crashes per slot over the episode.
        start_slot: episode start (slots).
        end_slot: episode end (slots); crashes sample strictly before it.
        mean_downtime_slots: mean of the exponential downtime.
        stations: the candidate pool (default: every station).
    """

    rate_per_slot: float
    start_slot: float
    end_slot: float
    mean_downtime_slots: float
    stations: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.rate_per_slot <= 0.0:
            raise ValueError("churn rate must be positive")
        if self.start_slot <= 0.0:
            raise ValueError("churn must start strictly after the run begins")
        if self.end_slot <= self.start_slot:
            raise ValueError("churn episode must have positive length")
        if self.mean_downtime_slots <= 0.0:
            raise ValueError("mean downtime must be positive")
        if self.stations is not None and not self.stations:
            raise ValueError("an explicit station pool must be non-empty")


@dataclass(frozen=True)
class LinkFade:
    """A fade episode scaling one gain-matrix entry.

    The medium's private gain copy is scaled by ``gain_factor`` for the
    duration, then restored to nominal.  Power control keeps aiming at
    the *nominal* gain — a fade degrades delivered SIR, it is not
    silently compensated; that is the point.

    Attributes:
        receiver: receiving side of the faded link.
        source: transmitting side.
        at_slot: fade onset (slots).
        duration_slots: episode length.
        gain_factor: multiplier on the nominal gain (0 < f; < 1 fades).
        symmetric: also fade the reverse direction (real obstructions
            attenuate both ways).
    """

    receiver: int
    source: int
    at_slot: float
    duration_slots: float
    gain_factor: float
    symmetric: bool = True

    def __post_init__(self) -> None:
        if self.receiver == self.source:
            raise ValueError("a link needs two distinct stations")
        if self.at_slot <= 0.0:
            raise ValueError("a fade must start strictly after the start")
        if self.duration_slots <= 0.0:
            raise ValueError("fade duration must be positive")
        if self.gain_factor <= 0.0:
            raise ValueError("gain factor must be positive")


@dataclass(frozen=True)
class ClockStep:
    """A clock fault: the oscillator steps (and may change rate).

    The station's clock jumps by ``offset_slots`` at ``at_slot`` —
    every neighbour's fitted model of it (and its models of them) are
    suddenly wrong, so the station misses published windows until the
    Section 7 rendezvous machinery re-fits the affected models
    ``refit_after_slots`` later.

    Attributes:
        station: whose clock faults.
        at_slot: fault instant (slots).
        offset_slots: step applied to the clock reading, in slots.
        rate_error_delta_ppm: additional rate error, parts per million.
        refit_after_slots: delay before the affected neighbour pairs
            re-exchange readings and refit (detection latency).
    """

    station: int
    at_slot: float
    offset_slots: float
    rate_error_delta_ppm: float = 0.0
    refit_after_slots: float = 5.0

    def __post_init__(self) -> None:
        if self.at_slot <= 0.0:
            raise ValueError("a clock step must happen after the start")
        if self.offset_slots == 0.0 and self.rate_error_delta_ppm == 0.0:
            raise ValueError("a clock fault must change offset or rate")
        if self.refit_after_slots <= 0.0:
            raise ValueError("refit delay must be positive")


@dataclass(frozen=True)
class PacketCorruption:
    """An episode during which receptions are independently corrupted.

    Models bursty decoder-level damage (impulse noise, partial jamming)
    the SIR criterion cannot see: each otherwise-successful reception
    inside the episode is lost with the given probability, drawn from a
    seed-tree-derived stream.

    Attributes:
        at_slot: episode start (slots).
        duration_slots: episode length.
        probability: per-reception corruption probability.
    """

    at_slot: float
    duration_slots: float
    probability: float

    def __post_init__(self) -> None:
        if self.at_slot <= 0.0:
            raise ValueError("corruption must start after the start")
        if self.duration_slots <= 0.0:
            raise ValueError("corruption duration must be positive")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("corruption probability must be in (0, 1]")


FaultSpec = Union[StationCrash, StationChurn, LinkFade, ClockStep, PacketCorruption]

#: Concrete event kinds a compiled plan contains.
_KINDS = (
    "down",
    "up",
    "reroute",
    "fade",
    "clock_step",
    "refit",
    "corrupt_on",
    "corrupt_off",
)


@dataclass(frozen=True)
class FaultEvent:
    """One concrete, fully resolved fault action.

    Attributes:
        at_slot: when the injector applies it (slots).
        kind: one of ``down``, ``up``, ``reroute``, ``fade``,
            ``clock_step``, ``refit``, ``corrupt_on``, ``corrupt_off``.
        station: subject station (``down``/``up``/``clock_step``/
            ``refit``), or the fade receiver; -1 when inapplicable.
        peer: the fade source; -1 when inapplicable.
        value: kind-specific magnitude (fade factor, clock step in
            slots, corruption probability).
        extra: secondary magnitude (clock rate delta in ppm; 1.0 on a
            symmetric fade, 0.0 otherwise).
        seed: seed-tree-derived seed for any randomness the handler
            draws (refit jitter, corruption stream); 0 when unused.
    """

    at_slot: float
    kind: str
    station: int = -1
    peer: int = -1
    value: float = 0.0
    extra: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault event kind {self.kind!r}")
        if self.at_slot < 0.0:
            raise ValueError("fault events cannot predate the run")


@dataclass(frozen=True)
class FaultPlan:
    """A compiled, time-sorted fault schedule.

    Attributes:
        events: concrete events in application order (time, then
            compilation order for ties).
        reroute_delay_slots: detection latency between a lifecycle
            event and the routing re-derivation it triggers.
    """

    events: Tuple[FaultEvent, ...] = ()
    reroute_delay_slots: float = 2.0

    def __post_init__(self) -> None:
        if self.reroute_delay_slots < 0.0:
            raise ValueError("reroute delay must be non-negative")
        ordered = tuple(
            sorted(
                self.events,
                key=lambda event: event.at_slot,
            )
        )
        object.__setattr__(self, "events", ordered)

    @property
    def is_empty(self) -> bool:
        """Whether the plan schedules nothing (zero-cost installation)."""
        return not self.events


def _expand_crash(
    crash: StationCrash, delay: float, events: List[FaultEvent]
) -> None:
    events.append(FaultEvent(at_slot=crash.at_slot, kind="down", station=crash.station))
    events.append(FaultEvent(at_slot=crash.at_slot + delay, kind="reroute"))
    if crash.recover_after_slots is not None:
        up_at = crash.at_slot + crash.recover_after_slots
        events.append(FaultEvent(at_slot=up_at, kind="up", station=crash.station))
        events.append(FaultEvent(at_slot=up_at + delay, kind="reroute"))


def _expand_churn(
    churn: StationChurn,
    index: int,
    seed: int,
    station_count: int,
    delay: float,
    events: List[FaultEvent],
) -> None:
    """Sample the churn episode into concrete crash/recover pairs.

    All draws come from one generator seeded by the spec's position in
    the spec list — deterministic, platform-independent, and oblivious
    to worker count.  A station already down at a sampled instant is
    skipped (the crash hits nothing), which keeps the down/up pairing
    well-formed without resampling loops.
    """
    rng = np.random.default_rng(derive_seed(seed, "churn", index))
    pool = (
        tuple(churn.stations)
        if churn.stations is not None
        else tuple(range(station_count))
    )
    up_times = {station: 0.0 for station in pool}
    at = churn.start_slot
    while True:
        at += float(rng.exponential(1.0 / churn.rate_per_slot))
        if at >= churn.end_slot:
            break
        station = int(pool[int(rng.integers(0, len(pool)))])
        downtime = float(rng.exponential(churn.mean_downtime_slots))
        if up_times[station] > at:
            continue  # still down from an earlier crash
        _expand_crash(
            StationCrash(
                station=station, at_slot=at, recover_after_slots=downtime
            ),
            delay,
            events,
        )
        up_times[station] = at + downtime


def compile_plan(
    specs: Sequence[FaultSpec],
    seed: int,
    station_count: int,
    reroute_delay_slots: float = 2.0,
) -> FaultPlan:
    """Compile declarative specs into a concrete :class:`FaultPlan`.

    Args:
        specs: the declarative fault specifications.
        seed: seed-tree root for every stochastic expansion.
        station_count: network size, for validation and churn pools.
        reroute_delay_slots: detection latency before each lifecycle
            event's routing re-derivation.
    """
    if station_count < 1:
        raise ValueError("need at least one station")
    events: List[FaultEvent] = []
    for index, spec in enumerate(specs):
        if isinstance(spec, StationCrash):
            _check_station(spec.station, station_count)
            _expand_crash(spec, reroute_delay_slots, events)
        elif isinstance(spec, StationChurn):
            if spec.stations is not None:
                for station in spec.stations:
                    _check_station(station, station_count)
            _expand_churn(
                spec, index, seed, station_count, reroute_delay_slots, events
            )
        elif isinstance(spec, LinkFade):
            _check_station(spec.receiver, station_count)
            _check_station(spec.source, station_count)
            symmetric = 1.0 if spec.symmetric else 0.0
            events.append(
                FaultEvent(
                    at_slot=spec.at_slot,
                    kind="fade",
                    station=spec.receiver,
                    peer=spec.source,
                    value=spec.gain_factor,
                    extra=symmetric,
                )
            )
            events.append(
                FaultEvent(
                    at_slot=spec.at_slot + spec.duration_slots,
                    kind="fade",
                    station=spec.receiver,
                    peer=spec.source,
                    value=1.0,
                    extra=symmetric,
                )
            )
        elif isinstance(spec, ClockStep):
            _check_station(spec.station, station_count)
            events.append(
                FaultEvent(
                    at_slot=spec.at_slot,
                    kind="clock_step",
                    station=spec.station,
                    value=spec.offset_slots,
                    extra=spec.rate_error_delta_ppm,
                )
            )
            events.append(
                FaultEvent(
                    at_slot=spec.at_slot + spec.refit_after_slots,
                    kind="refit",
                    station=spec.station,
                    seed=derive_seed(seed, "refit", index, spec.station),
                )
            )
        elif isinstance(spec, PacketCorruption):
            events.append(
                FaultEvent(
                    at_slot=spec.at_slot,
                    kind="corrupt_on",
                    value=spec.probability,
                    seed=derive_seed(seed, "corruption", index),
                )
            )
            events.append(
                FaultEvent(
                    at_slot=spec.at_slot + spec.duration_slots,
                    kind="corrupt_off",
                )
            )
        else:
            raise TypeError(f"unknown fault spec {type(spec).__name__}")
    return FaultPlan(
        events=tuple(events), reroute_delay_slots=reroute_delay_slots
    )


def _check_station(station: int, station_count: int) -> None:
    if not 0 <= station < station_count:
        raise ValueError(
            f"station {station} out of range for a {station_count}-station network"
        )
