"""Experiment harness: uniform report structure and registry.

Every experiment module exposes the normalized entry point
``run(params: ExperimentParams) -> ExperimentResult`` (the
:func:`register` decorator wraps each module's implementation into this
signature).  The legacy keyword-argument form ``run(**params)`` keeps
working as a thin shim for one release.  A report carries the
experiment id (the DESIGN.md index), a table of rows (what the paper's
figure/table showed), and free-form notes recording paper-claimed
versus measured values — the same rows EXPERIMENTS.md summarises.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ExperimentParams",
    "ExperimentReport",
    "ExperimentResult",
    "register",
    "get_experiment",
    "all_experiments",
    "run_many",
]


class ExperimentParams:
    """Uniform parameter bundle for experiment entry points.

    Wraps the keyword parameters of one experiment invocation so every
    ``run`` shares the signature ``run(params) -> ExperimentResult``::

        report = run(ExperimentParams(station_count=40, seed=31))

    Args:
        values: the experiment's keyword parameters, verbatim.
    """

    def __init__(self, **values: Any) -> None:
        self._values = dict(values)

    def to_kwargs(self) -> Dict[str, Any]:
        """The bundled parameters as a plain keyword dict (a copy)."""
        return dict(self._values)

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExperimentParams):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{key}={value!r}" for key, value in sorted(self._values.items())
        )
        return f"ExperimentParams({inner})"


@dataclass
class ExperimentReport:
    """Structured outcome of one experiment.

    Attributes:
        experiment_id: index key from DESIGN.md (e.g. ``"F1"``).
        title: human-readable experiment title.
        columns: column names of the result table.
        rows: result rows (tuples aligned with ``columns``).
        claims: mapping of claim name to (paper value, measured value).
        notes: anything a reader of EXPERIMENTS.md should know.
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Tuple] = field(default_factory=list)
    claims: Dict[str, Tuple[Any, Any]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def claim(self, name: str, paper: Any, measured: Any) -> None:
        """Record a paper-vs-measured comparison line."""
        self.claims[name] = (paper, measured)

    def format(self) -> str:
        """Render the report as aligned text (benches print this)."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            table = [tuple(str(c) for c in self.columns)] + [
                tuple(_fmt(v) for v in row) for row in self.rows
            ]
            widths = [
                max(len(row[i]) for row in table) for i in range(len(self.columns))
            ]
            for index, row in enumerate(table):
                lines.append(
                    "  " + "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
                )
                if index == 0:
                    lines.append("  " + "  ".join("-" * w for w in widths))
        for name, (paper, measured) in self.claims.items():
            lines.append(f"  claim [{name}]: paper={_fmt(paper)} measured={_fmt(measured)}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


#: Alias making the normalized entry-point signature read naturally:
#: ``run(params: ExperimentParams) -> ExperimentResult``.
ExperimentResult = ExperimentReport


_REGISTRY: Dict[str, Callable[..., ExperimentReport]] = {}


def register(experiment_id: str) -> Callable:
    """Decorator registering an experiment's ``run`` under its id.

    The decorated implementation keeps its keyword signature; the
    registered (and module-exported) callable is a wrapper with the
    normalized entry-point shape — it accepts a single
    :class:`ExperimentParams` positional argument, or (as a thin
    deprecated shim, kept working for one release) the legacy
    ``run(**params)`` keyword form.  The wrapper carries
    ``__accepts_params__ = True`` so tooling can verify the contract.
    """

    def decorator(func: Callable[..., ExperimentReport]) -> Callable:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")

        @functools.wraps(func)
        def run(*args: Any, **kwargs: Any) -> ExperimentReport:
            if args and isinstance(args[0], ExperimentParams):
                if len(args) > 1 or kwargs:
                    raise TypeError(
                        "pass either one ExperimentParams or keyword "
                        "arguments, not both"
                    )
                return func(**args[0].to_kwargs())
            if args:
                raise TypeError(
                    f"{experiment_id} takes an ExperimentParams bundle or "
                    "keyword arguments; positional values are not accepted"
                )
            return func(**kwargs)

        run.__accepts_params__ = True
        run.experiment_id = experiment_id
        _REGISTRY[experiment_id] = run
        return run

    return decorator


def get_experiment(experiment_id: str) -> Callable[..., ExperimentReport]:
    """Look up an experiment's run callable by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")


def all_experiments() -> Dict[str, Callable[..., ExperimentReport]]:
    """All registered experiments, keyed by id."""
    return dict(_REGISTRY)


def run_many(
    task_specs: Sequence[Any],
    jobs: int = 1,
    progress: Optional[Callable[[int, int, Any], None]] = None,
) -> List[Any]:
    """Execute a list of :class:`repro.parallel.task.TaskSpec` over the
    worker pool, preserving spec order in the returned results.

    This is the single funnel experiment modules use for their inner
    fan-out (per-load, per-replication, ...): at ``jobs=1`` the specs
    run inline through the exact same task layer, so pooled and serial
    results are bit-identical by construction.  Imported lazily so the
    experiment registry has no import-time dependency on the pool.
    """
    from repro.parallel.pool import run_tasks

    return run_tasks(task_specs, jobs=jobs, progress=progress)
