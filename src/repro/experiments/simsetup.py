"""Shared setup helpers for the simulation-driven experiments."""

from __future__ import annotations

import warnings
from typing import Optional, Tuple, Union

from repro.net.network import (
    MacFactory,
    Network,
    NetworkConfig,
    NetworkResult,
    build_network,
)
from repro.net.traffic import PoissonTraffic
from repro.obs.api import Instrumentation
from repro.propagation.geometry import uniform_disk
from repro.propagation.models import PropagationModel
from repro.sim.streams import RandomStreams

__all__ = ["standard_network", "add_uniform_poisson", "run_loaded_network"]


def _fold_deprecated_factory(
    mac: Union[str, MacFactory, None], mac_factory: Optional[MacFactory]
) -> Union[str, MacFactory, None]:
    """Collapse the deprecated ``mac_factory=`` alias into ``mac``."""
    if mac_factory is None:
        return mac
    if mac is not None:
        raise ValueError(
            "pass either mac= or the deprecated mac_factory=, not both"
        )
    warnings.warn(
        "mac_factory= is deprecated; pass the factory (or a registered "
        "MAC name) as mac=",
        DeprecationWarning,
        stacklevel=3,
    )
    return mac_factory


def standard_network(
    station_count: int,
    placement_seed: int,
    config: Optional[NetworkConfig] = None,
    mac: Union[str, MacFactory, None] = None,
    model: Optional[PropagationModel] = None,
    radius: float = 1000.0,
    trace: bool = True,
    instrumentation: Optional[Instrumentation] = None,
    mac_factory: Optional[MacFactory] = None,
) -> Network:
    """A uniform-disk network with the repository's default design.

    ``mac`` is a registered MAC name (see :func:`repro.mac.mac_names`)
    or an explicit per-station factory; ``mac_factory`` is the
    deprecated alias for the factory form.
    """
    mac = _fold_deprecated_factory(mac, mac_factory)
    placement = uniform_disk(station_count, radius=radius, seed=placement_seed)
    return build_network(
        placement,
        config or NetworkConfig(),
        model=model,
        mac=mac,
        trace=trace,
        instrumentation=instrumentation,
    )


def add_uniform_poisson(
    network: Network,
    packets_per_slot: float,
    traffic_seed: int,
    size_bits: Optional[float] = None,
) -> None:
    """Attach a Poisson source to every station: uniform destinations.

    Args:
        packets_per_slot: per-station arrival rate in packets per slot
            time (the natural load unit of the scheduling analysis).
        traffic_seed: seed for the shared traffic stream.
        size_bits: packet size (defaults to the network's configured
            size so that packets fill a quarter slot exactly).
    """
    if packets_per_slot <= 0.0:
        raise ValueError("load must be positive")
    rng = RandomStreams(traffic_seed).stream("traffic")
    rate = packets_per_slot / network.budget.slot_time
    size = size_bits if size_bits is not None else network.config.packet_size_bits
    destinations = list(range(network.station_count))
    for origin in range(network.station_count):
        network.add_traffic(
            PoissonTraffic(
                origin=origin,
                rate=rate,
                destinations=destinations,
                size_bits=size,
                rng=rng,
            )
        )


def run_loaded_network(
    station_count: int,
    packets_per_slot: float,
    duration_slots: float,
    placement_seed: int = 7,
    traffic_seed: int = 99,
    config: Optional[NetworkConfig] = None,
    mac: Union[str, MacFactory, None] = None,
    trace: bool = True,
    instrumentation: Optional[Instrumentation] = None,
    mac_factory: Optional[MacFactory] = None,
) -> Tuple[Network, "NetworkResult"]:
    """Build, load, and run a standard network; returns (network, result)."""
    mac = _fold_deprecated_factory(mac, mac_factory)
    network = standard_network(
        station_count,
        placement_seed,
        config,
        mac,
        trace=trace,
        instrumentation=instrumentation,
    )
    add_uniform_poisson(network, packets_per_slot, traffic_seed)
    result = network.run(duration_slots * network.budget.slot_time)
    return network, result
