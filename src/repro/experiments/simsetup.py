"""Shared setup helpers for the simulation-driven experiments."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.network import (
    MacFactory,
    Network,
    NetworkConfig,
    NetworkResult,
    build_network,
)
from repro.net.traffic import PoissonTraffic
from repro.obs.api import Instrumentation
from repro.propagation.geometry import uniform_disk
from repro.propagation.models import PropagationModel
from repro.sim.streams import RandomStreams

__all__ = ["standard_network", "add_uniform_poisson", "run_loaded_network"]


def standard_network(
    station_count: int,
    placement_seed: int,
    config: Optional[NetworkConfig] = None,
    mac_factory: Optional[MacFactory] = None,
    model: Optional[PropagationModel] = None,
    radius: float = 1000.0,
    trace: bool = True,
    instrumentation: Optional[Instrumentation] = None,
) -> Network:
    """A uniform-disk network with the repository's default design."""
    placement = uniform_disk(station_count, radius=radius, seed=placement_seed)
    return build_network(
        placement,
        config or NetworkConfig(),
        model=model,
        mac_factory=mac_factory,
        trace=trace,
        instrumentation=instrumentation,
    )


def add_uniform_poisson(
    network: Network,
    packets_per_slot: float,
    traffic_seed: int,
    size_bits: Optional[float] = None,
) -> None:
    """Attach a Poisson source to every station: uniform destinations.

    Args:
        packets_per_slot: per-station arrival rate in packets per slot
            time (the natural load unit of the scheduling analysis).
        traffic_seed: seed for the shared traffic stream.
        size_bits: packet size (defaults to the network's configured
            size so that packets fill a quarter slot exactly).
    """
    if packets_per_slot <= 0.0:
        raise ValueError("load must be positive")
    rng = RandomStreams(traffic_seed).stream("traffic")
    rate = packets_per_slot / network.budget.slot_time
    size = size_bits if size_bits is not None else network.config.packet_size_bits
    destinations = list(range(network.station_count))
    for origin in range(network.station_count):
        network.add_traffic(
            PoissonTraffic(
                origin=origin,
                rate=rate,
                destinations=destinations,
                size_bits=size,
                rng=rng,
            )
        )


def run_loaded_network(
    station_count: int,
    packets_per_slot: float,
    duration_slots: float,
    placement_seed: int = 7,
    traffic_seed: int = 99,
    config: Optional[NetworkConfig] = None,
    mac_factory: Optional[MacFactory] = None,
    trace: bool = True,
    instrumentation: Optional[Instrumentation] = None,
) -> Tuple[Network, "NetworkResult"]:
    """Build, load, and run a standard network; returns (network, result)."""
    network = standard_network(
        station_count,
        placement_seed,
        config,
        mac_factory,
        trace=trace,
        instrumentation=instrumentation,
    )
    add_uniform_poisson(network, packets_per_slot, traffic_seed)
    result = network.run(duration_slots * network.budget.slot_time)
    return network, result
