"""Configuration, orchestration, and the reproflow CLI driver."""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from tools.reproflow.apilock import run_api_pass, write_api_lock
from tools.reproflow.findings import (
    Baseline,
    Finding,
    filter_suppressed,
    findings_to_json,
    format_findings,
    load_baseline,
)
from tools.reproflow.forksafety import run_fork_pass
from tools.reproflow.project import Project, load_project
from tools.reproflow.schema import (
    extract_event_schemas,
    run_schema_pass,
    write_schema_lock,
)
from tools.reproflow.seeds import run_seeds_pass

__all__ = ["PASSES", "ReproflowConfig", "analyze", "main", "write_locks"]

#: The four interprocedural passes, in report order.
PASSES = ("seeds", "schema", "fork", "api")


@dataclass
class ReproflowConfig:
    """Where the project lives and what the passes should trust.

    The defaults describe the real repository; tests point the same
    analyzer at synthetic fixture packages by overriding ``src_root``
    and the module names.
    """

    #: the package directory to analyse (contains ``__init__.py``).
    src_root: Path = Path("src/repro")
    #: dotted package name (defaults to the directory name).
    package: str = "repro"
    #: module holding the frozen event dataclasses.
    events_module: str = "repro.obs.events"
    #: modules that ARE the sanctioned seeding machinery (not analysed
    #: by the seeds pass).
    trusted_seed_modules: Tuple[str, ...] = (
        "repro.sim.streams",
        "repro.parallel.seedtree",
    )
    #: fork-safety reachability roots: ``module:function`` entries, or
    #: bare module names meaning "every top-level function".
    entry_points: Tuple[str, ...] = (
        "repro.parallel.task:execute_task",
        "repro.parallel.task:_run_experiment",
        "repro.parallel.task:_run_function",
        "repro.parallel.task:_run_scenario",
        "repro.parallel.pool:_worker_main",
        "repro.parallel.cache:ResultCache.verify",
        "repro.parallel.service:SweepService.submit_specs",
        "repro.parallel.service:SweepService.handle_request",
    )
    #: extra fork-safety roots (qualified names).
    extra_fork_roots: Tuple[str, ...] = (
        "repro.experiments.simsetup:run_loaded_network",
    )
    #: lock/baseline locations (resolved relative to the repo root).
    schema_lock: Path = Path("tools/reproflow/schema.lock")
    api_lock: Path = Path("tools/reproflow/api.lock")
    baseline: Path = Path("tools/reproflow/baseline.json")
    #: passes to run (all four by default).
    select: Tuple[str, ...] = PASSES
    #: extra paths whose inline suppressions should be honoured even
    #: though they are outside the package (unused — reserved).
    repo_root: Path = field(default_factory=Path.cwd)


def _load(config: ReproflowConfig) -> Project:
    return load_project(config.src_root, config.package)


def _raw_findings(project: Project, config: ReproflowConfig) -> List[Finding]:
    findings: List[Finding] = []
    if "seeds" in config.select:
        findings.extend(
            run_seeds_pass(project, trusted_modules=config.trusted_seed_modules)
        )
    if "schema" in config.select:
        findings.extend(
            run_schema_pass(project, config.events_module, config.schema_lock)
        )
    if "fork" in config.select:
        findings.extend(
            run_fork_pass(
                project,
                entry_points=config.entry_points,
                extra_roots=config.extra_fork_roots,
            )
        )
    if "api" in config.select:
        findings.extend(run_api_pass(project, config.api_lock))
    return findings


def analyze(
    config: ReproflowConfig,
    baseline: Optional[Baseline] = None,
) -> List[Finding]:
    """Load the project, run the selected passes, apply suppressions."""
    project = _load(config)
    raw = _raw_findings(project, config)
    sources: Dict[str, Sequence[str]] = {
        info.rel_path(project.root): info.source_lines
        for info in project.modules.values()
    }
    if baseline is None:
        baseline = load_baseline(config.baseline)
    selected = (
        None if tuple(config.select) == PASSES else set(config.select)
    )
    kept, hygiene = filter_suppressed(
        raw, sources, baseline=baseline, selected_passes=selected
    )
    return kept + hygiene


def write_locks(config: ReproflowConfig) -> List[str]:
    """Regenerate both lock files from the current tree."""
    project = _load(config)
    written: List[str] = []
    info = project.modules.get(config.events_module)
    if info is not None:
        schemas, _order, error = extract_event_schemas(info)
        if error is None:
            write_schema_lock(config.schema_lock, schemas)
            written.append(config.schema_lock.as_posix())
    write_api_lock(config.api_lock, project)
    written.append(config.api_lock.as_posix())
    return written


def find_repo_root(start: Optional[Path] = None) -> Optional[Path]:
    """Walk up from ``start`` to the directory holding tools/reproflow."""
    current = (start or Path.cwd()).resolve()
    for candidate in [current, *current.parents]:
        if (candidate / "tools" / "reproflow").is_dir() and (
            candidate / "src" / "repro"
        ).is_dir():
            return candidate
    return None


def config_for_repo(root: Path) -> ReproflowConfig:
    """The standard configuration anchored at a repo root."""
    return ReproflowConfig(
        src_root=root / "src" / "repro",
        schema_lock=root / "tools" / "reproflow" / "schema.lock",
        api_lock=root / "tools" / "reproflow" / "api.lock",
        baseline=root / "tools" / "reproflow" / "baseline.json",
        repo_root=root,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m tools.reproflow``."""
    parser = argparse.ArgumentParser(
        prog="reproflow",
        description=(
            "Whole-program static analysis: seed provenance, event-schema "
            "contracts, fork-safety, and the public-API lock."
        ),
    )
    parser.add_argument(
        "--root", metavar="DIR", default=None,
        help="repository root (default: walk up from the cwd)",
    )
    parser.add_argument(
        "--select", metavar="PASSES",
        help=f"comma-separated subset of passes (default: {','.join(PASSES)})",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the findings as JSON"
    )
    parser.add_argument(
        "--write-locks", action="store_true",
        help="regenerate schema.lock and api.lock from the current tree",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline file (default: tools/reproflow/baseline.json)",
    )
    parser.add_argument(
        "--list-passes", action="store_true", help="list passes and exit"
    )
    args = parser.parse_args(argv)

    if args.list_passes:
        for pass_id in PASSES:
            print(pass_id)
        return 0

    root = Path(args.root).resolve() if args.root else find_repo_root()
    if root is None or not (root / "src" / "repro").is_dir():
        print(
            "reproflow: cannot find the repository root (need src/repro "
            "and tools/reproflow); pass --root DIR",
            file=sys.stderr,
        )
        return 2
    config = config_for_repo(root)
    if args.baseline:
        config.baseline = Path(args.baseline)
    if args.select:
        wanted = tuple(
            p.strip() for p in args.select.split(",") if p.strip()
        )
        unknown = set(wanted) - set(PASSES)
        if unknown:
            parser.error(f"unknown passes: {', '.join(sorted(unknown))}")
        config.select = wanted

    if args.write_locks:
        for path in write_locks(config):
            print(f"wrote {path}")
        return 0

    try:
        baseline = load_baseline(config.baseline)
    except (ValueError, KeyError) as exc:
        print(f"reproflow: bad baseline file: {exc}", file=sys.stderr)
        return 2
    findings = analyze(config, baseline=baseline)
    if args.json:
        print(findings_to_json(findings, extra={"root": str(root)}))
    elif findings:
        print(format_findings(findings))
    if findings:
        print(f"reproflow: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if not args.json:
        print("reproflow: clean")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
