"""File discovery, suppression handling, and the CLI driver."""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from tools.reprolint.rules import ALL_RULES, Rule, Violation

__all__ = ["lint_source", "lint_file", "lint_paths", "main"]

_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)
_SKIP_FILE = re.compile(r"#\s*reprolint:\s*skip-file", re.IGNORECASE)
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist", ".eggs"}


def _suppressed(violation: Violation, lines: Sequence[str]) -> bool:
    """Whether a ``# noqa`` comment on the flagged line covers it."""
    if not 1 <= violation.line <= len(lines):
        return False
    match = _NOQA.search(lines[violation.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True  # blanket noqa
    wanted = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return violation.code in wanted


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint a source string as though it lived at ``path``.

    The path matters: several rules scope themselves by location (e.g.
    REP002 only applies under ``src/``).
    """
    lines = source.splitlines()
    for line in lines[:5]:
        if _SKIP_FILE.search(line):
            return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="REP000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    violations: List[Violation] = []
    for rule in rules if rules is not None else ALL_RULES:
        if not rule.applies_to(path):
            continue
        violations.extend(rule.check(tree, path))
    violations = [v for v in violations if not _suppressed(v, lines)]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def lint_file(
    path: Path, rules: Optional[Sequence[Rule]] = None
) -> List[Violation]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path.as_posix(), rules=rules)


def _discover(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return files


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> List[Violation]:
    """Lint every ``.py`` file under the given files/directories."""
    violations: List[Violation] = []
    for path in _discover(paths):
        violations.extend(lint_file(path, rules=rules))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m tools.reprolint src tests benchmarks``."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Domain-specific determinism/correctness lints for repro.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or dirs")
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.CODE}  {rule.SUMMARY}")
        return 0

    rules: Optional[Sequence[Rule]] = None
    if args.select:
        wanted = {c.strip().upper() for c in args.select.split(",") if c.strip()}
        unknown = wanted - {rule.CODE for rule in ALL_RULES}
        if unknown:
            parser.error(f"unknown rule codes: {', '.join(sorted(unknown))}")
        rules = [rule for rule in ALL_RULES if rule.CODE in wanted]

    try:
        violations = lint_paths(args.paths or ["src"], rules=rules)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"reprolint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
