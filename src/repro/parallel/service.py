"""The warm sweep service: one cache, many clients, no repeated work.

``repro serve --cache DIR`` runs a foreground daemon that accepts sweep
submissions over a local Unix socket and answers them from a shared
:class:`~repro.parallel.cache.ResultCache`.  Three layers:

* :class:`SweepService` — the in-process scheduler.  Each submission is
  partitioned into **cache hits** (streamed back instantly), **in-flight
  joins** (an identical spec — same content key — is already executing
  for another client; the submission waits for that one execution
  instead of duplicating it), and **misses** (claimed, scheduled over
  the worker pool, written back to the cache on completion).  The
  in-flight registry is keyed by :func:`~repro.parallel.task.spec_digest`,
  so deduplication follows the same key discipline as the cache itself.
* :class:`SweepServer` / :func:`serve` — a threading Unix-socket server
  speaking newline-delimited JSON: one request object in, a stream of
  ``{"event": ...}`` objects out (``plan``, ``task`` progress lines,
  then ``done`` or ``error``).
* :func:`submit_request` — the matching client, used by ``repro
  submit`` and the tests.

Traced submissions (``"trace": true``) run their misses inline under an
ambient :class:`~repro.obs.api.Instrumentation` whose sinks are the
existing JSONL machinery (:class:`~repro.obs.sinks.JsonlSink` writing
under ``DIR/traces/``) plus a :class:`~repro.obs.metrics.MetricTimelines`
whose counters are streamed back in the ``done`` event.  Ambient
instrumentation is process-global, so traced executions are serialised;
untraced executions fan out through the spawn pool as usual.

Wall-clock use in this module times *host* execution of completed
submissions for reporting only (the same argument as the pool's
timeout clock); no wall-clock value ever reaches simulation state.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.parallel.cache import ResultCache, resolve_cache
from repro.parallel.checkpoint import result_to_record
from repro.parallel.pool import run_tasks
from repro.parallel.sweep import (
    SweepPlan,
    build_sweep_tasks,
    default_sweep_values,
    sweep_parameter,
)
from repro.parallel.task import TaskResult, TaskSpec, results_digest

__all__ = [
    "ServiceProgress",
    "SweepService",
    "SweepServer",
    "serve",
    "submit_request",
]

#: ``progress(done, total, result, source)`` per completed task, where
#: ``source`` is ``"cache"``, ``"joined"``, or ``"run"``.
ServiceProgress = Callable[[int, int, TaskResult, str], None]


class _Flight:
    """One in-flight execution of a content key, awaited by joiners."""

    __slots__ = ("done", "result")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Optional[TaskResult] = None


class SweepService:
    """Shared scheduler: cache first, join in-flight work, run the rest.

    Args:
        cache: the persistent store (path or open
            :class:`~repro.parallel.cache.ResultCache`).
        jobs: worker processes per submission's miss batch; ``1`` runs
            misses inline (serialised across concurrent submissions,
            since inline execution shares this process).
        watchdog_s: fallback per-task wall-clock limit for pooled
            misses.
    """

    def __init__(
        self,
        cache: Any,
        jobs: int = 1,
        watchdog_s: Optional[float] = None,
    ) -> None:
        store = resolve_cache(cache)
        if store is None:
            raise ValueError("the sweep service needs a cache")
        self.cache: ResultCache = store
        self.jobs = max(1, int(jobs))
        self.watchdog_s = watchdog_s
        self._registry_lock = threading.Lock()
        self._in_flight: Dict[str, _Flight] = {}
        self._inline_lock = threading.Lock()
        self._trace_serial = 0
        self.submissions = 0
        self.deduplicated = 0

    # -- scheduling ----------------------------------------------------

    def submit_specs(
        self,
        specs: List[TaskSpec],
        progress: Optional[ServiceProgress] = None,
        trace: bool = False,
    ) -> Tuple[List[TaskResult], Dict[str, Any]]:
        """Execute a task list against the shared cache.

        Returns the results in spec order plus a summary mapping
        (hit/joined/executed counts, results digest, and — for traced
        submissions — the trace file path and timeline counters).
        """
        with self._registry_lock:
            self.submissions += 1
        total = len(specs)
        results: Dict[int, TaskResult] = {}
        done = 0

        def report(index: int, result: TaskResult, source: str) -> None:
            nonlocal done
            done += 1
            results[index] = result
            if progress is not None:
                progress(done, total, result, source)

        to_run: List[Tuple[int, TaskSpec]] = []
        joined: List[Tuple[int, TaskSpec, _Flight]] = []
        claimed: Dict[str, _Flight] = {}
        for index, spec in enumerate(specs):
            hit = self.cache.get(spec)
            if hit is not None:
                report(index, hit, "cache")
                continue
            key = self.cache.key_for(spec)
            with self._registry_lock:
                flight = self._in_flight.get(key)
                if flight is None and key not in claimed:
                    flight = _Flight()
                    self._in_flight[key] = flight
                    claimed[key] = flight
                    to_run.append((index, spec))
                    continue
                if flight is None:
                    flight = claimed[key]  # duplicate within this batch
                self.deduplicated += 1
            joined.append((index, spec, flight))

        trace_summary: Optional[Dict[str, Any]] = None
        try:
            if to_run:
                run_specs = [spec for _index, spec in to_run]
                index_of = {spec.task_id: idx for idx, spec in to_run}
                key_of = {
                    spec.task_id: self.cache.key_for(spec)
                    for spec in run_specs
                }

                def on_run(_done: int, _total: int, result: TaskResult) -> None:
                    key = key_of[result.task_id]
                    flight = claimed[key]
                    flight.result = result
                    flight.done.set()
                    with self._registry_lock:
                        if self._in_flight.get(key) is flight:
                            del self._in_flight[key]
                    report(index_of[result.task_id], result, "run")

                if trace:
                    trace_summary = self._run_traced(run_specs, on_run)
                elif self.jobs <= 1:
                    # Inline execution shares this process; serialise so
                    # concurrent submissions cannot interleave sanitizer
                    # or ambient-instrumentation state.
                    with self._inline_lock:
                        run_tasks(
                            run_specs, jobs=1, progress=on_run,
                            cache=self.cache,
                        )
                else:
                    run_tasks(
                        run_specs,
                        jobs=self.jobs,
                        progress=on_run,
                        watchdog_s=self.watchdog_s,
                        cache=self.cache,
                    )
        finally:
            # Whatever happened, never strand a joiner: publish a
            # structured failure for any claimed flight still open.
            for key, flight in claimed.items():
                if not flight.done.is_set():
                    flight.result = None
                    flight.done.set()
                with self._registry_lock:
                    if self._in_flight.get(key) is flight:
                        del self._in_flight[key]

        for index, spec, flight in joined:
            flight.done.wait()
            shared = flight.result
            if shared is None:
                shared = TaskResult(
                    task_id=spec.task_id,
                    ok=False,
                    error="in-flight execution aborted before completing",
                )
            report(index, replace(shared, task_id=spec.task_id), "joined")

        ordered = [results[index] for index in range(total)]
        summary: Dict[str, Any] = {
            "total": total,
            "hits": total - len(to_run) - len(joined),
            "joined": len(joined),
            "executed": len(to_run),
            "errors": sum(1 for result in ordered if not result.ok),
            "results_digest": results_digest(ordered),
        }
        if trace_summary is not None:
            summary["trace"] = trace_summary
        return ordered, summary

    def _run_traced(
        self,
        run_specs: List[TaskSpec],
        on_run: Callable[[int, int, TaskResult], None],
    ) -> Dict[str, Any]:
        """Run misses inline under ambient JSONL + timeline sinks."""
        from repro.obs import (
            Instrumentation,
            JsonlSink,
            MetricTimelines,
            use_instrumentation,
        )

        traces_dir = os.path.join(self.cache.root, "traces")
        os.makedirs(traces_dir, exist_ok=True)
        with self._inline_lock:
            self._trace_serial += 1
            trace_path = os.path.join(
                traces_dir, f"trace-{os.getpid()}-{self._trace_serial}.jsonl"
            )
            timelines = MetricTimelines()
            instrumentation = Instrumentation(
                (timelines, JsonlSink(trace_path))
            )
            try:
                with use_instrumentation(instrumentation):
                    run_tasks(
                        run_specs, jobs=1, progress=on_run, cache=self.cache
                    )
            finally:
                instrumentation.close()
        return {
            "path": trace_path,
            "events": sum(timelines.kinds().values()),
            "hop_deliveries": timelines.hop_deliveries,
            "losses_total": timelines.losses_total,
        }

    # -- request handling ---------------------------------------------

    def handle_request(
        self,
        request: Dict[str, Any],
        emit: Callable[[Dict[str, Any]], None],
    ) -> None:
        """Answer one decoded request by streaming event objects."""
        op = request.get("op")
        if op == "ping":
            emit({"event": "done", "op": "ping"})
            return
        if op == "stats":
            emit({"event": "done", "op": "stats", "stats": self.cache.stats()})
            return
        if op != "sweep":
            emit({"event": "error", "message": f"unknown op {op!r}"})
            return
        try:
            specs = self._plan_specs(request)
        except (KeyError, TypeError, ValueError) as exc:
            emit({"event": "error", "message": str(exc)})
            return
        include_records = bool(request.get("records"))
        emit({"event": "plan", "total": len(specs)})
        started = time.monotonic()  # reprolint: disable=REP002

        def progress(
            done: int, total: int, result: TaskResult, source: str
        ) -> None:
            line = {
                "event": "task",
                "done": done,
                "total": total,
                "task_id": result.task_id,
                "source": source,
                "ok": result.ok,
                "payload_digest": result.payload_digest,
            }
            if include_records:
                line["record"] = result_to_record(result)
            emit(line)

        try:
            _results, summary = self.submit_specs(
                specs, progress=progress, trace=bool(request.get("trace"))
            )
        except Exception as exc:  # noqa: BLE001 - reported to the client
            emit({"event": "error", "message": f"{type(exc).__name__}: {exc}"})
            return
        summary["wall_s"] = round(
            time.monotonic() - started, 6  # reprolint: disable=REP002
        )
        emit({"event": "done", "op": "sweep", **summary})

    def _plan_specs(self, request: Dict[str, Any]) -> List[TaskSpec]:
        experiment = request["experiment"]
        parameter = sweep_parameter(experiment, request.get("parameter"))
        raw_values = request.get("values")
        if raw_values is None:
            values = default_sweep_values(experiment, parameter)
        else:
            values = tuple(
                tuple(value) if isinstance(value, list) else value
                for value in raw_values
            )
        plan = SweepPlan(
            experiment_id=experiment,
            parameter=parameter,
            values=values,
            replications=int(request.get("replications", 1)),
            root_seed=int(request.get("root_seed", 0)),
            base_params=request.get("base_params") or {},
            sanitize=bool(request.get("sanitize", False)),
        )
        return build_sweep_tasks(plan)


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a request line in, JSONL events out."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        raw = self.rfile.readline()
        if not raw:
            return

        def emit(event: Dict[str, Any]) -> None:
            self.wfile.write(
                (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
            )
            self.wfile.flush()

        try:
            request = json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError:
            emit({"event": "error", "message": "request is not valid JSON"})
            return
        try:
            self.server.service.handle_request(request, emit)  # type: ignore[attr-defined]
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client hung up mid-stream; nothing to salvage


class SweepServer(socketserver.ThreadingUnixStreamServer):
    """Threading Unix-socket server bound to one :class:`SweepService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, service: SweepService, socket_path: str) -> None:
        self.service = service
        self.socket_path = os.fspath(socket_path)
        if os.path.exists(self.socket_path):
            os.remove(self.socket_path)  # stale socket from a dead server
        super().__init__(self.socket_path, _Handler)

    def server_close(self) -> None:
        super().server_close()
        try:
            os.remove(self.socket_path)
        except FileNotFoundError:
            pass


def serve(
    cache: Any,
    socket_path: str,
    jobs: int = 1,
    watchdog_s: Optional[float] = None,
    ready: Optional[Callable[[SweepServer], None]] = None,
) -> None:
    """Run the sweep service in the foreground until interrupted.

    Args:
        cache: cache directory (or open store) backing the service.
        socket_path: Unix socket to listen on.
        jobs: worker processes per submission's miss batch.
        watchdog_s: fallback per-task limit for pooled misses.
        ready: called with the bound server before serving (tests use
            this to learn the server object; ``repro serve`` prints the
            socket path).
    """
    service = SweepService(cache, jobs=jobs, watchdog_s=watchdog_s)
    server = SweepServer(service, socket_path)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


def submit_request(
    socket_path: str,
    request: Dict[str, Any],
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> List[Dict[str, Any]]:
    """Send one request to a running server and collect its event stream.

    Returns every streamed event (the last one is ``done`` or
    ``error``); ``on_event`` sees each one as it arrives.
    """
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.connect(os.fspath(socket_path))
        stream = sock.makefile("rw", encoding="utf-8")
        stream.write(json.dumps(request, sort_keys=True) + "\n")
        stream.flush()
        events: List[Dict[str, Any]] = []
        for line in stream:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            events.append(event)
            if on_event is not None:
                on_event(event)
            if event.get("event") in ("done", "error"):
                break
        return events
