"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main, parse_overrides


class TestParseOverrides:
    def test_literals(self):
        overrides = parse_overrides(
            ["count=5", "rate=0.5", "flag=True", "counts=(100, 200)"]
        )
        assert overrides == {
            "count": 5,
            "rate": 0.5,
            "flag": True,
            "counts": (100, 200),
        }

    def test_string_fallback(self):
        assert parse_overrides(["name=free_space"]) == {"name": "free_space"}

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_overrides(["justakey"])


class TestCommands:
    def test_list_shows_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("F1", "T4", "T11", "A1"):
            assert experiment_id in out

    def test_run_fast_experiment(self, capsys):
        code = main(
            [
                "run",
                "F1",
                "--set", "mc_station_counts=(300,)",
                "--set", "mc_duty_cycles=(0.5,)",
                "--set", "trials=4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "F1:" in out
        assert "claim" in out

    def test_run_unknown_id_fails_cleanly(self, capsys):
        assert main(["run", "Z9"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_malformed_override_fails_cleanly(self, capsys):
        assert main(["run", "F1", "--set", "nonsense"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_design_command(self, capsys):
        assert main(["design", "--stations", "1e9", "--duty", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "processing_gain_db" in out

    def test_metro_command(self, capsys):
        assert main(["metro", "--stations", "1e6"]) == 0
        out = capsys.readouterr().out
        assert "raw_rate_mbps" in out

    def test_bench_command(self, capsys, tmp_path):
        import json

        output = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--stations", "20",
                "--load", "0.05",
                "--duration", "30",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events/s" in out
        payload = json.loads(output.read_text())
        scenario = payload["scenarios"][0]
        assert scenario["stations"] == 20
        assert scenario["events"] > 0
        assert scenario["events_per_s"] > 0

    def test_bench_command_is_sanitizer_clean(self, capsys):
        from repro.sim.sanitizer import sanitized

        with sanitized(True):
            assert main(["bench", "--stations", "15", "--duration", "20"]) == 0
        assert "events/s" in capsys.readouterr().out

    def test_verify_determinism_command(self, capsys):
        code = main(
            [
                "verify-determinism",
                "--stations", "25",
                "--duration-slots", "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "determinism verified" in out
        digests = [
            line.split()[-1] for line in out.splitlines() if "replay digest" in line
        ]
        assert len(digests) == 2 and digests[0] == digests[1]


class TestParallelCommands:
    TINY_T2 = [
        "--set", "station_count=10",
        "--set", "duration_slots=60.0",
        "--set", "load_packets_per_slot=0.2",
    ]

    def test_bench_rounds_reports_best(self, capsys):
        code = main(
            [
                "bench",
                "--stations", "15",
                "--duration", "20",
                "--rounds", "2",
            ]
        )
        assert code == 0
        assert "best of 2 rounds" in capsys.readouterr().out

    def test_bench_rejects_nonpositive_rounds(self, capsys):
        assert main(["bench", "--rounds", "0"]) == 2
        assert "--rounds" in capsys.readouterr().err

    def test_bench_suite_rejects_bad_jobs_list(self, capsys):
        assert main(["bench", "--suite", "--jobs", "0"]) == 2
        assert "worker-count" in capsys.readouterr().err

    def test_sweep_command_writes_report(self, capsys, tmp_path):
        import json

        output = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "--experiment", "T2",
                "--values", "0.2,0.3",
                "--output", str(output),
                *self.TINY_T2,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep T2 over receive_fractions" in out
        payload = json.loads(output.read_text())
        assert payload["experiment_id"] == "T2"
        assert payload["values"] == [0.2, 0.3]
        assert len(payload["tasks"]) == 2
        assert all(task["ok"] for task in payload["tasks"])

    def test_sweep_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["sweep", "--experiment", "Z9"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_sweep_unknown_parameter_fails_cleanly(self, capsys):
        code = main(
            ["sweep", "--experiment", "T2", "--parameter", "bogus"]
        )
        assert code == 2
        assert "bogus" in capsys.readouterr().err

    def test_run_all_parser_accepts_the_ci_invocation(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "run-all",
                "--jobs", "2",
                "--quick",
                "--no-progress",
                "--output", "suite-report.json",
            ]
        )
        assert args.jobs == 2
        assert args.quick and args.no_progress
        assert args.output == "suite-report.json"


class TestCacheCommands:
    TINY_T7 = [
        "--experiment", "T7",
        "--values", "0.05",
        "--set", "station_count=8",
        "--set", "duration_slots=60",
    ]

    def populate(self, cache_dir, capsys):
        assert main(["sweep", *self.TINY_T7, "--cache", str(cache_dir)]) == 0
        return capsys.readouterr()

    def test_sweep_cache_cold_then_warm(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = self.populate(cache_dir, capsys)
        assert "0/1 hits (0.0%)" in cold.err
        assert "1 written" in cold.err
        warm = self.populate(cache_dir, capsys)
        assert "1/1 hits (100.0%)" in warm.err
        assert "0 written" in warm.err
        assert warm.out == cold.out  # byte-identical report

    def test_stats_command(self, capsys, tmp_path):
        import json

        cache_dir = tmp_path / "cache"
        self.populate(cache_dir, capsys)
        assert main(["cache", "stats", str(cache_dir), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["quarantined"] == 0

    def test_verify_command(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        self.populate(cache_dir, capsys)
        assert main(["cache", "verify", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "checked" in out and "1" in out

    def test_verify_flags_corruption(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        self.populate(cache_dir, capsys)
        objects = cache_dir / "objects"
        entry = next(objects.glob("*/*.json"))
        entry.write_text("{torn write")
        assert main(["cache", "verify", str(cache_dir)]) == 1
        assert "corrupt_quarantined: 1" in capsys.readouterr().out

    def test_gc_command(self, capsys, tmp_path):
        import json

        cache_dir = tmp_path / "cache"
        self.populate(cache_dir, capsys)
        code = main(
            ["cache", "gc", str(cache_dir), "--max-age-s", "0", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["evicted"] == 1
        assert report["remaining_entries"] == 0

    def test_gc_requires_a_limit(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        self.populate(cache_dir, capsys)
        assert main(["cache", "gc", str(cache_dir)]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_cache_refuses_foreign_directory(self, capsys, tmp_path):
        (tmp_path / "precious.txt").write_text("data")
        assert main(["cache", "stats", str(tmp_path)]) == 2
        assert "no cache marker" in capsys.readouterr().err

    def test_submit_without_service_fails_cleanly(self, capsys, tmp_path):
        code = main(
            ["submit", "--socket", str(tmp_path / "none.sock"), "--op", "ping"]
        )
        assert code == 2
        assert "no sweep service listening" in capsys.readouterr().err

    def test_submit_sweep_requires_experiment(self, capsys, tmp_path):
        code = main(
            ["submit", "--socket", str(tmp_path / "x.sock"), "--op", "sweep"]
        )
        assert code == 2
        assert "--experiment" in capsys.readouterr().err

    def test_submit_round_trip_against_live_server(self, capsys, tmp_path):
        import threading

        from repro.parallel.cache import ResultCache
        from repro.parallel.service import SweepServer, SweepService

        cache_dir = tmp_path / "cache"
        self.populate(cache_dir, capsys)  # warm the cache first
        service = SweepService(ResultCache(str(cache_dir)), jobs=1)
        server = SweepServer(service, str(tmp_path / "sweep.sock"))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            code = main(
                ["submit", "--socket", server.socket_path, *self.TINY_T7]
            )
            captured = capsys.readouterr()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
        assert code == 0
        assert "hits: 1" in captured.err  # served entirely from the cache
        assert "results digest:" in captured.out


class TestTraceCommand:
    T7_TINY = [
        "--experiment", "T7",
        "--set", "station_count=12",
        "--set", "loads_packets_per_slot=(0.05,)",
        "--set", "duration_slots=30",
    ]

    def test_records_jsonl_and_binary_identically(self, capsys, tmp_path):
        jsonl = tmp_path / "t7.jsonl"
        binary = tmp_path / "t7.npz"
        code = main(
            ["trace", *self.T7_TINY,
             "--jsonl", str(jsonl), "--binary", str(binary), "--summary"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "T7:" in out
        assert "events across" in out

        assert main(["trace", "--read", str(jsonl)]) == 0
        from_jsonl = capsys.readouterr().out
        assert main(["trace", "--read", str(binary)]) == 0
        from_binary = capsys.readouterr().out
        assert from_jsonl == from_binary
        assert '"kind": "tx_start"' in from_jsonl

    def test_read_filters_by_kind_and_limit(self, capsys, tmp_path):
        jsonl = tmp_path / "t7.jsonl"
        assert main(["trace", *self.T7_TINY, "--jsonl", str(jsonl)]) == 0
        capsys.readouterr()
        code = main(
            ["trace", "--read", str(jsonl),
             "--kind", "delivered", "--limit", "3"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all('"kind": "delivered"' in line for line in lines)

    def test_requires_a_sink(self, capsys):
        assert main(["trace", "--experiment", "T7"]) == 2
        assert "--jsonl" in capsys.readouterr().err

    def test_requires_experiment_or_read(self, capsys):
        assert main(["trace"]) == 2
        assert "--experiment" in capsys.readouterr().err

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["trace", "--experiment", "Z9", "--jsonl", "x"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestReportCommand:
    def test_timeline_duty_renders_per_station_series(self, capsys):
        code = main(
            ["report", "--timeline", "duty",
             "--stations", "12", "--duration-slots", "60"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "duty timeline: 12 stations" in out
        assert "s000 |" in out and "s011 |" in out
        assert "duty cycle across stations: mean" in out

    def test_timeline_loss_and_queue_render(self, capsys):
        for metric in ("loss", "queue", "sir"):
            code = main(
                ["report", "--timeline", metric,
                 "--stations", "8", "--duration-slots", "40"]
            )
            assert code == 0
            assert f"{metric} timeline: 8 stations" in capsys.readouterr().out

    def test_rejects_unknown_metric(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--timeline", "bogus"])
