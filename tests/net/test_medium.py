"""Tests for the physical medium oracle."""

import numpy as np
import pytest

from repro.core.collisions import CollisionType
from repro.net.medium import Medium
from repro.net.packet import Packet
from repro.radio.spreadspectrum import DespreaderBank
from repro.sim.engine import Environment


class World:
    """Test double for the station-side queries the medium makes."""

    def __init__(self, count, channels=4, deaf=()):
        self.banks = [DespreaderBank(capacity=channels) for _ in range(count)]
        self.deaf = set(deaf)
        self.delivered = []

    def listen(self, station, now):
        return station not in self.deaf

    def bank(self, station):
        return self.banks[station]


def line_medium(positions, threshold=0.1, channels=4, deaf=(), thermal=1e-12):
    positions = np.asarray(positions, dtype=float)
    count = len(positions)
    gains = np.zeros((count, count))
    for i in range(count):
        for j in range(count):
            if i != j:
                gains[i, j] = 1.0 / max(abs(positions[i] - positions[j]), 1e-9) ** 2
    env = Environment()
    world = World(count, channels=channels, deaf=deaf)
    medium = Medium(
        env=env,
        gains=gains,
        thermal_noise_w=thermal,
        sir_thresholds=np.full(count, threshold),
        listen_query=world.listen,
        channel_query=world.bank,
    )
    return env, medium, world


def packet(src, dst):
    return Packet(source=src, destination=dst, size_bits=100.0, created_at=0.0)


def send(env, medium, src, dst, power=100.0, duration=1.0, at=0.0):
    outcome = {}

    def process(env):
        if at > env.now:
            yield env.timeout(at - env.now)
        done = medium.transmit(src, dst, packet(src, dst), power, duration)
        outcome["ok"] = yield done

    env.process(process(env))
    return outcome


class TestCleanDelivery:
    def test_single_transmission_delivered(self):
        env, medium, world = line_medium([0.0, 10.0])
        outcome = send(env, medium, 0, 1)
        env.run()
        assert outcome["ok"] is True
        assert medium.deliveries == 1
        assert medium.losses == []

    def test_delivery_callback_invoked(self):
        env, medium, world = line_medium([0.0, 10.0])
        seen = []
        medium.on_delivery(1, lambda tx: seen.append(tx.packet.packet_id))
        send(env, medium, 0, 1)
        env.run()
        assert len(seen) == 1

    def test_oracle_value_false_on_loss(self):
        env, medium, world = line_medium([0.0, 10.0], deaf=(1,))
        outcome = send(env, medium, 0, 1)
        env.run()
        assert outcome["ok"] is False


class TestLossModes:
    def test_not_listening(self):
        env, medium, world = line_medium([0.0, 10.0], deaf=(1,))
        send(env, medium, 0, 1)
        env.run()
        assert medium.loss_counts_by_reason() == {"not_listening": 1}

    def test_no_channel_is_type2(self):
        env, medium, world = line_medium([0.0, 10.0, 20.0], channels=1)
        send(env, medium, 0, 1, at=0.0)
        send(env, medium, 2, 1, at=0.1)
        env.run()
        counts = medium.loss_counts_by_type()
        assert counts[CollisionType.TYPE_2] == 1

    def test_receiver_transmitting_is_type3(self):
        env, medium, world = line_medium([0.0, 10.0, 20.0])
        send(env, medium, 1, 2, at=0.0)   # receiver-to-be is busy talking
        send(env, medium, 0, 1, at=0.1)
        env.run()
        assert medium.loss_counts_by_reason()["self_transmitting"] == 1
        assert medium.loss_counts_by_type()[CollisionType.TYPE_3] == 1

    def test_receiver_starts_transmitting_mid_reception(self):
        # The reception locks first, then the receiver keys up: the
        # self-coupling term must crush the SIR (continuous criterion).
        env, medium, world = line_medium([0.0, 10.0, 20.0])
        first = send(env, medium, 0, 1, at=0.0, duration=1.0)
        send(env, medium, 1, 2, at=0.5, duration=0.2)
        env.run()
        assert first["ok"] is False
        record = medium.losses[0]
        assert record.reason == "sir"
        assert CollisionType.TYPE_3 in record.collision_types

    def test_nearby_interferer_is_type1(self):
        env, medium, world = line_medium([0.0, 10.0, 11.0, 21.0], threshold=0.1)
        victim = send(env, medium, 3, 2, power=100.0, at=0.0, duration=1.0)
        send(env, medium, 1, 0, power=5000.0, at=0.2, duration=0.5)
        env.run()
        assert victim["ok"] is False
        record = next(r for r in medium.losses if r.transmission.destination == 2)
        assert record.collision_types == frozenset({CollisionType.TYPE_1})

    def test_distant_interferer_tolerated(self):
        env, medium, world = line_medium([0.0, 300.0, 11.0, 21.0], threshold=0.1)
        victim = send(env, medium, 3, 2, power=100.0, at=0.0, duration=1.0)
        send(env, medium, 1, 0, power=5000.0, at=0.2, duration=0.5)
        env.run()
        assert victim["ok"] is True


class TestBookkeeping:
    def test_active_transmissions_snapshot(self):
        env, medium, world = line_medium([0.0, 10.0])
        send(env, medium, 0, 1, duration=5.0)
        env.run(until=1.0)
        assert len(medium.active_transmissions) == 1
        env.run()
        assert medium.active_transmissions == []

    def test_station_cannot_double_transmit(self):
        env, medium, world = line_medium([0.0, 10.0, 20.0])

        def double(env):
            medium.transmit(0, 1, packet(0, 1), 1.0, 5.0)
            yield env.timeout(1.0)
            medium.transmit(0, 2, packet(0, 2), 1.0, 5.0)

        env.process(double(env))
        with pytest.raises(RuntimeError, match="already transmitting"):
            env.run()

    def test_self_addressed_rejected(self):
        env, medium, world = line_medium([0.0, 10.0])
        with pytest.raises(ValueError):
            medium.transmit(0, 0, packet(0, 1), 1.0, 1.0)

    def test_total_received_power(self):
        env, medium, world = line_medium([0.0, 10.0, 20.0])
        send(env, medium, 0, 1, power=100.0, duration=5.0)
        env.run(until=1.0)
        # Station 2 hears station 0 at 100 / 20^2 = 0.25.
        assert medium.total_received_power(2) == pytest.approx(0.25)

    def test_interference_excludes_wanted(self):
        env, medium, world = line_medium([0.0, 10.0])
        send(env, medium, 0, 1, power=100.0, duration=5.0)
        env.run(until=1.0)
        seq = medium.active_transmissions[0].seq
        assert medium.interference_at(1, exclude_seq=seq) == pytest.approx(0.0)


class TestOverhearing:
    def test_idle_decodable_station_overhears(self):
        env, medium, world = line_medium([0.0, 10.0, 20.0])
        heard = []
        medium.on_overheard(2, lambda tx: heard.append(tx.source))
        send(env, medium, 0, 1, power=100.0)
        env.run()
        assert heard == [0]

    def test_endpoints_do_not_overhear(self):
        env, medium, world = line_medium([0.0, 10.0])
        heard = []
        medium.on_overheard(1, lambda tx: heard.append(tx.source))
        send(env, medium, 0, 1, power=100.0)
        env.run()
        assert heard == []

    def test_undecodable_station_misses_it(self):
        # A distant station buried in thermal noise (signal 1e-10 W vs
        # a 1e-6 W floor) cannot decode the frame.
        env, medium, world = line_medium(
            [0.0, 10.0, 1e6], threshold=0.1, thermal=1e-6
        )
        heard = []
        medium.on_overheard(2, lambda tx: heard.append(tx.source))
        send(env, medium, 0, 1, power=100.0)
        env.run()
        assert heard == []
