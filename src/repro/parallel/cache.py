"""Persistent content-addressed result store: memoise TaskSpecs by digest.

A :class:`ResultCache` maps the *identity* of a task's work — its
:func:`~repro.parallel.task.spec_digest`, covering kind, target,
canonical params, seed, and sanitize, and deliberately **not** its
``task_id`` — to the digest-verified :class:`~repro.parallel.task.TaskResult`
it produced.  Because every task is a pure function of that identity
(the jobs-invariance guarantee the seed tree and fork-safety pass
enforce), a cache hit is bit-identical to recomputation, and two sweeps
that label overlapping work differently still share entries.

Layout on disk (one directory per cache)::

    DIR/cache.json                 marker {"cache": ..., "version": 1}
    DIR/objects/<kk>/<key>.json    entries, sharded by key prefix
    DIR/quarantine/<key>.<n>.json  corrupt entries set aside by reads

Each entry is one JSON object ``{"key", "spec", "record", "digest"}``
where ``digest`` seals the other three fields with the same
BLAKE2b-over-canonical-JSON scheme the checkpoint journal uses
(:func:`~repro.parallel.checkpoint.record_digest` — the (de)serialisers
are shared, not duplicated).  The stored ``spec`` identity lets
``verify --recompute`` re-execute an entry from the cache alone and
hard-fail on divergence.

Durability discipline:

* **Atomic writes.**  Entries are written to a same-directory temp file
  and published with ``os.replace``; two processes racing to write the
  same key both leave one complete entry (last rename wins, and both
  bodies are identical by determinism).
* **Torn-record recovery.**  A read that finds an unparseable,
  digest-mismatching, or internally inconsistent entry *quarantines* it
  (moved aside for inspection, counted in stats) and reports a miss —
  corruption is never fatal and never served.
* **Divergence is a hard error.**  When an independent recomputation
  (or a checkpoint journal) disagrees with a stored entry,
  :exc:`CacheDivergenceError` is raised; a stale row is never silently
  returned.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

from repro.parallel.checkpoint import (
    record_digest,
    record_to_result,
    result_to_record,
)
from repro.parallel.task import (
    TaskResult,
    TaskSpec,
    execute_task,
    payload_digest,
    spec_digest,
    spec_identity,
)

__all__ = ["CacheDivergenceError", "ResultCache", "resolve_cache"]

# The REP002 exemption above covers host-side cache maintenance only:
# entry ages for `gc --max-age` come from file modification times
# compared against the host clock.  No wall-clock value ever reaches
# simulation state — the same argument as the pool's timeout clock.

_MAGIC = "repro-result-cache"
_VERSION = 1


class CacheDivergenceError(RuntimeError):
    """A cached result disagrees with an independent recomputation (or
    a checkpoint journal) of the same spec.

    This is the one unrecoverable cache condition: either the cache was
    fed from a different build of the simulator, or determinism itself
    is broken.  Serving either side silently would poison every
    downstream aggregate, so the run stops here.
    """


def _entry_digest(key: str, spec: Dict[str, Any], record: Dict[str, Any]) -> str:
    return record_digest({"key": key, "spec": spec, "record": record})


def resolve_cache(cache: Any) -> Optional["ResultCache"]:
    """Accept ``None``, a directory path, or an open :class:`ResultCache`
    (the convenience every ``cache=`` parameter upstream offers)."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(os.fspath(cache))


class ResultCache:
    """Sharded on-disk store of digest-verified task results.

    Args:
        root: cache directory (created, with its marker, if absent).

    Session counters (``hits``/``misses``/``puts``/``corrupt``) track
    this instance's traffic for ``repro cache stats`` style reporting;
    they are not persisted.
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self.objects_dir = os.path.join(self.root, "objects")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0
        marker = os.path.join(self.root, "cache.json")
        if os.path.exists(marker):
            with open(marker, "r", encoding="utf-8") as handle:
                try:
                    header = json.load(handle)
                except json.JSONDecodeError:
                    header = None
            if not isinstance(header, dict) or header.get("cache") != _MAGIC:
                raise ValueError(f"{self.root} is not a repro result cache")
            if header.get("version") != _VERSION:
                raise ValueError(
                    f"{self.root} uses cache version {header.get('version')!r};"
                    f" this build reads version {_VERSION}"
                )
        else:
            if os.path.isdir(self.root) and os.listdir(self.root):
                raise ValueError(
                    f"{self.root} exists, is not empty, and has no cache "
                    "marker; refusing to adopt it"
                )
            os.makedirs(self.root, exist_ok=True)
            self._atomic_write(
                marker, json.dumps({"cache": _MAGIC, "version": _VERSION})
            )
        os.makedirs(self.objects_dir, exist_ok=True)
        os.makedirs(self.quarantine_dir, exist_ok=True)

    # -- pathing -------------------------------------------------------

    def key_for(self, spec: TaskSpec) -> str:
        """The store key of a spec: its content digest."""
        return spec_digest(spec)

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], f"{key}.json")

    def _atomic_write(self, path: str, text: str) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        tmp = os.path.join(
            directory, f".tmp.{os.getpid()}.{os.path.basename(path)}"
        )
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _quarantine(self, path: str) -> Optional[str]:
        """Move a bad entry aside (never delete evidence); returns the
        quarantine path, or ``None`` if another process already won."""
        base = os.path.basename(path)
        for attempt in range(100):
            target = os.path.join(self.quarantine_dir, f"{base}.{attempt}")
            if os.path.exists(target):
                continue
            try:
                os.replace(path, target)
                return target
            except FileNotFoundError:
                return None  # racing reader already moved it
        try:
            os.remove(path)
        except FileNotFoundError:
            pass
        return None

    # -- read/write ----------------------------------------------------

    def _load_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """A verified entry body, or ``None`` (absent or quarantined)."""
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        except OSError:
            self.corrupt += 1
            self._quarantine(path)
            return None
        try:
            entry = json.loads(raw)
            stored_key = entry["key"]
            spec = entry["spec"]
            record = entry["record"]
            digest = entry["digest"]
        except (json.JSONDecodeError, KeyError, TypeError):
            self.corrupt += 1
            self._quarantine(path)
            return None
        if (
            stored_key != key
            or _entry_digest(stored_key, spec, record) != digest
            or (
                record.get("payload") is not None
                and payload_digest(record["payload"])
                != record.get("payload_digest")
            )
        ):
            self.corrupt += 1
            self._quarantine(path)
            return None
        return entry

    def get(self, spec: TaskSpec) -> Optional[TaskResult]:
        """The cached result of ``spec``'s work, or ``None`` on a miss.

        The returned result carries *this* spec's ``task_id`` (the
        stored one may come from a differently-labelled plan).  Reads
        re-verify the entry seal and the payload digest; anything
        inconsistent is quarantined and reported as a miss.
        """
        entry = self._load_entry(self.key_for(spec))
        if entry is None:
            self.misses += 1
            return None
        result = record_to_result(entry["record"])
        result.task_id = spec.task_id
        self.hits += 1
        return result

    def put(self, spec: TaskSpec, result: TaskResult) -> bool:
        """Store a successful result under the spec's key.

        Failed results are never cached (errors may be environmental,
        and retries make them non-content-addressable), so they always
        re-execute.  Returns whether an entry was written.
        """
        if not result.ok or result.payload is None:
            return False
        key = self.key_for(spec)
        record = result_to_record(result)
        entry = {
            "key": key,
            "spec": spec_identity(spec),
            "record": record,
            "digest": _entry_digest(key, spec_identity(spec), record),
        }
        self._atomic_write(
            self._entry_path(key), json.dumps(entry, sort_keys=True)
        )
        self.puts += 1
        return True

    def ensure(self, spec: TaskSpec, result: TaskResult) -> None:
        """Reconcile an independently-obtained result with the store.

        Absent: the result is written.  Present: the stored payload
        digest must agree bit-for-bit — disagreement means the cache
        and the present build compute different answers for the same
        identity, and raises :exc:`CacheDivergenceError`.
        """
        if not result.ok or result.payload is None:
            return
        entry = self._load_entry(self.key_for(spec))
        if entry is None:
            self.put(spec, result)
            return
        stored = entry["record"].get("payload_digest")
        if stored != result.payload_digest:
            raise CacheDivergenceError(
                f"cache divergence for task {spec.task_id!r} "
                f"(key {self.key_for(spec)}): stored payload digest "
                f"{stored} != recomputed {result.payload_digest}; the "
                "cache was built by a different simulator version, or "
                "determinism is broken — refusing to serve either row"
            )

    # -- maintenance ---------------------------------------------------

    def _entries(self) -> List[str]:
        """Paths of every entry file, sorted for determinism."""
        paths: List[str] = []
        if not os.path.isdir(self.objects_dir):
            return paths
        for shard in sorted(os.listdir(self.objects_dir)):
            shard_dir = os.path.join(self.objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith(".tmp."):
                    paths.append(os.path.join(shard_dir, name))
        return paths

    def stats(self) -> Dict[str, Any]:
        """Store-wide totals plus this session's traffic counters."""
        entries = self._entries()
        total_bytes = 0
        for path in entries:
            try:
                total_bytes += os.stat(path).st_size
            except FileNotFoundError:
                continue  # racing gc/quarantine
        quarantined = [
            name
            for name in (
                sorted(os.listdir(self.quarantine_dir))
                if os.path.isdir(self.quarantine_dir)
                else []
            )
            if name.endswith(".json") or ".json." in name
        ]
        return {
            "root": self.root,
            "entries": len(entries),
            "bytes": total_bytes,
            "quarantined": len(quarantined),
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "corrupt": self.corrupt,
            },
        }

    def verify(self, recompute: int = 0) -> Dict[str, Any]:
        """Audit every entry; optionally re-execute a sample.

        Every entry's seal and payload digest are re-checked; corrupt
        entries are quarantined and counted (a report, not a failure —
        they would have been misses anyway).  With ``recompute=N``, the
        first N entries (in key order) are additionally re-executed
        from their stored spec identity and compared digest-for-digest;
        any divergence raises :exc:`CacheDivergenceError` because a
        silently stale row can poison every consumer downstream.
        """
        checked = 0
        bad: List[str] = []
        recomputed = 0
        for path in self._entries():
            key = os.path.basename(path)[: -len(".json")]
            entry = self._load_entry(key)
            checked += 1
            if entry is None:
                bad.append(key)
                continue
            if recomputed < recompute:
                recomputed += 1
                identity = entry["spec"]
                spec = TaskSpec(
                    task_id=entry["record"]["task_id"],
                    kind=identity["kind"],
                    target=identity["target"],
                    params=identity["params"],
                    seed=identity["seed"],
                    sanitize=identity["sanitize"],
                )
                fresh = execute_task(spec)
                stored_digest = entry["record"].get("payload_digest")
                if not fresh.ok or fresh.payload_digest != stored_digest:
                    raise CacheDivergenceError(
                        f"cache entry {key} does not match recomputation: "
                        f"stored payload digest {stored_digest}, "
                        f"recomputed {fresh.payload_digest!r}"
                        + ("" if fresh.ok else f" (error: {fresh.error})")
                    )
        return {
            "checked": checked,
            "corrupt_quarantined": len(bad),
            "corrupt_keys": bad,
            "recomputed": recomputed,
        }

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Evict entries by age and/or total size; purge quarantine.

        ``max_age_s`` removes entries whose file mtime is older than
        that many seconds; ``max_bytes`` then evicts oldest-first until
        the store fits.  Host wall time only ever compares against file
        mtimes here — simulation state is untouched.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if max_age_s is not None and max_age_s < 0:
            raise ValueError("max_age_s must be non-negative")
        now = time.time()  # reprolint: disable=REP002
        survivors: List[Any] = []
        evicted = 0
        freed = 0
        for path in self._entries():
            try:
                stat = os.stat(path)
            except FileNotFoundError:
                continue
            age = now - stat.st_mtime
            if max_age_s is not None and age > max_age_s:
                freed += stat.st_size
                evicted += 1
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
                continue
            survivors.append((stat.st_mtime, path, stat.st_size))
        if max_bytes is not None:
            total = sum(size for _mtime, _path, size in survivors)
            survivors.sort()  # oldest first
            index = 0
            while total > max_bytes and index < len(survivors):
                _mtime, path, size = survivors[index]
                index += 1
                try:
                    os.remove(path)
                except FileNotFoundError:
                    continue
                total -= size
                freed += size
                evicted += 1
        purged = 0
        if os.path.isdir(self.quarantine_dir):
            for name in os.listdir(self.quarantine_dir):
                try:
                    os.remove(os.path.join(self.quarantine_dir, name))
                    purged += 1
                except (FileNotFoundError, IsADirectoryError):
                    continue
        return {
            "evicted": evicted,
            "freed_bytes": freed,
            "quarantine_purged": purged,
            "remaining_entries": len(self._entries()),
        }
