"""Public helpers whose surface the api lock freezes."""

__all__ = ["WIDTH", "shout"]

WIDTH = 3


def shout(text: str) -> str:
    return text.upper()
