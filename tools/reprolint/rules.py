"""The reprolint rule implementations.

Each rule is a class with a ``CODE``, a one-line ``SUMMARY``, an
``applies_to(path)`` scope predicate, and a ``check(tree, path)`` method
returning :class:`Violation` objects.  Rules are pure AST analyses: no
imports of the linted code are performed, so the suite is safe to run on
broken or half-written files.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "ALL_RULES",
    "Rule",
    "Violation",
    "UnseededRandomRule",
    "WallClockRule",
    "SimTimeEqualityRule",
    "MutableDefaultRule",
    "BareExceptRule",
    "DunderAllRule",
    "YieldEventRule",
    "ParallelSeedRule",
    "FaultSeedRule",
    "LegacyTraceRecordRule",
]


@dataclass(frozen=True)
class Violation:
    """One lint finding, pointing at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render in the conventional ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _parts(path: str) -> Tuple[str, ...]:
    return PurePosixPath(path.replace("\\", "/")).parts


def _under_src(path: str) -> bool:
    return "src" in _parts(path)


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Reconstruct a dotted name from nested Attribute/Name nodes."""
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
        return ".".join(reversed(chain))
    return None


class Rule:
    """Base class: a named, scoped AST check."""

    CODE = "REP000"
    SUMMARY = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (repo-relative, posix)."""
        return True

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        """Analyse ``tree`` and return any violations."""
        raise NotImplementedError

    def _violation(self, path: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.CODE,
            message=message,
        )


class UnseededRandomRule(Rule):
    """REP001: randomness must flow through ``repro.sim.streams``.

    Direct draws from the ``random`` module or the ``numpy.random``
    global state bypass the named-stream seeding discipline and make
    runs irreproducible.  Constructing seeded generators
    (``default_rng``, ``SeedSequence``, ``Generator`` and the bit
    generators) is allowed anywhere — those take explicit seeds.
    """

    CODE = "REP001"
    SUMMARY = "no direct random.* / numpy.random.* global-state draws"

    #: ``sim/streams.py`` (the sanctioned wrapper) needs no carve-out:
    #: it only touches the :data:`ALLOWED` seeded constructors.  Any
    #: future exception belongs inline as a ``reprolint: disable=``
    #: comment, which the REP011 audit retires when it goes stale.

    #: numpy.random names that construct seeded generators rather than
    #: drawing from hidden global state.
    ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "BitGenerator",
            "SeedSequence",
            "RandomState",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    violations.append(
                        self._violation(
                            path,
                            node,
                            "import from the stdlib `random` module; draw from "
                            "a seeded stream (repro.sim.streams) instead",
                        )
                    )
                elif node.module in ("numpy.random", "np.random"):
                    for alias in node.names:
                        if alias.name not in self.ALLOWED:
                            violations.append(
                                self._violation(
                                    path,
                                    node,
                                    f"import of numpy.random.{alias.name}; use a "
                                    "seeded stream (repro.sim.streams) instead",
                                )
                            )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[0] == "random" and len(parts) == 2:
                    violations.append(
                        self._violation(
                            path,
                            node,
                            f"call to {dotted}() uses the stdlib global RNG; "
                            "draw from a seeded stream (repro.sim.streams)",
                        )
                    )
                elif (
                    len(parts) >= 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in self.ALLOWED
                ):
                    violations.append(
                        self._violation(
                            path,
                            node,
                            f"call to {dotted}() draws from numpy's global RNG; "
                            "draw from a seeded stream (repro.sim.streams)",
                        )
                    )
        return violations


class WallClockRule(Rule):
    """REP002: simulation code must not read the wall clock.

    Simulated time is ``env.now``; reading the host clock couples run
    outcomes to machine speed and breaks replay.  Scoped to ``src/``
    (benchmarks and tests may legitimately time things).

    Exemptions live in the exempt files themselves as ``# reprolint:
    disable[-file]=REP002`` directives (the perf-measurement harness
    and the parallel-execution modules, which time *host* execution of
    completed simulation runs).  Any new exemption needs the same
    property — measurement of, never input to, the simulation — and
    the unused-suppression audit (REP011) retires it when the timing
    code goes away.
    """

    CODE = "REP002"
    SUMMARY = "no wall-clock reads (time.time, datetime.now, ...) under src/"

    FORBIDDEN_SUFFIXES = (
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    )
    FORBIDDEN_IMPORTS = {
        "time": {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
        },
    }

    def applies_to(self, path: str) -> bool:
        return _under_src(path)

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                forbidden = self.FORBIDDEN_IMPORTS.get(node.module or "")
                if forbidden:
                    for alias in node.names:
                        if alias.name in forbidden:
                            violations.append(
                                self._violation(
                                    path,
                                    node,
                                    f"import of {node.module}.{alias.name}; "
                                    "simulation code must use simulated time "
                                    "(env.now), not the wall clock",
                                )
                            )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                if any(
                    dotted == suffix or dotted.endswith("." + suffix)
                    for suffix in self.FORBIDDEN_SUFFIXES
                ):
                    violations.append(
                        self._violation(
                            path,
                            node,
                            f"call to {dotted}() reads the wall clock; "
                            "simulation code must use simulated time (env.now)",
                        )
                    )
        return violations


class SimTimeEqualityRule(Rule):
    """REP003: no ``==`` / ``!=`` on simulated-time floats.

    Simulated times are floats accumulated through arithmetic; exact
    equality is representation-dependent.  Use ``math.isclose`` or the
    half-open interval helpers in :mod:`repro.core.intervals`.  The
    check is a name heuristic: a comparison operand "looks like a time"
    if it is ``*.now`` or an identifier built from time words (``now``,
    ``time``, ``when``, ``deadline``, ``timestamp``, ``instant``).
    Scoped to ``src/``; tests may assert exact engine semantics.
    """

    CODE = "REP003"
    SUMMARY = "no == / != on simulated-time floats under src/ (use math.isclose)"

    TIME_WORD = re.compile(
        r"(^|_)(now|time|when|deadline|timestamp|instant)(_|$)"
    )

    def applies_to(self, path: str) -> bool:
        return _under_src(path)

    def _time_like(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            if node.attr == "now" or self.TIME_WORD.search(node.attr):
                return _dotted_name(node) or node.attr
        elif isinstance(node, ast.Name):
            if self.TIME_WORD.search(node.id):
                return node.id
        return None

    @staticmethod
    def _exempt_other(node: ast.AST) -> bool:
        # Comparing a time-like name against None/str/bool is identity
        # or config logic, not float arithmetic.
        return isinstance(node, ast.Constant) and isinstance(
            node.value, (str, bool, type(None))
        )

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                name = self._time_like(left) or self._time_like(right)
                if name is None:
                    continue
                if self._exempt_other(left) or self._exempt_other(right):
                    continue
                violations.append(
                    self._violation(
                        path,
                        node,
                        f"exact equality on simulated-time value {name!r}; "
                        "use math.isclose or interval membership",
                    )
                )
        return violations


class MutableDefaultRule(Rule):
    """REP004: no mutable default arguments."""

    CODE = "REP004"
    SUMMARY = "no mutable default arguments"

    MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            return dotted in self.MUTABLE_CALLS
        return False

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: List[ast.AST] = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if self._is_mutable(default):
                    violations.append(
                        self._violation(
                            path,
                            default,
                            f"mutable default argument in {node.name}(); "
                            "default to None and create inside the body",
                        )
                    )
        return violations


class BareExceptRule(Rule):
    """REP005: no bare ``except:`` clauses."""

    CODE = "REP005"
    SUMMARY = "no bare except: clauses"

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                violations.append(
                    self._violation(
                        path,
                        node,
                        "bare except: swallows KeyboardInterrupt and engine "
                        "failures; catch a specific exception",
                    )
                )
        return violations


class DunderAllRule(Rule):
    """REP006: ``__all__`` must match the public definitions.

    Every ``src/repro`` module must declare ``__all__``; every listed
    name must exist at module top level, and every public top-level
    function, class, and constant must be listed.  This keeps the
    wildcard-import surface and the documented API in lockstep.
    """

    CODE = "REP006"
    SUMMARY = "__all__ must exist and match public definitions in src/repro"

    @staticmethod
    def _literal_strings(node: Optional[ast.expr]) -> Optional[List[str]]:
        """The string elements of a literal list/tuple, else None."""
        if isinstance(node, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in node.elts
        ):
            return [e.value for e in node.elts]
        return None

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        if not _under_src(path) or "/repro/" not in "/" + normalized:
            return False
        return not normalized.endswith("__main__.py")

    @staticmethod
    def _target_names(node: ast.stmt) -> Iterable[str]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                yield target.id

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        public: List[str] = []
        defined: set = set()
        dunder_all: Optional[ast.stmt] = None
        listed: Optional[List[str]] = None

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                defined.add(node.name)
                if not node.name.startswith("_"):
                    public.append(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    defined.add(name)
            elif isinstance(node, ast.AugAssign):
                # __all__ += [...]
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == "__all__"
                    and listed is not None
                ):
                    extra = self._literal_strings(node.value)
                    if extra is not None:
                        listed.extend(extra)
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                # __all__.append("x") / __all__.extend([...])
                call = node.value
                if (
                    isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == "__all__"
                    and listed is not None
                    and len(call.args) == 1
                ):
                    argument = call.args[0]
                    if call.func.attr == "append":
                        if isinstance(argument, ast.Constant) and isinstance(
                            argument.value, str
                        ):
                            listed.append(argument.value)
                    elif call.func.attr == "extend":
                        extra = self._literal_strings(argument)
                        if extra is not None:
                            listed.extend(extra)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                for name in self._target_names(node):
                    if name == "__all__":
                        dunder_all = node
                        listed = self._literal_strings(node.value)
                    else:
                        defined.add(name)
                        if not name.startswith("_"):
                            public.append(name)

        violations: List[Violation] = []
        if dunder_all is None:
            if public:
                violations.append(
                    Violation(
                        path=path,
                        line=1,
                        col=0,
                        code=self.CODE,
                        message=(
                            "module has public definitions but no __all__; "
                            "declare the public API explicitly"
                        ),
                    )
                )
            return violations
        if listed is None:
            violations.append(
                self._violation(
                    path,
                    dunder_all,
                    "__all__ must be a literal list/tuple of strings",
                )
            )
            return violations
        for name in listed:
            if name not in defined:
                violations.append(
                    self._violation(
                        path,
                        dunder_all,
                        f"__all__ lists {name!r}, which is not defined or "
                        "imported in the module",
                    )
                )
        for name in public:
            if name not in listed:
                violations.append(
                    self._violation(
                        path,
                        dunder_all,
                        f"public definition {name!r} is missing from __all__",
                    )
                )
        return violations


class YieldEventRule(Rule):
    """REP007: processes must only yield Event objects (heuristic).

    The engine fails a process that yields a non-Event, but only at run
    time on the path that executes the yield.  This check flags, in any
    *process-shaped* generator (one that yields from an Event factory
    such as ``env.timeout(...)``, or takes an ``env`` parameter), yields
    whose value can be proven non-Event statically: literals, container
    displays, arithmetic, comparisons, and bare ``yield``.
    """

    CODE = "REP007"
    SUMMARY = "processes must only yield Event objects (heuristic)"

    EVENT_FACTORIES = frozenset(
        {"timeout", "event", "process", "any_of", "all_of", "succeed", "fail"}
    )

    _NON_EVENT_NODES = (
        ast.Constant,
        ast.List,
        ast.Tuple,
        ast.Dict,
        ast.Set,
        ast.ListComp,
        ast.DictComp,
        ast.SetComp,
        ast.GeneratorExp,
        ast.BinOp,
        ast.UnaryOp,
        ast.BoolOp,
        ast.Compare,
        ast.JoinedStr,
        ast.Lambda,
    )

    def _yields_of(
        self, func: ast.AST
    ) -> List[ast.Yield]:
        """Yield expressions belonging to ``func`` itself (not nested
        defs/lambdas/comprehensions, which have their own frames)."""
        yields: List[ast.Yield] = []
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Yield):
                yields.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return yields

    def _process_shaped(
        self, func: ast.FunctionDef, yields: Sequence[ast.Yield]
    ) -> bool:
        arg_names = {a.arg for a in func.args.args}
        if "env" in arg_names:
            return True
        for node in yields:
            value = node.value
            if isinstance(value, ast.Call):
                dotted = _dotted_name(value.func)
                if dotted and dotted.split(".")[-1] in self.EVENT_FACTORIES:
                    return True
        return False

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yields = self._yields_of(node)
            if not yields or not self._process_shaped(node, yields):
                continue
            for yield_node in yields:
                value = yield_node.value
                if value is None:
                    violations.append(
                        self._violation(
                            path,
                            yield_node,
                            f"bare yield in process {node.name}(); processes "
                            "must yield Event objects",
                        )
                    )
                elif isinstance(value, self._NON_EVENT_NODES):
                    violations.append(
                        self._violation(
                            path,
                            yield_node,
                            f"process {node.name}() yields a "
                            f"{type(value).__name__}, which cannot be an "
                            "Event; yield env.timeout(...) or another Event",
                        )
                    )
        return violations


class ParallelSeedRule(Rule):
    """REP008: parallelism in ``src/repro`` must use the seed-tree API.

    Direct ``multiprocessing`` / ``concurrent.futures`` / ``os.fork``
    usage bypasses the :mod:`repro.parallel` task layer — worker
    functions would draw seeds (or worse, share RNG state) in ways
    that depend on worker count and scheduling order, breaking the
    bit-exact jobs-invariance guarantee.  All fan-out must go through
    :func:`repro.parallel.pool.run_tasks` over seed-tree-derived
    :class:`~repro.parallel.task.TaskSpec` objects;
    ``repro/parallel/pool.py`` is the single sanctioned wrapper and
    marks its two multiprocessing imports with inline ``reprolint:
    disable=REP008`` comments.
    """

    CODE = "REP008"
    SUMMARY = (
        "no direct multiprocessing/concurrent.futures in src/repro; "
        "use repro.parallel (seed-tree tasks + pool)"
    )

    FORBIDDEN_MODULES = ("multiprocessing", "concurrent.futures", "concurrent")

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return _under_src(path) and "/repro/" in "/" + normalized

    def _forbidden_module(self, name: Optional[str]) -> bool:
        if not name:
            return False
        return any(
            name == module or name.startswith(module + ".")
            for module in self.FORBIDDEN_MODULES
        )

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._forbidden_module(alias.name):
                        violations.append(
                            self._violation(
                                path,
                                node,
                                f"import of {alias.name} bypasses the "
                                "seed-tree parallel API; fan out through "
                                "repro.parallel.pool.run_tasks",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if self._forbidden_module(node.module):
                    violations.append(
                        self._violation(
                            path,
                            node,
                            f"import from {node.module} bypasses the "
                            "seed-tree parallel API; fan out through "
                            "repro.parallel.pool.run_tasks",
                        )
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted == "os.fork":
                    violations.append(
                        self._violation(
                            path,
                            node,
                            "os.fork() duplicates RNG and engine state; "
                            "fan out through repro.parallel.pool.run_tasks",
                        )
                    )
        return violations


class FaultSeedRule(Rule):
    """REP009: fault/mobility modules must draw randomness from the
    seed tree.

    Everything under ``src/repro/faults`` and ``src/repro/mobility``
    exists to make failure and churn scenarios bit-reproducible and
    jobs-invariant: fault schedules and channel trajectories are
    compiled ahead of execution from seeds derived via
    :func:`repro.parallel.seedtree.derive_seed`.  A fault module that
    reaches for ambient entropy (``random``, ``secrets``,
    ``os.urandom``) or constructs an unseeded / non-derived generator
    (``default_rng()`` with no argument, ``RandomState``) silently
    breaks that guarantee, so any such draw is flagged — the mirror of
    REP008's rule for parallelism.
    """

    CODE = "REP009"
    SUMMARY = (
        "fault/mobility modules (src/repro/faults, src/repro/mobility) "
        "must derive all randomness from the seed tree "
        "(repro.parallel.seedtree)"
    )

    FORBIDDEN_MODULES = ("random", "secrets")

    def applies_to(self, path: str) -> bool:
        normalized = "/" + path.replace("\\", "/")
        return _under_src(path) and (
            "/repro/faults/" in normalized
            or "/repro/mobility/" in normalized
        )

    def _forbidden_module(self, name: Optional[str]) -> bool:
        if not name:
            return False
        return any(
            name == module or name.startswith(module + ".")
            for module in self.FORBIDDEN_MODULES
        )

    @staticmethod
    def _seed_derived(node: ast.AST) -> bool:
        """Whether an argument expression plausibly carries a derived
        seed: a ``derive_seed``/``seed`` call, a ``.seed`` attribute, or
        a name mentioning "seed"."""
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                dotted = _dotted_name(child.func)
                if dotted and dotted.split(".")[-1] in ("derive_seed", "seed"):
                    return True
            elif isinstance(child, ast.Attribute) and "seed" in child.attr.lower():
                return True
            elif isinstance(child, ast.Name) and "seed" in child.id.lower():
                return True
        return False

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._forbidden_module(alias.name):
                        violations.append(
                            self._violation(
                                path,
                                node,
                                f"import of {alias.name} in a fault module; "
                                "derive fault randomness via "
                                "repro.parallel.seedtree.derive_seed",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if self._forbidden_module(node.module):
                    violations.append(
                        self._violation(
                            path,
                            node,
                            f"import from {node.module} in a fault module; "
                            "derive fault randomness via "
                            "repro.parallel.seedtree.derive_seed",
                        )
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                name = dotted.split(".")[-1]
                if dotted == "os.urandom":
                    violations.append(
                        self._violation(
                            path,
                            node,
                            "os.urandom() is ambient entropy; derive fault "
                            "randomness via repro.parallel.seedtree",
                        )
                    )
                elif name == "RandomState":
                    violations.append(
                        self._violation(
                            path,
                            node,
                            "RandomState is legacy global-style RNG; use "
                            "default_rng(derive_seed(...)) instead",
                        )
                    )
                elif name == "default_rng":
                    arguments = list(node.args) + [
                        keyword.value for keyword in node.keywords
                    ]
                    if not arguments:
                        violations.append(
                            self._violation(
                                path,
                                node,
                                "default_rng() without a seed draws OS "
                                "entropy; pass derive_seed(...)",
                            )
                        )
                    elif not any(self._seed_derived(arg) for arg in arguments):
                        violations.append(
                            self._violation(
                                path,
                                node,
                                "default_rng() seed is not derived from the "
                                "seed tree; pass derive_seed(...) or a "
                                "*seed-named value",
                            )
                        )
        return violations


class LegacyTraceRecordRule(Rule):
    """REP010: no string-kind ``trace.record(...)`` call sites.

    The observability redesign routes every emission through the typed
    event classes in :mod:`repro.obs.events` and the
    ``Instrumentation.emit`` facade; the old string-kind
    ``trace.record("kind", **blob)`` surface survives only as a
    deprecated compatibility shim.  A new ``trace.record(`` call site
    reintroduces untyped, schema-less rows that the sinks and metric
    timelines cannot decode.  Scoped to ``src/repro`` outside the
    observability package itself; the legacy shim module
    (``repro/sim/trace.py``) defines the method but contains no
    ``trace.record(...)`` call sites of its own, so it needs no
    exemption.
    """

    CODE = "REP010"
    SUMMARY = (
        "no string-kind trace.record(...) call sites in src/repro; "
        "emit typed events through repro.obs.Instrumentation"
    )

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        if "/repro/obs/" in "/" + normalized:
            return False
        return _under_src(path) and "/repro/" in "/" + normalized

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) >= 2 and parts[-1] == "record" and parts[-2] == "trace":
                violations.append(
                    self._violation(
                        path,
                        node,
                        f"call to {dotted}() uses the deprecated string-kind "
                        "trace surface; emit a typed repro.obs event via "
                        "Instrumentation.emit instead",
                    )
                )
        return violations


#: The full suite, in code order.
ALL_RULES: Tuple[Rule, ...] = (
    UnseededRandomRule(),
    WallClockRule(),
    SimTimeEqualityRule(),
    MutableDefaultRule(),
    BareExceptRule(),
    DunderAllRule(),
    YieldEventRule(),
    ParallelSeedRule(),
    FaultSeedRule(),
    LegacyTraceRecordRule(),
)
