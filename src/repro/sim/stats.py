"""Streaming statistics used by the simulation harness.

Simulations run for many events; these accumulators collect summary
statistics in O(1) memory: Welford mean/variance, time-weighted
averages (for quantities like "number of active transmissions"), and a
fixed-bin histogram for delay distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["Welford", "TimeWeighted", "Histogram"]


class Welford:
    """Numerically stable streaming mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Sequence[float]) -> None:
        """Fold many observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean; NaN when empty."""
        return self._mean if self._count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance; NaN with fewer than two samples."""
        if self._count < 2:
            return math.nan
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if not math.isnan(variance) else math.nan

    @property
    def minimum(self) -> float:
        """Smallest observation; NaN when empty."""
        return self._min if self._count else math.nan

    @property
    def maximum(self) -> float:
        """Largest observation; NaN when empty."""
        return self._max if self._count else math.nan


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes value; the average
    weights each level by how long it was held.
    """

    def __init__(self, initial_value: float = 0.0, initial_time: float = 0.0) -> None:
        self._value = initial_value
        self._last_time = initial_time
        self._weighted_sum = 0.0
        self._elapsed = 0.0

    @property
    def value(self) -> float:
        """Current level of the signal."""
        return self._value

    def update(self, now: float, value: float) -> None:
        """Record that the signal changed to ``value`` at time ``now``."""
        if now < self._last_time:
            raise ValueError("time must not go backwards")
        dt = now - self._last_time
        self._weighted_sum += self._value * dt
        self._elapsed += dt
        self._value = value
        self._last_time = now

    def average(self, now: float | None = None) -> float:
        """Time-weighted average up to ``now`` (default: last update)."""
        weighted = self._weighted_sum
        elapsed = self._elapsed
        if now is not None:
            if now < self._last_time:
                raise ValueError("time must not go backwards")
            dt = now - self._last_time
            weighted += self._value * dt
            elapsed += dt
        if elapsed <= 0.0:
            return math.nan
        return weighted / elapsed


@dataclass
class Histogram:
    """Fixed-width-bin histogram over [low, high) with overflow bins.

    Attributes:
        low: lower edge of the first regular bin.
        high: upper edge of the last regular bin.
        bins: number of regular bins.
    """

    low: float
    high: float
    bins: int
    _counts: List[int] = field(default_factory=list, repr=False)
    _underflow: int = field(default=0, repr=False)
    _overflow: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise ValueError("histogram needs at least one bin")
        if not self.low < self.high:
            raise ValueError("low must be below high")
        self._counts = [0] * self.bins

    def add(self, value: float) -> None:
        """Count one observation."""
        if value < self.low:
            self._underflow += 1
        elif value >= self.high:
            self._overflow += 1
        else:
            width = (self.high - self.low) / self.bins
            index = int((value - self.low) / width)
            # Guard against float edge effects at the top boundary.
            self._counts[min(index, self.bins - 1)] += 1

    @property
    def counts(self) -> List[int]:
        """Counts per regular bin."""
        return list(self._counts)

    @property
    def underflow(self) -> int:
        """Observations below ``low``."""
        return self._underflow

    @property
    def overflow(self) -> int:
        """Observations at or above ``high``."""
        return self._overflow

    @property
    def total(self) -> int:
        """All observations, including the overflow bins."""
        return sum(self._counts) + self._underflow + self._overflow

    def bin_edges(self) -> List[float]:
        """The ``bins + 1`` edges of the regular bins."""
        width = (self.high - self.low) / self.bins
        return [self.low + i * width for i in range(self.bins + 1)]

    def normalized(self) -> List[float]:
        """Counts as fractions of the total (empty histogram -> zeros)."""
        total = self.total
        if total == 0:
            return [0.0] * self.bins
        return [c / total for c in self._counts]
