"""Experiment T7: the scheme versus the classical MAC lineage.

Section 2 positions the paper against ALOHA and the MACA line; the
comparison the paper implies — same physics, same routes, different
channel access — is run here.  Reported per MAC and offered load:
end-to-end deliveries, hop loss ratio, per-hop control overhead
(transmissions beyond the single data burst the paper's scheme pays),
and mean delivery delay.

Expected shape: the scheme delivers losslessly at all loads with
moderate delay; ALOHA variants lose increasingly with load (Type 3
dominates under the physical model); CSMA recovers most losses at the
cost of deferrals; MACA pays two control bursts per data packet; the
frontier contenders (SIC-ALOHA, multi-level power, SINR-adaptive)
recover part of the random-access loss without closing the gap.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentReport, register, run_many
from repro.experiments.simsetup import run_loaded_network
from repro.mac.registry import mac_names
from repro.mac.registry import mac_suite as registry_mac_suite
from repro.net.network import NetworkConfig
from repro.obs import Instrumentation, MetricTimelines

__all__ = ["run", "mac_suite", "run_load_point"]


def mac_suite(seed: int) -> Dict[str, Optional[Callable]]:
    """Deprecated: use :func:`repro.mac.mac_suite` (the registry).

    The hand-written five-contender dict this module used to own now
    falls out of the MAC registry; this wrapper survives one release
    for importers and returns the *full* registered suite.
    """
    warnings.warn(
        "repro.experiments.t7_baselines.mac_suite is deprecated; use "
        "repro.mac.mac_suite (the MAC registry)",
        DeprecationWarning,
        stacklevel=2,
    )
    return registry_mac_suite(seed)


def run_load_point(
    load: float,
    station_count: int = 40,
    duration_slots: float = 500.0,
    seed: int = 47,
    macs: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """One offered-load point of the shootout: every MAC at ``load``.

    The importable unit of work the parallel task layer fans out
    (``kind="function"``, target ``repro.experiments.t7_baselines:
    run_load_point``); ``run`` merges the returned row groups in load
    order.  ``macs`` selects registered MAC names (``None`` = the whole
    registry, the paper's scheme first).  Returns the report rows plus
    the loss tallies the summary claims accumulate.
    """
    rows: List[Tuple[Any, ...]] = []
    shepard_losses = 0
    baseline_losses = 0
    for name in mac_names() if macs is None else tuple(macs):
        timelines = MetricTimelines(station_count=station_count)
        network, _result = run_loaded_network(
            station_count,
            load,
            duration_slots,
            placement_seed=seed,
            traffic_seed=seed + 1,
            config=NetworkConfig(seed=seed),
            mac=name,
            trace=False,
            instrumentation=Instrumentation((timelines,)),
        )
        loss_ratio = (
            timelines.losses_total / timelines.transmissions
            if timelines.transmissions
            else 0.0
        )
        control = timelines.control_overhead()
        slot = network.budget.slot_time
        mean_delay = timelines.mean_delay()
        rows.append(
            (
                name,
                load,
                timelines.end_to_end_deliveries,
                loss_ratio,
                control,
                mean_delay / slot
                if mean_delay == mean_delay
                else float("nan"),
                timelines.unreachable_drops,
                timelines.no_route_drops,
                timelines.arq_retries,
                timelines.arq_giveups,
            )
        )
        if name == "shepard":
            shepard_losses += timelines.losses_total
        else:
            baseline_losses += timelines.losses_total
    return {
        "rows": rows,
        "shepard_losses": shepard_losses,
        "baseline_losses": baseline_losses,
    }


@register("T7")
def run(
    loads_packets_per_slot: Sequence[float] = (0.02, 0.05, 0.1),
    station_count: int = 40,
    duration_slots: float = 500.0,
    seed: int = 47,
    jobs: int = 1,
    macs: Optional[Sequence[str]] = None,
) -> ExperimentReport:
    """Throughput/loss/overhead versus offered load, per MAC.

    Each offered load is an independent task (:func:`run_load_point`)
    fanned over ``jobs`` workers; results merge in load order, so the
    report is identical at any worker count.  ``macs`` restricts the
    contender list to the named registry entries.
    """
    from repro.parallel.task import TaskSpec

    report = ExperimentReport(
        experiment_id="T7",
        title="Channel access shootout under the physical model",
        columns=(
            "mac",
            "load/slot",
            "e2e delivered",
            "hop loss ratio",
            "ctrl per data",
            "mean delay (slots)",
            "unreachable drops",
            "no-route drops",
            "arq retries",
            "arq giveups",
        ),
    )
    specs = [
        TaskSpec(
            task_id=f"T7[load={load!r}]",
            kind="function",
            target="repro.experiments.t7_baselines:run_load_point",
            params={
                "load": load,
                "station_count": station_count,
                "duration_slots": duration_slots,
                "seed": seed,
                "macs": tuple(macs) if macs is not None else None,
            },
        )
        for load in loads_packets_per_slot
    ]
    shepard_losses = 0
    baseline_losses = 0
    for outcome in run_many(specs, jobs=jobs):
        if not outcome.ok or outcome.payload is None:
            raise RuntimeError(
                f"load point {outcome.task_id} failed: {outcome.error}"
            )
        for row in outcome.payload["rows"]:
            report.add_row(*row)
        shepard_losses += outcome.payload["shepard_losses"]
        baseline_losses += outcome.payload["baseline_losses"]
    report.claim("scheme losses across all loads", 0, shepard_losses)
    report.claim("baseline losses across all loads", "> 0", baseline_losses)
    report.notes.append(
        "Baselines enjoy oracle ACKs, free synchronisation (slotted ALOHA), "
        "and SIR-checked overhearing (MACA) — every idealisation favours "
        "them; the reproduced gaps are therefore conservative."
    )
    return report
