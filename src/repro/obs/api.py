"""The one instrumentation facade every layer emits through.

An :class:`Instrumentation` instance is a bundle of sinks plus a single
hot-path flag, ``active``.  Call sites guard with it::

    if instr.active:
        instr.emit(TxStart(now, source, destination, power_w, packet_id))

so a disabled facade costs one attribute read per potential event — no
dict building, no string formatting — and emission itself never touches
the event wheel or any random stream, which keeps replay digests
bit-identical whether sinks are attached or not.

The facade also implements the legacy ``TraceRecorder`` query surface
(:meth:`of_kind`, :meth:`kinds`, :meth:`count`, iteration) backed by
its first :class:`~repro.obs.sinks.MemorySink`, so ``network.trace``
keeps working for existing analyses while they migrate to typed
events.

For tooling that wants to observe *any* run without threading a
parameter through every experiment signature, :func:`use_instrumentation`
installs an ambient default that ``build_network`` folds in (note: the
ambient default does not cross process boundaries, so multi-worker
sweeps only observe it at ``jobs=1``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from repro.obs.events import TraceEvent
from repro.obs.sinks import MemorySink, Sink
from repro.sim.trace import TraceRecord

__all__ = [
    "Instrumentation",
    "use_instrumentation",
    "ambient_instrumentation",
]


class Instrumentation:
    """A bundle of trace sinks behind one emission point.

    Args:
        sinks: the sinks to fan events out to.
        enabled: force-disable emission even with sinks attached
            (``active`` is True only when enabled *and* sinks exist).
    """

    def __init__(
        self, sinks: Sequence[Sink] = (), enabled: bool = True
    ) -> None:
        self._sinks = tuple(sinks)
        self._enabled = bool(enabled)
        self.active = self._enabled and bool(self._sinks)

    # -- emission ------------------------------------------------------

    @property
    def sinks(self) -> tuple:
        """The attached sinks, in fan-out order."""
        return self._sinks

    @property
    def enabled(self) -> bool:
        """Legacy alias for :attr:`active` (TraceRecorder compat)."""
        return self.active

    def emit(self, event: TraceEvent) -> None:
        """Fan one typed event out to every sink (no-op when inactive)."""
        if not self.active:
            return
        for sink in self._sinks:
            sink.emit(event)

    def add_sink(self, sink: Sink) -> None:
        """Attach one more sink (recomputes :attr:`active`)."""
        self._sinks = self._sinks + (sink,)
        self.active = self._enabled and bool(self._sinks)

    def close(self) -> None:
        """Close every sink (flushes file-backed ones)."""
        for sink in self._sinks:
            sink.close()

    # -- constructors --------------------------------------------------

    @classmethod
    def disabled(cls) -> "Instrumentation":
        """A facade with no sinks: every emit guard short-circuits."""
        return cls(())

    @classmethod
    def recording(cls, capacity: Optional[int] = None) -> "Instrumentation":
        """A facade with one in-memory sink (the old ``trace=True``)."""
        return cls((MemorySink(capacity),))

    # -- legacy query surface (TraceRecorder compatible) ---------------

    @property
    def memory(self) -> Optional[MemorySink]:
        """The first attached :class:`MemorySink`, if any."""
        for sink in self._sinks:
            if isinstance(sink, MemorySink):
                return sink
        return None

    def events(self) -> List[TraceEvent]:
        """All retained typed events (empty without a memory sink)."""
        memory = self.memory
        return memory.events() if memory is not None else []

    def __len__(self) -> int:
        memory = self.memory
        return len(memory) if memory is not None else 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return (event.to_record() for event in self.events())

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All retained records of one kind, as legacy records."""
        return [
            event.to_record()
            for event in self.events()
            if event.KIND == kind
        ]

    def count(self, kind: Optional[str] = None) -> int:
        """Number of retained events, optionally of one kind."""
        if kind is None:
            return len(self)
        return sum(1 for event in self.events() if event.KIND == kind)

    def kinds(self) -> Dict[str, int]:
        """Mapping of retained event kind to occurrence count."""
        counts: Dict[str, int] = {}
        for event in self.events():
            counts[event.KIND] = counts.get(event.KIND, 0) + 1
        return counts

    def between(self, start: float, end: float) -> List[TraceRecord]:
        """Retained records with ``start <= time < end``."""
        if end < start:
            raise ValueError("end must not precede start")
        return [
            event.to_record()
            for event in self.events()
            if start <= event.time < end
        ]

    def clear(self) -> None:
        """Discard the memory sink's retained events, if one exists."""
        memory = self.memory
        if memory is not None:
            memory.clear()


_AMBIENT: List[Instrumentation] = []


@contextmanager
def use_instrumentation(instrumentation: Instrumentation):
    """Install an ambient instrumentation default for nested builds.

    Every ``build_network`` call inside the ``with`` block folds this
    facade's sinks into the network's instrumentation, so any
    experiment or sweep can be traced without changing its signature::

        with use_instrumentation(Instrumentation((JsonlSink(path),))):
            run(loads_packets_per_slot=(0.05,))

    The default is process-local: worker processes of a ``jobs > 1``
    fan-out do not inherit it.
    """
    _AMBIENT.append(instrumentation)
    try:
        yield instrumentation
    finally:
        _AMBIENT.pop()


def ambient_instrumentation() -> Optional[Instrumentation]:
    """The innermost ambient facade, or ``None`` outside any context."""
    return _AMBIENT[-1] if _AMBIENT else None
