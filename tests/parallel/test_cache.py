"""The content-addressed result cache: hits must be bit-identical.

The pinned properties:

* the cache key covers exactly the spec's *work* (kind, target,
  params, seed, sanitize) and nothing else — relabelled or reschedued
  specs share entries;
* a warm read returns the same payload, digests included, as the
  execution that populated it, without re-executing anything;
* corruption (torn writes, bit flips) quarantines the entry and reads
  as a miss — never an exception, never a wrong row;
* genuine divergence (journal vs cache, recompute vs cache) is a hard
  :class:`CacheDivergenceError`, never a silent stale row.
"""

import json
import os

import pytest

from repro.parallel.cache import (
    CacheDivergenceError,
    ResultCache,
    resolve_cache,
)
from repro.parallel.checkpoint import ResultJournal
from repro.parallel.pool import run_tasks
from repro.parallel.task import TaskSpec, execute_task

WORKERS = "tests.parallel.workers"


def echo_spec(task_id, **params):
    return TaskSpec(
        task_id=task_id,
        kind="function",
        target=f"{WORKERS}:echo",
        params=params,
    )


def logged_spec(task_id, log_path, **params):
    """A spec whose every *execution* appends a line to ``log_path`` —
    the witness that cached runs execute nothing."""
    return TaskSpec(
        task_id=task_id,
        kind="function",
        target=f"{WORKERS}:slow_echo",
        params={"log_path": str(log_path), "delay_s": 0.0, **params},
    )


def execution_count(log_path):
    if not os.path.exists(log_path):
        return 0
    with open(log_path, "r", encoding="utf-8") as handle:
        return len(handle.readlines())


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


class TestCacheSetup:
    def test_fresh_directory_gets_marker(self, tmp_path):
        root = tmp_path / "cache"
        ResultCache(str(root))
        marker = json.loads((root / "cache.json").read_text())
        assert marker["cache"] == "repro-result-cache"

    def test_reopen_existing_cache(self, tmp_path):
        root = str(tmp_path / "cache")
        first = ResultCache(root)
        spec = echo_spec("a", value=1)
        first.put(spec, execute_task(spec))
        second = ResultCache(root)
        assert second.get(spec) is not None

    def test_refuses_unmarked_nonempty_directory(self, tmp_path):
        (tmp_path / "stuff.txt").write_text("precious data\n")
        with pytest.raises(ValueError, match="no cache marker"):
            ResultCache(str(tmp_path))

    def test_refuses_foreign_marker(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        (root / "cache.json").write_text('{"cache": "something-else"}')
        with pytest.raises(ValueError, match="not a repro result cache"):
            ResultCache(str(root))

    def test_refuses_future_version(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        (root / "cache.json").write_text(
            '{"cache": "repro-result-cache", "version": 99}'
        )
        with pytest.raises(ValueError, match="version"):
            ResultCache(str(root))

    def test_resolve_cache_accepts_all_spellings(self, tmp_path):
        assert resolve_cache(None) is None
        opened = ResultCache(str(tmp_path / "a"))
        assert resolve_cache(opened) is opened
        from_path = resolve_cache(str(tmp_path / "b"))
        assert isinstance(from_path, ResultCache)


class TestKeyDiscipline:
    def test_task_id_not_part_of_key(self, cache):
        assert cache.key_for(echo_spec("name-one", value=3)) == cache.key_for(
            echo_spec("totally-different", value=3)
        )

    def test_scheduling_knobs_not_part_of_key(self, cache):
        relaxed = TaskSpec(
            task_id="a",
            kind="function",
            target=f"{WORKERS}:echo",
            params={"value": 3},
            timeout_s=120.0,
            retries=9,
        )
        assert cache.key_for(echo_spec("a", value=3)) == cache.key_for(relaxed)

    def test_params_seed_and_sanitize_are_part_of_key(self, cache):
        base = echo_spec("a", value=3)
        keys = {
            cache.key_for(base),
            cache.key_for(echo_spec("a", value=4)),
            cache.key_for(
                TaskSpec(
                    task_id="a",
                    kind="function",
                    target=f"{WORKERS}:echo",
                    params={"value": 3},
                    seed=7,
                )
            ),
            cache.key_for(
                TaskSpec(
                    task_id="a",
                    kind="function",
                    target=f"{WORKERS}:echo",
                    params={"value": 3},
                    sanitize=True,
                )
            ),
        }
        assert len(keys) == 4


class TestHitIdentity:
    def test_roundtrip_is_bit_identical(self, cache):
        spec = echo_spec("original", value=42, tag="x")
        stored = execute_task(spec)
        assert cache.put(spec, stored)
        hit = cache.get(spec)
        assert hit.payload == stored.payload
        assert hit.payload_digest == stored.payload_digest
        assert hit.ok

    def test_hit_carries_the_requesting_task_id(self, cache):
        spec = echo_spec("first-label", value=1)
        cache.put(spec, execute_task(spec))
        relabelled = echo_spec("second-label", value=1)
        hit = cache.get(relabelled)
        assert hit is not None
        assert hit.task_id == "second-label"

    def test_miss_returns_none_and_counts(self, cache):
        assert cache.get(echo_spec("a", value=1)) is None
        assert cache.misses == 1
        assert cache.hits == 0

    def test_failed_results_are_never_cached(self, cache):
        spec = TaskSpec(
            task_id="boom",
            kind="function",
            target=f"{WORKERS}:explode",
            params={},
        )
        failed = execute_task(spec)
        assert not failed.ok
        assert not cache.put(spec, failed)
        assert cache.get(spec) is None

    def test_stats_shape(self, cache):
        spec = echo_spec("a", value=1)
        cache.put(spec, execute_task(spec))
        cache.get(spec)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["quarantined"] == 0
        assert stats["session"] == {
            "hits": 1, "misses": 0, "puts": 1, "corrupt": 0,
        }


class TestPoolIntegration:
    def test_warm_run_executes_nothing(self, cache, tmp_path):
        log = tmp_path / "executions.log"
        specs = [logged_spec(f"t{i}", log, value=i) for i in range(3)]
        cold = run_tasks(specs, jobs=1, cache=cache)
        assert execution_count(log) == 3
        warm = run_tasks(specs, jobs=1, cache=cache)
        assert execution_count(log) == 3  # nothing re-executed
        assert [r.payload_digest for r in warm] == [
            r.payload_digest for r in cold
        ]
        assert [r.payload for r in warm] == [r.payload for r in cold]

    def test_relabelled_sweep_shares_entries(self, cache, tmp_path):
        log = tmp_path / "executions.log"
        run_tasks(
            [logged_spec(f"plan-a-{i}", log, value=i) for i in range(3)],
            jobs=1,
            cache=cache,
        )
        relabelled = [
            logged_spec(f"plan-b-{i}", log, value=i) for i in range(3)
        ]
        results = run_tasks(relabelled, jobs=1, cache=cache)
        assert execution_count(log) == 3
        assert [r.task_id for r in results] == [s.task_id for s in relabelled]

    def test_partial_cache_schedules_only_misses(self, cache, tmp_path):
        log = tmp_path / "executions.log"
        run_tasks([logged_spec("t0", log, value=0)], jobs=1, cache=cache)
        mixed = [logged_spec(f"t{i}", log, value=i) for i in range(3)]
        run_tasks(mixed, jobs=1, cache=cache)
        assert execution_count(log) == 3  # 1 cold + 2 misses


class TestJournalComposition:
    def test_journal_and_cache_never_double_execute(self, cache, tmp_path):
        log = tmp_path / "executions.log"
        journal_path = tmp_path / "j.jsonl"
        specs = [logged_spec(f"t{i}", log, value=i) for i in range(3)]
        with ResultJournal(journal_path, specs) as journal:
            run_tasks(specs, jobs=1, journal=journal, cache=cache)
        assert execution_count(log) == 3
        with ResultJournal(journal_path, specs) as journal:
            run_tasks(specs, jobs=1, journal=journal, cache=cache)
        assert execution_count(log) == 3

    def test_journal_hits_backfill_the_cache(self, cache, tmp_path):
        log = tmp_path / "executions.log"
        journal_path = tmp_path / "j.jsonl"
        specs = [logged_spec(f"t{i}", log, value=i) for i in range(2)]
        with ResultJournal(journal_path, specs) as journal:
            run_tasks(specs, jobs=1, journal=journal)  # no cache yet
        assert cache.stats()["entries"] == 0
        with ResultJournal(journal_path, specs) as journal:
            run_tasks(specs, jobs=1, journal=journal, cache=cache)
        assert execution_count(log) == 2  # journal replay, no re-run
        assert cache.stats()["entries"] == 2

    def test_cache_hits_are_journaled(self, cache, tmp_path):
        log = tmp_path / "executions.log"
        specs = [logged_spec(f"t{i}", log, value=i) for i in range(2)]
        run_tasks(specs, jobs=1, cache=cache)
        journal_path = tmp_path / "j.jsonl"
        with ResultJournal(journal_path, specs) as journal:
            run_tasks(specs, jobs=1, journal=journal, cache=cache)
        assert execution_count(log) == 2
        with ResultJournal(journal_path, specs) as journal:
            assert set(journal.completed) == {"t0", "t1"}

    def test_results_accessor_preserves_order(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        specs = [echo_spec(f"t{i}", value=i) for i in range(3)]
        with ResultJournal(journal_path, specs) as journal:
            run_tasks(specs, jobs=1, journal=journal)
            recorded = journal.results()
        assert [r.task_id for r in recorded] == ["t0", "t1", "t2"]
        assert all(r.ok for r in recorded)


class TestDivergence:
    def test_ensure_accepts_identical_result(self, cache):
        spec = echo_spec("a", value=1)
        result = execute_task(spec)
        cache.put(spec, result)
        cache.ensure(spec, result)  # no raise, no duplicate
        assert cache.stats()["entries"] == 1

    def test_ensure_writes_when_absent(self, cache):
        spec = echo_spec("a", value=1)
        cache.ensure(spec, execute_task(spec))
        assert cache.stats()["entries"] == 1

    def test_divergent_result_is_a_hard_error(self, cache):
        spec = echo_spec("a", value=1)
        cache.put(spec, execute_task(spec))
        impostor = execute_task(echo_spec("a", value=2))
        with pytest.raises(CacheDivergenceError, match="divergence"):
            cache.ensure(spec, impostor)


def entry_paths(cache):
    paths = []
    for shard in sorted(os.listdir(cache.objects_dir)):
        shard_dir = os.path.join(cache.objects_dir, shard)
        for name in sorted(os.listdir(shard_dir)):
            if name.endswith(".json"):
                paths.append(os.path.join(shard_dir, name))
    return paths


class TestCorruption:
    def populate(self, cache, count=2):
        specs = [echo_spec(f"t{i}", value=i) for i in range(count)]
        for spec in specs:
            cache.put(spec, execute_task(spec))
        return specs

    def test_truncated_entry_is_quarantined_miss(self, cache):
        specs = self.populate(cache)
        path = entry_paths(cache)[0]
        text = open(path, "r", encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text[: len(text) // 2])  # torn write
        hits = [cache.get(spec) for spec in specs]
        assert hits.count(None) == 1  # the torn one misses
        assert cache.corrupt == 1
        assert cache.stats()["quarantined"] == 1
        assert not os.path.exists(path)  # moved aside, not served

    def test_bit_flip_is_quarantined_miss(self, cache):
        specs = self.populate(cache, count=1)
        path = entry_paths(cache)[0]
        entry = json.loads(open(path, "r", encoding="utf-8").read())
        entry["record"]["payload"]["value"] = 999  # digest now stale
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert cache.get(specs[0]) is None
        assert cache.stats()["quarantined"] == 1

    def test_verify_reports_corruption_without_raising(self, cache):
        self.populate(cache, count=3)
        path = entry_paths(cache)[1]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        report = cache.verify()
        assert report["checked"] == 3
        assert report["corrupt_quarantined"] == 1
        assert len(report["corrupt_keys"]) == 1
        # A second verify over the cleaned store is clean.
        assert cache.verify()["corrupt_quarantined"] == 0

    def test_verify_recompute_confirms_clean_entries(self, cache):
        self.populate(cache, count=2)
        report = cache.verify(recompute=2)
        assert report["recomputed"] == 2
        assert report["corrupt_quarantined"] == 0

    def test_verify_recompute_catches_consistent_lies(self, cache):
        # An entry whose seal is internally consistent but whose payload
        # does not match what the spec actually computes: only
        # recomputation can catch it, and it must be a hard error.
        from repro.parallel.cache import _entry_digest
        from repro.parallel.task import payload_digest

        self.populate(cache, count=1)
        path = entry_paths(cache)[0]
        entry = json.loads(open(path, "r", encoding="utf-8").read())
        entry["record"]["payload"]["value"] = 999
        entry["record"]["payload_digest"] = payload_digest(
            entry["record"]["payload"]
        )
        entry["digest"] = _entry_digest(
            entry["key"], entry["spec"], entry["record"]
        )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True)
        assert cache.verify()["corrupt_quarantined"] == 0  # seal passes
        with pytest.raises(CacheDivergenceError, match="recomputation"):
            cache.verify(recompute=1)


class TestConcurrency:
    def test_racing_writers_leave_one_valid_entry(self, tmp_path):
        # Four worker processes each open the same cache and repeatedly
        # put the same key: the atomic tmp+rename protocol must leave a
        # single complete, verifiable entry whatever the interleaving.
        root = str(tmp_path / "cache")
        ResultCache(root)  # pre-create so workers race only on entries
        racers = [
            TaskSpec(
                task_id=f"racer-{i}",
                kind="function",
                target=f"{WORKERS}:cache_put_echo",
                params={"cache_root": root, "value": 5},
            )
            for i in range(4)
        ]
        outcomes = run_tasks(racers, jobs=4)
        assert all(r.ok for r in outcomes), [r.error for r in outcomes]
        cache = ResultCache(root)
        raced = TaskSpec(
            task_id="raced",
            kind="function",
            target=f"{WORKERS}:echo",
            params={"value": 5},
        )
        hit = cache.get(raced)
        assert hit is not None
        assert hit.payload == {"value": 5}
        assert cache.corrupt == 0
        assert cache.verify()["corrupt_quarantined"] == 0


class TestGc:
    def populate(self, cache, count=3):
        for i in range(count):
            spec = echo_spec(f"t{i}", value=i)
            cache.put(spec, execute_task(spec))

    def test_max_age_zero_evicts_everything(self, cache):
        self.populate(cache)
        report = cache.gc(max_age_s=0.0)
        assert report["evicted"] == 3
        assert report["remaining_entries"] == 0
        assert report["freed_bytes"] > 0

    def test_max_bytes_keeps_newest(self, cache):
        self.populate(cache)
        paths = entry_paths(cache)
        # Make mtimes strictly ordered so "oldest first" is well-defined.
        for index, path in enumerate(paths):
            os.utime(path, (1_000_000 + index, 1_000_000 + index))
        keep = os.stat(paths[-1]).st_size
        report = cache.gc(max_bytes=keep)
        assert report["remaining_entries"] == 1
        assert os.path.exists(paths[-1])

    def test_generous_limits_evict_nothing(self, cache):
        self.populate(cache)
        report = cache.gc(max_bytes=10**9, max_age_s=10**9)
        assert report["evicted"] == 0
        assert report["remaining_entries"] == 3

    def test_gc_purges_quarantine(self, cache):
        self.populate(cache, count=1)
        path = entry_paths(cache)[0]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        cache.verify()  # quarantines it
        assert cache.stats()["quarantined"] == 1
        report = cache.gc(max_age_s=10**9)
        assert report["quarantine_purged"] == 1
        assert cache.stats()["quarantined"] == 0

    def test_negative_limits_refused(self, cache):
        with pytest.raises(ValueError):
            cache.gc(max_bytes=-1)
        with pytest.raises(ValueError):
            cache.gc(max_age_s=-1.0)
