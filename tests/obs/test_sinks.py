"""Sinks: in-memory ring, JSONL with rotation, binary columnar files."""

import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.events import (
    Delivered,
    FaultInject,
    RxFail,
    RxOk,
    TxStart,
)
from repro.obs.sinks import (
    BinarySink,
    JsonlSink,
    MemorySink,
    read_binary,
    read_jsonl,
    read_trace,
)


def sample_events():
    """A short mixed-kind sequence covering str/int/float/tuple/NaN."""
    return [
        TxStart(time=0.5, source=0, destination=3, power_w=0.02, packet=1),
        RxOk(time=0.75, receiver=3, source=0, min_sir=12.5, packet=1),
        RxFail(
            time=1.0, receiver=2, source=4, reason="self_transmitting",
            types=(2, 3), packet=6, min_sir=math.nan,
        ),
        Delivered(
            time=1.5, station=3, packet=1, delay=1.0, hops=2, energy_j=4e-5,
        ),
        FaultInject(time=2.0, fault="fade", station=1, peer=2, value=6.0),
    ]


def assert_same_events(decoded, expected):
    """Equality that treats NaN == NaN (events are otherwise exact)."""
    assert len(decoded) == len(expected)
    for got, want in zip(decoded, expected):
        assert type(got) is type(want)
        assert got.time == want.time
        for key, value in want.payload().items():
            other = getattr(got, key)
            if isinstance(value, float) and math.isnan(value):
                assert math.isnan(other)
            else:
                assert other == value


class TestMemorySink:
    def test_collects_in_order(self):
        sink = MemorySink()
        events = sample_events()
        for event in events:
            sink.emit(event)
        assert sink.events()[0] is events[0]
        assert_same_events(sink.events(), events)
        assert len(sink) == len(events)
        assert_same_events(list(sink), events)

    def test_bounded_capacity_keeps_newest(self):
        sink = MemorySink(capacity=2)
        events = sample_events()
        for event in events:
            sink.emit(event)
        assert_same_events(sink.events(), events[-2:])

    def test_clear(self):
        sink = MemorySink()
        sink.emit(sample_events()[0])
        sink.clear()
        assert len(sink) == 0


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        events = sample_events()
        for event in events:
            sink.emit(event)
        sink.close()
        assert_same_events(read_jsonl(path), events)

    def test_rotation_segments_and_reassembly(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path, rotate_bytes=200)
        events = sample_events() * 10
        for event in events:
            sink.emit(event)
        sink.close()
        assert len(sink.segment_paths()) > 1
        for segment in sink.segment_paths():
            assert os.path.exists(segment)
        assert_same_events(read_jsonl(path), events)


class TestBinarySink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.npz")
        sink = BinarySink(path)
        events = sample_events()
        for event in events:
            sink.emit(event)
        sink.close()
        assert_same_events(read_binary(path), events)

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        sink = BinarySink(path)
        sink.close()
        assert read_binary(path) == []


class TestReadTrace:
    def test_sniffs_both_formats(self, tmp_path):
        events = sample_events()
        jsonl = str(tmp_path / "a.jsonl")
        binary = str(tmp_path / "b.npz")
        for sink in (JsonlSink(jsonl), BinarySink(binary)):
            for event in events:
                sink.emit(event)
            sink.close()
        assert_same_events(read_trace(jsonl), events)
        assert_same_events(read_trace(binary), events)


# Random event sequences exercising every column type the encoders
# support (bool columns come from TxOutcome in the integration tests;
# here the tuple/str/NaN columns are the tricky ones).
_events = st.lists(
    st.one_of(
        st.builds(
            TxStart,
            time=st.floats(0, 1e3, allow_nan=False),
            source=st.integers(0, 500),
            destination=st.integers(0, 500),
            power_w=st.floats(0, 10, allow_nan=False),
            packet=st.integers(0, 10**6),
        ),
        st.builds(
            RxFail,
            time=st.floats(0, 1e3, allow_nan=False),
            receiver=st.integers(0, 500),
            source=st.integers(0, 500),
            reason=st.sampled_from(["sir", "busy", "not_listening"]),
            types=st.lists(st.integers(1, 3), max_size=3).map(tuple),
            packet=st.integers(0, 10**6),
            min_sir=st.one_of(st.just(math.nan), st.floats(0, 1e6, allow_nan=False)),
        ),
        st.builds(
            Delivered,
            time=st.floats(0, 1e3, allow_nan=False),
            station=st.integers(0, 500),
            packet=st.integers(0, 10**6),
            delay=st.floats(0, 1e3, allow_nan=False),
            hops=st.integers(1, 30),
            energy_j=st.floats(0, 1, allow_nan=False),
        ),
    ),
    max_size=40,
)


class TestFormatsAgree:
    @settings(max_examples=25, deadline=None)
    @given(events=_events)
    def test_jsonl_and_binary_decode_identically(self, events, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("agree")
        jsonl = str(tmp_path / "t.jsonl")
        binary = str(tmp_path / "t.npz")
        for sink in (JsonlSink(jsonl), BinarySink(binary)):
            for event in events:
                sink.emit(event)
            sink.close()
        from_jsonl = read_jsonl(jsonl)
        from_binary = read_binary(binary)
        assert_same_events(from_jsonl, events)
        assert_same_events(from_binary, events)
        assert_same_events(from_binary, from_jsonl)
