"""The determinism sanitizer: invariants, digests, and opt-in plumbing."""

from heapq import heappush

import pytest

from repro.experiments.simsetup import run_loaded_network
from repro.sim.engine import Environment
from repro.sim.events import NORMAL, Event
from repro.sim.sanitizer import (
    ENV_VAR,
    DeterminismSanitizer,
    SanitizerError,
    sanitize_default,
    sanitized,
)


def drain(env):
    while True:
        try:
            env.step()
        except Exception:
            break


class TestOptIn:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert not Environment().sanitizing

    def test_explicit_flag(self):
        assert Environment(sanitize=True).sanitizing
        assert not Environment(sanitize=False).sanitizing

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        assert sanitize_default()
        assert Environment().sanitizing

    def test_env_var_falsey_values(self, monkeypatch):
        for value in ("", "0", "false", "off", "no"):
            monkeypatch.setenv(ENV_VAR, value)
            assert not sanitize_default()

    def test_context_manager_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        with sanitized(False):
            assert not Environment().sanitizing
        assert Environment().sanitizing

    def test_explicit_flag_beats_context(self):
        with sanitized(True):
            assert not Environment(sanitize=False).sanitizing

    def test_digest_requires_sanitizer(self):
        with pytest.raises(RuntimeError, match="REPRO_SANITIZE"):
            Environment(sanitize=False).replay_digest()


class TestInvariants:
    def test_catches_schedule_into_the_past(self):
        """An event smuggled into the wheel behind `now` is caught."""
        env = Environment(sanitize=True)
        env.run(until=env.timeout(5.0))
        stale = Event(env)
        stale._ok = True
        # Bypass schedule()'s delay check, as a buggy component that
        # manipulates the queue (or corrupts `now`) effectively would.
        heappush(env._queue, (1.0, NORMAL, 999, stale))
        with pytest.raises(SanitizerError, match="backwards"):
            env.step()

    def test_env_var_enabled_sanitizer_catches_injected_bug(self, monkeypatch):
        """REPRO_SANITIZE=1 alone (no code changes) catches the bug."""
        monkeypatch.setenv(ENV_VAR, "1")
        env = Environment()
        env.run(until=env.timeout(5.0))
        stale = Event(env)
        stale._ok = True
        heappush(env._queue, (1.0, NORMAL, 999, stale))
        with pytest.raises(SanitizerError, match="scheduled into the past"):
            env.step()

    def test_unsanitized_engine_misses_the_same_bug(self):
        env = Environment(sanitize=False)
        env.run(until=env.timeout(5.0))
        stale = Event(env)
        stale._ok = True
        heappush(env._queue, (1.0, NORMAL, 999, stale))
        env.step()  # silently rewinds time — the failure mode we sanitize
        assert env.now == pytest.approx(1.0)

    def test_catches_rescheduling_processed_event(self):
        env = Environment(sanitize=True)
        event = env.event()
        event.succeed("once")
        env.run()
        assert event.processed
        with pytest.raises(SanitizerError, match="one-shot"):
            env.schedule(event)

    def test_catches_non_finite_schedule(self):
        env = Environment(sanitize=True)
        event = env.event()
        event._ok = True
        with pytest.raises(SanitizerError, match="non-finite"):
            env.schedule(event, delay=float("nan"))

    def test_clean_run_unaffected(self):
        env = Environment(sanitize=True)
        results = []

        def proc(env):
            value = yield env.timeout(1.0, "tick")
            results.append(value)
            return env.now

        process = env.process(proc(env))
        env.run()
        assert results == ["tick"]
        assert process.value == pytest.approx(1.0)


class TestReplayDigest:
    def test_digest_counts_events(self):
        env = Environment(sanitize=True)
        env.timeout(1.0)
        env.timeout(2.0)
        env.run()
        sanitizer = env._sanitizer
        assert sanitizer.events_processed == 2

    def test_identical_scripted_runs_match(self):
        def run_once():
            env = Environment(sanitize=True)

            def proc(env):
                for _ in range(5):
                    yield env.timeout(0.3)

            env.process(proc(env))
            env.run()
            return env.replay_digest()

        assert run_once() == run_once()

    def test_different_schedules_differ(self):
        def run_once(delay):
            env = Environment(sanitize=True)
            env.timeout(delay)
            env.run()
            return env.replay_digest()

        assert run_once(1.0) != run_once(2.0)

    def test_record_is_order_sensitive(self):
        first = DeterminismSanitizer()
        second = DeterminismSanitizer()
        env = Environment(sanitize=False)
        a, b = Event(env), Event(env)
        a._ok = True
        b._ok = False
        first.record(1.0, 0, a)
        first.record(2.0, 1, b)
        second.record(2.0, 1, b)
        second.record(1.0, 0, a)
        assert first.digest() != second.digest()


class TestT4Determinism:
    """The acceptance criterion: the collision-free scenario replays
    bit-identically under the same seed."""

    SCENARIO = dict(
        station_count=40,
        packets_per_slot=0.03,
        duration_slots=60.0,
        traffic_seed=29,
    )

    def _digest(self, placement_seed=69):
        with sanitized(True):
            network, result = run_loaded_network(
                placement_seed=placement_seed, **self.SCENARIO
            )
        assert network.env.sanitizing
        assert result.losses_total == 0  # still collision-free when sanitized
        return network.env.replay_digest()

    def test_same_seed_runs_are_bit_identical(self):
        assert self._digest() == self._digest()

    def test_different_seed_runs_differ(self):
        assert self._digest() != self._digest(placement_seed=70)
