#!/usr/bin/env python
"""Generate the tracked perf report (``BENCH_medium.json``).

Runs the seeded loaded-network scenario family through the perf harness
(:mod:`repro.analysis.perf`) and writes a JSON report of events/sec per
scenario.  Each scenario is run several times and the best (minimum
wall-clock) run is reported, which is the standard defence against
scheduler noise on shared hosts.

Usage::

    python tools/perfreport.py --quick --output BENCH_medium.json
    python tools/perfreport.py --baseline old_report.json
    python tools/perfreport.py --scenarios 100x0.1,500x0.5

``--baseline`` points at a previous report (same format); matching
scenarios gain a ``speedup`` ratio in the notes.  Absolute numbers are
host-dependent; the ratios are the comparable quantity.  ``--scenarios``
names explicit ``STATIONSxLOAD`` pairs and overrides the quick/full
sets.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis.perf import (  # noqa: E402  (path setup above)
    PerfSample,
    format_samples,
    run_perf_scenario,
    write_report,
)

#: (stations, load) pairs; 60 simulated slots, seed 29 throughout.
QUICK_SCENARIOS: Tuple[Tuple[int, float], ...] = ((100, 0.1),)
FULL_SCENARIOS: Tuple[Tuple[int, float], ...] = (
    (100, 0.1),
    (500, 0.1),
    (500, 0.5),
    (500, 1.0),
)


def parse_scenarios(raw: str) -> Tuple[Tuple[int, float], ...]:
    """Parse ``STATIONSxLOAD`` pairs: ``"100x0.1,500x0.5"`` →
    ``((100, 0.1), (500, 0.5))``."""
    scenarios = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        stations_text, separator, load_text = part.partition("x")
        try:
            if not separator:
                raise ValueError(part)
            scenarios.append((int(stations_text), float(load_text)))
        except ValueError:
            raise ValueError(
                f"bad scenario {part!r}; want STATIONSxLOAD, e.g. 100x0.1"
            ) from None
    if not scenarios:
        raise ValueError(f"no scenarios in {raw!r}")
    return tuple(scenarios)


def best_of(stations: int, load: float, rounds: int, seed: int) -> PerfSample:
    """Best (minimum wall-clock) of ``rounds`` runs of one scenario."""
    samples = [
        run_perf_scenario(stations=stations, load=load, seed=seed)
        for _ in range(rounds)
    ]
    return min(samples, key=lambda sample: sample.wall_s)


def speedups(
    samples: List[PerfSample], baseline_path: str
) -> Dict[str, float]:
    """Events/sec ratios vs a previous report, per matching scenario."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    before = {
        (scenario["stations"], scenario["load"]): scenario["events_per_s"]
        for scenario in payload.get("scenarios", [])
    }
    ratios: Dict[str, float] = {}
    for sample in samples:
        old = before.get((sample.stations, sample.load))
        if old:
            ratios[f"{sample.stations}@{sample.load}"] = round(
                sample.events_per_s / old, 3
            )
    return ratios


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the 100-station scenario (the CI perf-smoke set)",
    )
    parser.add_argument("--rounds", type=int, default=3,
                        help="runs per scenario; the best is reported")
    parser.add_argument("--seed", type=int, default=29)
    parser.add_argument("--output", default="BENCH_medium.json")
    parser.add_argument("--baseline", metavar="PATH",
                        help="previous report to compute speedups against")
    parser.add_argument(
        "--scenarios", metavar="STATIONSxLOAD,...",
        help=(
            "explicit scenario list (e.g. 100x0.1,500x0.5); overrides "
            "--quick/full"
        ),
    )
    args = parser.parse_args(argv)

    if args.scenarios:
        try:
            scenarios = parse_scenarios(args.scenarios)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    else:
        scenarios = QUICK_SCENARIOS if args.quick else FULL_SCENARIOS
    samples = [
        best_of(stations, load, args.rounds, args.seed)
        for stations, load in scenarios
    ]
    print(format_samples(samples))

    notes: Dict[str, object] = {
        "rounds": args.rounds,
        "selection": "minimum wall-clock run per scenario",
    }
    if args.baseline:
        notes["speedup_vs_baseline"] = speedups(samples, args.baseline)
    write_report(args.output, samples, notes=notes)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
