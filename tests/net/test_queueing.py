"""Tests for the transmit-queue disciplines."""

import pytest

from repro.net.packet import Packet
from repro.net.queueing import FifoQueue, NeighborQueues


def packet(destination=9):
    return Packet(source=0, destination=destination, size_bits=100.0, created_at=0.0)


class TestNeighborQueues:
    def test_one_head_per_next_hop(self):
        queues = NeighborQueues()
        first_to_a = packet()
        queues.enqueue(1, first_to_a)
        queues.enqueue(1, packet())
        second_hop = packet()
        queues.enqueue(2, second_hop)
        heads = queues.heads()
        assert (1, first_to_a) in heads
        assert (2, second_hop) in heads
        assert len(heads) == 2

    def test_no_hol_blocking(self):
        # The defining property (Section 7.2): a packet for hop 2 is
        # eligible even while older traffic for hop 1 waits.
        queues = NeighborQueues()
        queues.enqueue(1, packet())
        late = packet()
        queues.enqueue(2, late)
        assert queues.pop(2) is late

    def test_fifo_within_a_neighbor(self):
        queues = NeighborQueues()
        first, second = packet(), packet()
        queues.enqueue(1, first)
        queues.enqueue(1, second)
        assert queues.pop(1) is first
        assert queues.pop(1) is second

    def test_pop_empty_raises(self):
        with pytest.raises(LookupError):
            NeighborQueues().pop(1)

    def test_len_and_empty(self):
        queues = NeighborQueues()
        assert queues.is_empty
        queues.enqueue(1, packet())
        assert len(queues) == 1

    def test_depth_and_peak(self):
        queues = NeighborQueues()
        queues.enqueue(1, packet())
        queues.enqueue(1, packet())
        queues.pop(1)
        queues.enqueue(2, packet())
        assert queues.depth(1) == 1
        assert queues.peak_size == 2
        assert queues.total_enqueued == 3

    def test_next_hops_iterates_backlogged_only(self):
        queues = NeighborQueues()
        queues.enqueue(1, packet())
        queues.enqueue(2, packet())
        queues.pop(1)
        assert list(queues.next_hops()) == [2]


class TestFifoQueue:
    def test_single_head(self):
        queue = FifoQueue()
        first = packet()
        queue.enqueue(1, first)
        queue.enqueue(2, packet())
        assert queue.heads() == [(1, first)]

    def test_overtaking_forbidden(self):
        queue = FifoQueue()
        queue.enqueue(1, packet())
        queue.enqueue(2, packet())
        with pytest.raises(LookupError, match="head-of-line"):
            queue.pop(2)

    def test_pop_in_arrival_order(self):
        queue = FifoQueue()
        first, second = packet(), packet()
        queue.enqueue(1, first)
        queue.enqueue(2, second)
        assert queue.pop(1) is first
        assert queue.pop(2) is second

    def test_pop_empty_raises(self):
        with pytest.raises(LookupError):
            FifoQueue().pop(1)

    def test_counters(self):
        queue = FifoQueue()
        queue.enqueue(1, packet())
        queue.enqueue(1, packet())
        queue.pop(1)
        assert queue.peak_size == 2
        assert queue.total_enqueued == 2
        assert len(queue) == 1


class TestBoundedQueues:
    def test_default_is_unbounded(self):
        queues = NeighborQueues()
        for _ in range(1000):
            assert queues.enqueue(1, packet())
        assert queues.overflow_drops == 0

    def test_capacity_bounds_total_backlog(self):
        queues = NeighborQueues(capacity=3)
        assert queues.enqueue(1, packet())
        assert queues.enqueue(2, packet())
        assert queues.enqueue(1, packet())
        assert not queues.enqueue(3, packet())
        assert queues.overflow_drops == 1
        # Draining frees capacity again.
        queues.pop(1)
        assert queues.enqueue(3, packet())

    def test_fifo_capacity(self):
        queue = FifoQueue(capacity=2)
        assert queue.enqueue(1, packet())
        assert queue.enqueue(2, packet())
        assert not queue.enqueue(1, packet())
        assert queue.overflow_drops == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            NeighborQueues(capacity=0)
        with pytest.raises(ValueError):
            FifoQueue(capacity=0)
