"""Event primitives for the discrete-event engine.

The engine follows the familiar process-interaction style (as in SimPy,
which is not available in this offline environment): an
:class:`Event` is a one-shot occurrence that carries a value or an
exception, and processes (see :mod:`repro.sim.process`) suspend on
events by ``yield``-ing them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Environment

__all__ = [
    "Event",
    "Timeout",
    "Condition",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "URGENT",
    "NORMAL",
]

#: Scheduling priorities; lower runs first among simultaneous events.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence in simulated time.

    Lifecycle: *pending* -> *triggered* (scheduled, value fixed) ->
    *processed* (callbacks ran).  Events succeed with a value or fail
    with an exception; a failed event re-raises inside any process that
    waits on it.

    Events are the engine's highest-churn allocation (every timeout,
    condition, and process resume makes one), so the hierarchy uses
    ``__slots__`` to keep them dict-free.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has occurred (value fixed, scheduled)."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded; valid only once triggered."""
        if self._ok is None:
            raise RuntimeError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._ok is None:
            raise RuntimeError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(False, exception, delay)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine will not re-raise."""
        self._defused = True

    def _trigger(self, ok: bool, value: Any, delay: float = 0.0) -> None:
        if self._ok is not None:
            raise RuntimeError("event already triggered")
        if delay < 0.0:
            raise ValueError("delay must be non-negative")
        self._ok = ok
        self._value = value
        self.env.schedule(self, delay)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(self)

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed.

        If the event was already processed the callback runs
        immediately (same semantics a late waiter would expect).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def unsubscribe(self, callback: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback, if still pending."""
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0.0:
            raise ValueError("timeout delay must be non-negative")
        super().__init__(env)
        self.delay = delay
        self._trigger(True, value, delay)


class Condition(Event):
    """An event that triggers when a predicate over its children holds.

    Children that fail propagate their failure to the condition
    immediately.  The condition's value is a dict mapping each
    *processed* child to its value at the moment the condition fired
    (a Timeout is triggered from creation, so `triggered` would wrongly
    include pending timers).
    """

    __slots__ = ("_events", "_evaluate", "_done")

    def __init__(
        self,
        env: "Environment",
        events: List[Event],
        evaluate: Callable[[List[Event], int], bool],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._done = 0
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must belong to the same environment")
            event.subscribe(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._done += 1
        if self._evaluate(self._events, self._done):
            self.succeed(
                {child: child.value for child in self._events if child.processed}
            )


class AnyOf(Condition):
    """Triggers as soon as any child event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env, events, lambda _events, done: done >= 1)


class AllOf(Condition):
    """Triggers when every child event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env, events, lambda events, done: done == len(events))


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    Attributes:
        cause: the value passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause
