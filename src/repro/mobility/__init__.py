"""Mobility churn and continuous time-varying channels.

The paper's setting (Section 2) is a metropolitan network of *slowly
moving* stations.  This package supplies the missing dynamics: seed-
tree-deterministic trajectory models (:mod:`repro.mobility.models`)
and a continuous channel process (:mod:`repro.mobility.channel`) that
pushes incremental mobility/fading gain updates into the medium and
drives Section 7.1 re-acquisition when neighbour sets turn over.

An inert :class:`~repro.mobility.channel.ChannelSpec` installs nothing
at all — replay digests of existing experiments are bit-identical
with and without this package imported, mirroring the empty-fault-plan
guarantee.
"""

from repro.mobility.channel import (
    ChannelProcess,
    ChannelSpec,
    FadingSpec,
    install_channel,
)
from repro.mobility.models import ClusterDrift, MobilityModel, RandomWaypoint

__all__ = [
    "ChannelProcess",
    "ChannelSpec",
    "ClusterDrift",
    "FadingSpec",
    "MobilityModel",
    "RandomWaypoint",
    "install_channel",
]
