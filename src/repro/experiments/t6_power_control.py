"""Experiment T6: power-control ablation (Section 6.1).

Claims made executable:

* constant-delivered-power control collapses the variance of delivered
  powers (and hence received SIRs) relative to full-power transmission
  ("by fixing the received power level, the variance in signal-to-noise
  ratio can be reduced");
* density self-compensation: "if the density in some area is
  quadrupled, the distance to neighbors is cut in half, so power levels
  can be cut by a quarter, maintaining constant power density" — the
  radiated power per unit area stays roughly constant as density
  scales.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.power_control import ConstantDeliveredPolicy, FullPowerPolicy
from repro.experiments.runner import ExperimentReport, register
from repro.propagation.geometry import uniform_disk
from repro.propagation.matrix import PropagationMatrix
from repro.propagation.models import FreeSpace
from repro.routing.min_energy import min_energy_tables

__all__ = ["run"]


def _delivered_powers(placement, policy, max_power: float) -> np.ndarray:
    """Delivered power for every routing hop under a policy."""
    model = FreeSpace(near_field_clamp=1e-6)
    matrix = PropagationMatrix.from_placement(placement, model)
    reach = 2.0 * placement.characteristic_length
    min_gain = float(model.power_gain(reach))
    tables = min_energy_tables(matrix.observed(min_gain=min_gain))
    delivered = []
    for station, table in tables.items():
        for hop in table.neighbors_in_use():
            gain = matrix.gain(hop, station)
            power = policy.transmit_power(gain, max_power)
            delivered.append(power * gain)
    return np.asarray(delivered)


def _radiated_density(placement, max_power: float) -> float:
    """Total power-controlled radiated power per unit area."""
    model = FreeSpace(near_field_clamp=1e-6)
    matrix = PropagationMatrix.from_placement(placement, model)
    reach = 2.0 * placement.characteristic_length
    min_gain = float(model.power_gain(reach))
    tables = min_energy_tables(matrix.observed(min_gain=min_gain))
    policy = ConstantDeliveredPolicy(target_received_w=1.0)
    total = 0.0
    used = 0
    for station, table in tables.items():
        hops = table.neighbors_in_use()
        if not hops:
            continue
        # A station's long-run radiated power is its mean hop power.
        powers = [
            policy.transmit_power(matrix.gain(hop, station), max_power)
            for hop in hops
        ]
        total += float(np.mean(powers))
        used += 1
    area = math.pi * placement.region_radius**2
    return total / area


@register("T6")
def run(
    station_count: int = 150,
    seed: int = 43,
    density_factors: Sequence[float] = (1.0, 4.0, 16.0),
) -> ExperimentReport:
    """Measure SIR-variance reduction and density self-compensation."""
    report = ExperimentReport(
        experiment_id="T6",
        title="Power control: delivered-power variance and density compensation",
        columns=("policy", "delivered mean", "delivered spread (dB)", "-"),
    )
    placement = uniform_disk(station_count, radius=1000.0, seed=seed)
    max_power = 1e12  # effectively unclamped; the comparison is of policies

    for label, policy in (
        ("full power", FullPowerPolicy()),
        ("constant delivered", ConstantDeliveredPolicy(target_received_w=1.0)),
    ):
        delivered = _delivered_powers(placement, policy, max_power)
        spread_db = 10.0 * float(
            np.log10(delivered.max()) - np.log10(delivered.min())
        )
        report.add_row(label, float(delivered.mean()), spread_db, "")
        if label == "constant delivered":
            report.claim("delivered-power spread under control (dB)", 0.0, spread_db)

    full = _delivered_powers(placement, FullPowerPolicy(), max_power)
    controlled = _delivered_powers(
        placement, ConstantDeliveredPolicy(target_received_w=1.0), max_power
    )
    ratio = float(np.var(np.log10(full)) / max(np.var(np.log10(controlled)), 1e-30))
    report.claim("log-delivered-power variance ratio (full / controlled)", ">> 1", ratio)

    # Density compensation: same region, increasing station count.
    densities = []
    for factor in density_factors:
        scaled = uniform_disk(
            int(station_count * factor), radius=1000.0, seed=seed + int(factor)
        )
        densities.append(_radiated_density(scaled, max_power))
    base = densities[0]
    for factor, value in zip(density_factors, densities):
        report.add_row(
            f"radiated power density @ {factor:g}x density",
            value / base,
            0.0,
            "",
        )
    worst = max(value / base for value in densities) / min(
        value / base for value in densities
    )
    report.claim(
        "radiated power density variation across 16x density range",
        "~constant (within a small factor)",
        worst,
    )
    report.notes.append(
        "Delivered power is transmit power times path gain per routing hop. "
        "The density rows normalise to the baseline density; Section 6.1 "
        "predicts they stay near 1."
    )
    return report
