"""ALOHA channel access (pure and slotted), under the physical model.

"In the spirit of the original ALOHA [1], they are asynchronous, and
provide random access to the channel" (Section 2).  A station with a
packet transmits immediately; on failure it backs off a random interval
and retries, up to a retry limit.  The slotted variant aligns bursts to
a global slot grid — note that this grants the baseline the system-wide
synchronisation the paper's scheme deliberately avoids, which only
flatters the baseline.

Loss feedback is the simulator's oracle (an idealised, instantaneous,
never-lost acknowledgement), again flattering the baseline relative to
any real ALOHA deployment.
"""

from __future__ import annotations

import numpy as np

from repro.mac.base import MacProtocol
from repro.sim.process import ProcessGenerator

__all__ = ["AlohaMac"]


class AlohaMac(MacProtocol):
    """Pure or slotted ALOHA with binary exponential backoff.

    Args:
        rng: randomness for backoff draws.
        max_attempts: transmissions per packet before giving up.
        base_backoff: mean of the initial backoff interval, in units of
            packet airtime (doubles per failed attempt).
        slotted: align transmission starts to the global grid of
            packet-airtime slots.
    """

    name = "aloha"

    def __init__(
        self,
        rng: np.random.Generator,
        max_attempts: int = 8,
        base_backoff: float = 4.0,
        slotted: bool = False,
    ) -> None:
        super().__init__()
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        if base_backoff <= 0.0:
            raise ValueError("backoff scale must be positive")
        self.rng = rng
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.slotted = slotted
        if slotted:
            self.name = "slotted_aloha"
        self.dropped = 0

    def is_listening(self, now: float) -> bool:
        """ALOHA receivers are always on (the medium separately rules
        out reception while the local transmitter is keyed)."""
        return True

    def _airtime(self) -> float:
        station = self.station
        heads = station.queue.heads()
        size = heads[0][1].size_bits if heads else 1000.0
        return size / station.data_rate_bps

    def _next_slot_delay(self, airtime: float) -> float:
        now = self.station.env.now
        slot = int(now / airtime)
        boundary = slot * airtime
        if boundary < now - 1e-12 or boundary < now:
            boundary = (slot + 1) * airtime
        return max(boundary - now, 0.0)

    def _transmit(self, packet, next_hop: int) -> ProcessGenerator:
        """One burst attempt — the seam subclasses shape.

        The multi-level power MAC overrides this to draw a random power
        level per attempt; the retry loop in :meth:`run` stays shared.
        """
        return (yield from self.station.transmit_packet(packet, next_hop))

    def run(self) -> ProcessGenerator:
        station = self.station
        env = station.env
        while True:
            heads = station.queue.heads()
            if not heads:
                yield station.next_arrival()
                continue
            next_hop, packet = heads[0]
            station.dequeue(next_hop)
            airtime = packet.airtime(station.data_rate_bps)
            delivered = False
            for attempt in range(self.max_attempts):
                if self.slotted:
                    delay = self._next_slot_delay(airtime)
                    if delay > 0.0:
                        yield env.timeout(delay)
                success = yield from self._transmit(packet, next_hop)
                if success:
                    delivered = True
                    break
                # Binary exponential backoff on the oracle NACK.
                mean = self.base_backoff * (2.0**attempt) * airtime
                yield env.timeout(float(self.rng.exponential(mean)))
            if not delivered:
                self.dropped += 1
