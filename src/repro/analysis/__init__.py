"""Analysis: the paper's closed-form arguments, made executable."""

from repro.analysis.capacity import (
    bits_per_sec_per_khz,
    linearization_error,
    low_snr_linearization,
    rate_gain_from_duty_change,
    spectral_efficiency,
)
from repro.analysis.delay_model import (
    end_to_end_delay_slots,
    max_light_load,
    per_hop_delay_slots,
)
from repro.analysis.connectivity import (
    ConnectivityPoint,
    connectivity_sweep,
    largest_component_fraction,
)
from repro.analysis.metro import (
    LEGACY_SCENE_DENSITY,
    MetroProjection,
    MetroRunResult,
    MetroScene,
    build_metro_scene,
    run_metro_scene,
)
from repro.analysis.scheduling_stats import (
    OverlapMeasurement,
    expected_wait_slots,
    geometric_wait_pmf,
    measure_overlap,
    measure_waits,
    optimal_receive_fraction,
    pairwise_overlap_fraction,
    throughput_proxy,
    usable_fraction,
)
from repro.analysis.snr_decline import (
    FIGURE1_DUTY_CYCLES,
    FIGURE1_LOG10_RANGE,
    Figure1Row,
    figure1_series,
    monte_carlo_series,
)

__all__ = [
    "ConnectivityPoint",
    "FIGURE1_DUTY_CYCLES",
    "FIGURE1_LOG10_RANGE",
    "Figure1Row",
    "LEGACY_SCENE_DENSITY",
    "MetroProjection",
    "MetroRunResult",
    "MetroScene",
    "OverlapMeasurement",
    "bits_per_sec_per_khz",
    "build_metro_scene",
    "connectivity_sweep",
    "end_to_end_delay_slots",
    "expected_wait_slots",
    "figure1_series",
    "geometric_wait_pmf",
    "largest_component_fraction",
    "linearization_error",
    "low_snr_linearization",
    "measure_overlap",
    "max_light_load",
    "measure_waits",
    "monte_carlo_series",
    "optimal_receive_fraction",
    "pairwise_overlap_fraction",
    "per_hop_delay_slots",
    "rate_gain_from_duty_change",
    "run_metro_scene",
    "spectral_efficiency",
    "throughput_proxy",
    "usable_fraction",
]
