"""Bench T14: capacity-law fit across the MAC frontier."""

from repro.experiments import get_experiment


def test_bench_t14_capacity(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("T14")(
            station_counts=(20, 40, 80),
        ),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    # Enough contenders survive saturating load to fit a power law.
    assert report.claims["MACs with a fitted scaling exponent"][1] >= 4
    # The scheme delivers the most per node in the densest network ...
    ratio = report.claims[
        "scheme per-node throughput vs best contender at densest N"
    ][1]
    assert ratio >= 1.0
    # ... and its throughput declines most slowly with density.
    gap = report.claims["scheme exponent minus best contender exponent"][1]
    assert gap > 0.0
