"""The Instrumentation facade: guards, composition, legacy queries."""

import pytest

from repro.net.network import NetworkConfig, build_network
from repro.obs import (
    Instrumentation,
    MemorySink,
    ambient_instrumentation,
    use_instrumentation,
)
from repro.obs.events import TxStart
from repro.propagation import uniform_disk


def tx(time, packet=0):
    return TxStart(
        time=time, source=0, destination=1, power_w=0.1, packet=packet
    )


class TestFacade:
    def test_no_sinks_means_inactive(self):
        instr = Instrumentation()
        assert not instr.active
        instr.emit(tx(1.0))  # silently dropped
        assert instr.events() == []

    def test_disabled_flag_wins_over_sinks(self):
        instr = Instrumentation((MemorySink(),), enabled=False)
        assert not instr.active
        instr.emit(tx(1.0))
        assert instr.events() == []

    def test_emit_fans_out_to_every_sink(self):
        first, second = MemorySink(), MemorySink()
        instr = Instrumentation((first, second))
        assert instr.active
        instr.emit(tx(1.0))
        assert len(first) == 1 and len(second) == 1

    def test_add_sink_recomputes_active(self):
        instr = Instrumentation()
        assert not instr.active
        instr.add_sink(MemorySink())
        assert instr.active

    def test_recording_constructor_attaches_memory(self):
        instr = Instrumentation.recording()
        assert instr.memory is not None
        assert not Instrumentation.disabled().active


class TestLegacyQuerySurface:
    def make(self):
        instr = Instrumentation.recording()
        instr.emit(tx(1.0, packet=1))
        instr.emit(tx(2.0, packet=2))
        return instr

    def test_of_kind_returns_legacy_records(self):
        instr = self.make()
        records = instr.of_kind("tx_start")
        assert len(records) == 2
        assert records[0].kind == "tx_start"
        assert records[0].data["packet"] == 1

    def test_count_kinds_len_iter(self):
        instr = self.make()
        assert len(instr) == 2
        assert instr.count("tx_start") == 2
        assert instr.count() == 2
        assert instr.kinds() == {"tx_start": 2}
        assert [record.time for record in instr] == [1.0, 2.0]

    def test_between_is_half_open(self):
        instr = self.make()
        assert [r.time for r in instr.between(1.0, 2.0)] == [1.0]
        with pytest.raises(ValueError):
            instr.between(2.0, 1.0)

    def test_clear_and_enabled_alias(self):
        instr = self.make()
        assert instr.enabled
        instr.clear()
        assert len(instr) == 0


class TestAmbient:
    def test_context_installs_and_restores(self):
        assert ambient_instrumentation() is None
        instr = Instrumentation.recording()
        with use_instrumentation(instr):
            assert ambient_instrumentation() is instr
            inner = Instrumentation.recording()
            with use_instrumentation(inner):
                assert ambient_instrumentation() is inner
            assert ambient_instrumentation() is instr
        assert ambient_instrumentation() is None


class TestResolution:
    """How build_network folds explicit/config/ambient sources."""

    PLACEMENT = uniform_disk(8, radius=400.0, seed=3)

    def build(self, **kwargs):
        return build_network(self.PLACEMENT, NetworkConfig(seed=3), **kwargs)

    def test_single_explicit_source_used_as_is(self):
        instr = Instrumentation((MemorySink(),))
        network = self.build(trace=False, instrumentation=instr)
        assert network.instrumentation is instr

    def test_config_source_used_as_is(self):
        instr = Instrumentation((MemorySink(),))
        config = NetworkConfig(seed=3, instrumentation=instr)
        network = build_network(self.PLACEMENT, config, trace=False)
        assert network.instrumentation is instr

    def test_multiple_sources_compose_sinks(self):
        explicit_sink, ambient_sink = MemorySink(), MemorySink()
        with use_instrumentation(Instrumentation((ambient_sink,))):
            network = self.build(
                trace=False,
                instrumentation=Instrumentation((explicit_sink,)),
            )
        sinks = network.instrumentation.sinks
        assert explicit_sink in sinks and ambient_sink in sinks

    def test_trace_true_guarantees_memory_sink(self):
        network = self.build(trace=True)
        assert network.instrumentation.memory is not None
        bare = self.build(trace=False)
        assert bare.instrumentation.memory is None
        assert not bare.instrumentation.active
