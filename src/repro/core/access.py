"""The collision-free channel access scheme (Section 7).

The scheme in one sentence: every station publishes a pseudo-random
transmit/receive schedule reckoned by its own free-running clock, and a
sender "will compare its own schedule with the receiving station's
schedule and send the packet during a time when one of its own transmit
windows overlaps with a receive window of the receiving station enough
to handle the packet length".

This module implements the sender-side computation:

* :class:`ScheduleView` — a station's schedule windows mapped into
  global simulation time, either exactly (its own clock) or through a
  :class:`~repro.clock.sync.NeighborClockModel` (how a sender sees a
  neighbour's schedule);
* :func:`find_transmit_window` — the overlap search, including the
  Section 7.3 extension: intervals that fall inside the receive windows
  of *other* near neighbours that the transmission would significantly
  interfere with can be excluded ("each must refrain from transmitting
  in a manner that interferes excessively with the receptions at its
  neighbor").

Because the receive windows a station publishes are a *commitment to
listen*, a sender that transmits only inside such an overlap can never
cause a Type 3 collision at the addressee; Type 2 is absorbed by the
receiver's despreader bank; and the Section 7.3 exclusion plus the
spread-spectrum interference budget remove Type 1 losses.  No
transmission beyond the data packet itself is needed at any hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.clock.clock import Clock
from repro.clock.sync import NeighborClockModel
from repro.core.intervals import Interval, first_fitting, intersect, subtract
from repro.core.schedule import Schedule

__all__ = [
    "ScheduleView",
    "NoTransmitWindowError",
    "find_transmit_window",
    "DEFAULT_SEARCH_SLOTS",
]

DEFAULT_SEARCH_SLOTS = 10_000
"""Default search horizon, in slots, before giving up on a neighbour."""


class NoTransmitWindowError(RuntimeError):
    """No suitable overlap exists within the search horizon.

    With independent pseudo-random schedules this is vanishingly rare
    (the expected wait is ~1/(p(1-p)) slots); it signals either a
    degenerate schedule parameter or clocks so close that the schedules
    are correlated (Section 7.1's "unfortunate phase offsets").
    """


@dataclass(frozen=True)
class ScheduleView:
    """A station's schedule windows expressed in global time.

    Attributes:
        schedule: the (shared) schedule function.
        to_global: maps the station's local clock reading to global time.
        to_local: maps global time to the station's local clock reading.

    For the sender's own schedule the mappings come straight from its
    clock; for a neighbour they are composed with the sender's fitted
    clock model, so any model error shows up as window misalignment —
    which the ``guard`` margin in :func:`find_transmit_window` absorbs.
    """

    schedule: Schedule
    to_global: Callable[[float], float]
    to_local: Callable[[float], float]

    @classmethod
    def own(cls, schedule: Schedule, clock: Clock) -> "ScheduleView":
        """The view a station has of its own schedule (exact)."""
        return cls(schedule, clock.true_time, clock.reading)

    @classmethod
    def of_neighbor(
        cls,
        schedule: Schedule,
        own_clock: Clock,
        model: NeighborClockModel,
    ) -> "ScheduleView":
        """A sender's view of a neighbour's schedule via its clock model.

        Global time converts to the neighbour's estimated local time by
        going through the sender's own clock and the fitted affine
        relation between the two clocks.
        """

        def to_local(global_time: float) -> float:
            return model.predict_neighbor_reading(own_clock.reading(global_time))

        def to_global(neighbor_local: float) -> float:
            return own_clock.true_time(model.own_reading_for(neighbor_local))

        return cls(schedule, to_global, to_local)

    def _windows_global(
        self, from_global: float, receive: bool
    ) -> Iterator[Interval]:
        start_local = self.to_local(from_global)
        for lo, hi in self.schedule.windows(start_local, receive=receive):
            yield (self.to_global(lo), self.to_global(hi))

    def transmit_windows(self, from_global: float) -> Iterator[Interval]:
        """Merged transmit windows in global time, from ``from_global``."""
        return self._windows_global(from_global, receive=False)

    def receive_windows(self, from_global: float) -> Iterator[Interval]:
        """Merged receive windows in global time, from ``from_global``."""
        return self._windows_global(from_global, receive=True)

    def is_receiving_at(self, global_time: float) -> bool:
        """Whether this station is committed to listen at ``global_time``."""
        return self.schedule.is_receiving_at(self.to_local(global_time))


def _shrunk(windows: Iterator[Interval], guard: float) -> Iterator[Interval]:
    """Shrink each window by ``guard`` at both ends, dropping empties."""
    for lo, hi in windows:
        if hi - lo > 2.0 * guard:
            yield (lo + guard, hi - guard)


def _bounded_windows(
    view: ScheduleView,
    from_global: float,
    receive: bool,
    guard: float,
    horizon: float,
    offset: float = 0.0,
) -> Iterator[Interval]:
    """One schedule view's windows mapped to global time, shifted by
    ``offset``, shrunk by ``guard``, and terminated at ``horizon``.

    This fuses the ``Schedule.windows -> _windows_global -> _shifted ->
    _shrunk -> _until`` generator chain of the overlap search into a
    single frame — same arithmetic in the same order, one generator
    resume per window instead of five.  The stream ends before the
    first surviving window that starts at or beyond ``horizon`` (the
    :func:`_until` rule).
    """
    schedule = view.schedule
    to_global = view.to_global
    start_local = view.to_local(from_global)
    # Inlined Schedule.windows run-finding (same floats, no nested
    # generator): merged maximal runs of the wanted designation.
    find = schedule._find_designation
    slot_time = schedule.slot_time
    want = 1 if receive else 0
    other = 1 - want
    double_guard = 2.0 * guard
    index = schedule.slot_index(start_local)
    while True:
        run_start = find(index, want)
        run_end = find(run_start + 1, other)
        window_end = run_end * slot_time
        if window_end > start_local:
            lo = to_global(max(run_start * slot_time, start_local))
            hi = to_global(window_end)
            if offset != 0.0:
                lo += offset
                hi += offset
            if hi - lo > double_guard:
                lo += guard
                if lo >= horizon:
                    return
                yield (lo, hi - guard)
        index = run_end + 1


def _first_fit_overlap(
    a: Iterator[Interval],
    b: Iterator[Interval],
    duration: float,
    not_before: float,
) -> Optional[Interval]:
    """``first_fitting(intersect(a, b), duration, not_before)`` in one
    loop — the avoid-free fast path of the overlap search.  Same
    comparisons in the same order as the generic pipeline, without the
    intersect generator between the streams and the fit test."""
    current_a = next(a, None)
    current_b = next(b, None)
    while current_a is not None and current_b is not None:
        start = max(current_a[0], current_b[0])
        end = min(current_a[1], current_b[1])
        if start < end:
            candidate = max(start, not_before)
            if end - candidate >= duration:
                return (candidate, candidate + duration)
        # Advance whichever interval ends first.
        if current_a[1] <= current_b[1]:
            current_a = next(a, None)
        else:
            current_b = next(b, None)
    return None


def _shifted(windows: Iterator[Interval], offset: float) -> Iterator[Interval]:
    """Translate every window by ``offset`` (order is preserved)."""
    if offset == 0.0:
        yield from windows
        return
    for lo, hi in windows:
        yield (lo + offset, hi + offset)


def _grown(windows: Iterator[Interval], guard: float) -> Iterator[Interval]:
    """Grow each window by ``guard`` at both ends, merging any overlaps."""
    pending: Optional[Interval] = None
    for lo, hi in windows:
        lo, hi = lo - guard, hi + guard
        if pending is None:
            pending = (lo, hi)
        elif lo <= pending[1]:
            pending = (pending[0], max(pending[1], hi))
        else:
            yield pending
            pending = (lo, hi)
    if pending is not None:
        yield pending


def find_transmit_window(
    sender: ScheduleView,
    receiver: ScheduleView,
    duration: float,
    earliest: float,
    guard: float = 0.0,
    avoid: Sequence[ScheduleView] = (),
    search_slots: int = DEFAULT_SEARCH_SLOTS,
    propagation_delay: float = 0.0,
) -> Interval:
    """Earliest interval in which the sender may convey one packet.

    The returned global-time interval of length ``duration`` starts at
    or after ``earliest``, lies inside one of the sender's transmit
    windows and inside one of the receiver's receive windows — both
    shrunk by ``guard`` on each side (for the receiver, the guard
    absorbs clock-model error; for the sender, it keeps the burst
    strictly clear of its own slot boundaries, where floating-point
    round-trips through the clock mapping could otherwise land a start
    an epsilon inside a receive slot) — and outside the receive windows
    of every view in ``avoid`` (grown by ``guard``), the Section 7.3
    courtesy to near neighbours the transmission would interfere with
    excessively.

    ``propagation_delay`` implements Section 3.3's remark that "actual
    delays could be observed and easily compensated for in the
    scheduling technique": the sender leads its burst so that the
    packet *arrives* inside the receiver's window — the constraint on
    the receiver applies to ``[start + delay, start + delay +
    duration]`` while the sender's own window constrains ``[start,
    start + duration]``.  Avoid views are treated like receivers (their
    victims also hear the burst delayed); the per-victim delay spread
    is sub-guard at any plausible geometry, so one delay serves all.

    Raises:
        NoTransmitWindowError: no overlap within ``search_slots`` slots.
    """
    if duration <= 0.0:
        raise ValueError("duration must be positive")
    if guard < 0.0:
        raise ValueError("guard must be non-negative")
    if search_slots < 1:
        raise ValueError("search horizon must be at least one slot")
    if propagation_delay < 0.0:
        raise ValueError("propagation delay must be non-negative")

    # Bound the INPUT streams at the horizon: downstream operators pull
    # from their sources until they can yield, so feeding them
    # unbounded streams would loop forever whenever the combination is
    # empty (e.g. two stations with identical clocks, whose transmit
    # and receive windows are exact complements — the Section 7.1
    # failure mode the random offsets exist to prevent).
    horizon = earliest + search_slots * sender.schedule.slot_time
    # Receiver-side windows are shifted back by the propagation delay:
    # a burst transmitted during the shifted window arrives during the
    # published one.
    sender_stream = _bounded_windows(sender, earliest, False, guard, horizon)
    receiver_stream = _bounded_windows(
        receiver, earliest, True, guard, horizon, -propagation_delay
    )
    if avoid:
        candidates: Iterator[Interval] = intersect(sender_stream, receiver_stream)
        for neighbor in avoid:
            candidates = subtract(
                candidates,
                _grown(
                    _shifted(
                        neighbor.receive_windows(earliest), -propagation_delay
                    ),
                    guard,
                ),
            )
        window = first_fitting(candidates, duration, not_before=earliest)
    else:
        window = _first_fit_overlap(
            sender_stream, receiver_stream, duration, earliest
        )
    if window is None:
        raise NoTransmitWindowError(
            f"no {duration}-long overlap within {search_slots} slots of {earliest}"
        )
    return window


def _until(stream: Iterator[Interval], horizon: float) -> Iterator[Interval]:
    """Pass intervals through until one starts at or beyond ``horizon``."""
    for lo, hi in stream:
        if lo >= horizon:
            return
        yield (lo, hi)


def overlap_fraction(p: float) -> float:
    """Expected fraction of time a sender can reach one given neighbour.

    Section 7.2: with receive duty cycle ``p``, a slot pair offers a
    usable (transmit here, receive there) combination with probability
    ``p(1-p)`` — about 0.21 at the near-optimal p = 0.3.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("receive duty cycle must be in (0, 1)")
    return p * (1.0 - p)


def expected_wait_slots(p: float) -> float:
    """Expected slots until a packet can be sent (Section 7.2).

    The Bernoulli model: success probability ``p(1-p)`` per slot, so
    the expectation is ``1/(p(1-p))`` — 4.76 slots at p = 0.3.
    """
    return 1.0 / overlap_fraction(p)


__all__ += ["overlap_fraction", "expected_wait_slots"]
