"""Property tests for the incremental interference field.

The medium maintains the Eq. 2 received-power field ``gains @ powers``
incrementally (one axpy per transmission begin/end).  These tests pin
the invariant that makes that safe: after *any* sequence of begins and
ends, the incremental field matches the exact matrix-vector recompute
to floating-point accumulation tolerance, and snaps back to exactly
zero when the channel drains.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.medium import Medium, Transmission
from repro.net.packet import Packet
from repro.radio.spreadspectrum import DespreaderBank
from repro.sim.engine import Environment
from repro.sim.sanitizer import SanitizerError

STATIONS = 6


class World:
    def __init__(self, count, channels=2):
        self.banks = [DespreaderBank(capacity=channels) for _ in range(count)]

    def listen(self, station, now):
        return True

    def bank(self, station):
        return self.banks[station]


def build_medium(seed=0, resync_events=4096, sanitize=False):
    rng = np.random.default_rng(seed)
    gains = rng.uniform(1e-8, 1e-3, (STATIONS, STATIONS))
    gains = (gains + gains.T) / 2.0
    np.fill_diagonal(gains, 0.0)
    env = Environment(sanitize=sanitize)
    world = World(STATIONS)
    medium = Medium(
        env=env,
        gains=gains,
        thermal_noise_w=1e-12,
        sir_thresholds=np.full(STATIONS, 0.05),
        listen_query=world.listen,
        channel_query=world.bank,
        resync_events=resync_events,
    )
    return env, medium


def packet(source, destination):
    return Packet(
        source=source, destination=destination, size_bits=100.0, created_at=0.0
    )


def apply_ops(medium, ops):
    """Drive an arbitrary begin/end interleaving through the medium.

    ``ops`` is a list of (station, power, end_index) actions: begin a
    burst from ``station`` (skipped while it is already transmitting),
    then end one active transmission chosen by ``end_index`` (no-op
    when negative).  Returns the exact-field error bound check count.
    """
    seq = 0
    active = []
    checks = 0
    peak_scale = 0.0
    for station, power, end_index in ops:
        if not medium.is_station_transmitting(station):
            destination = (station + 1) % STATIONS
            tx = Transmission(
                seq=seq,
                source=station,
                destination=destination,
                packet=packet(station, destination),
                power_w=power,
                start=medium.env.now,
                duration=1.0,
            )
            seq += 1
            medium._begin(tx)
            active.append(tx)
            checks, peak_scale = _checked(medium, checks, peak_scale)
        if active and end_index >= 0:
            tx = active.pop(end_index % len(active))
            medium._end(tx)
            checks, peak_scale = _checked(medium, checks, peak_scale)
    for tx in active:
        medium._end(tx)
        checks, peak_scale = _checked(medium, checks, peak_scale)
    return checks


def _checked(medium, checks, peak_scale):
    peak_scale = assert_field_matches(medium, peak_scale)
    return checks + 1, peak_scale


def assert_field_matches(medium, peak_scale=0.0):
    """Check the incremental field against the exact recompute.

    The absolute tolerance scales with the *peak* field magnitude seen
    so far, not the current one: each begin/end is one axpy, so the
    residual it can leave behind is a few ulps of the field at that
    moment, and ending a dominant transmission shrinks the field but
    not the residual.  Returns the updated peak for chained checks.
    """
    exact = medium.gains @ medium._powers
    scale = float(np.max(exact)) if exact.size else 0.0
    peak_scale = max(peak_scale, scale)
    assert np.allclose(
        medium._interference,
        exact,
        rtol=1e-9,
        atol=1e-12 * (peak_scale + 1e-30),
    ), "incremental field diverged from gains @ powers"
    return peak_scale


ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=STATIONS - 1),
        st.floats(min_value=1e-3, max_value=100.0),
        st.integers(min_value=-1, max_value=8),
    ),
    min_size=1,
    max_size=30,
)


class TestIncrementalField:
    @settings(max_examples=60, deadline=None)
    @given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=7))
    def test_matches_exact_recompute(self, ops, seed):
        env, medium = build_medium(seed=seed)
        checks = apply_ops(medium, ops)
        assert checks > 0

    @settings(max_examples=30, deadline=None)
    @given(ops=ops_strategy)
    def test_idle_field_is_exactly_zero(self, ops):
        env, medium = build_medium()
        apply_ops(medium, ops)
        # Everything ended: powers snapped to zero, field pinned to the
        # exact-zero idle state (not merely close to it).
        assert not medium.active_transmissions
        assert np.all(medium._powers == 0.0)
        assert np.all(medium._interference == 0.0)

    @settings(max_examples=30, deadline=None)
    @given(ops=ops_strategy)
    def test_aggressive_resync_is_transparent(self, ops):
        # Resyncing after every field change must agree with the lazy
        # cadence on every intermediate state.
        env, medium = build_medium(resync_events=1)
        apply_ops(medium, ops)
        assert np.all(medium._interference == 0.0)

    @settings(max_examples=20, deadline=None)
    @given(ops=ops_strategy)
    def test_sanitizer_resync_accepts_honest_field(self, ops):
        # Under the sanitizer every resync asserts closeness; a correct
        # incremental update must never trip it.
        env, medium = build_medium(resync_events=2, sanitize=True)
        apply_ops(medium, ops)

    def test_sanitizer_resync_detects_corruption(self):
        env, medium = build_medium(resync_events=1, sanitize=True)
        tx = Transmission(
            seq=0,
            source=0,
            destination=1,
            packet=packet(0, 1),
            power_w=1.0,
            start=0.0,
            duration=1.0,
        )
        medium._begin(tx)
        # Corrupt the field behind the incremental bookkeeping's back.
        medium._interference[2] += 1.0
        with pytest.raises(SanitizerError, match="drifted"):
            medium._end(tx)

    def test_transmit_counter_tracks_activity(self):
        env, medium = build_medium()
        tx = Transmission(
            seq=0,
            source=3,
            destination=4,
            packet=packet(3, 4),
            power_w=2.0,
            start=0.0,
            duration=1.0,
        )
        assert not medium.is_station_transmitting(3)
        medium._begin(tx)
        assert medium.is_station_transmitting(3)
        assert not medium.is_station_transmitting(4)
        medium._end(tx)
        assert not medium.is_station_transmitting(3)

    def test_rejects_bad_resync_cadence(self):
        with pytest.raises(ValueError):
            build_medium(resync_events=0)
