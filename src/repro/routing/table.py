"""Routing tables: next hops and route costs.

Section 6.2: "Each station need only remember the next hop for each
potential destination and the total energy along that route to the
destination.  Hop-by-hop routing is possible since, at each station,
each transit packet will be routed as if it had originated at the
transit station."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RoutingTable", "RouteError"]


class RouteError(LookupError):
    """No route is known toward the requested destination."""


@dataclass
class RoutingTable:
    """One station's forwarding state.

    Attributes:
        station: the owning station's index.
        next_hops: destination -> neighbour to forward through.
        costs: destination -> total route cost (energy, for the paper's
            metric; hops, for the min-hop baseline).
    """

    station: int
    next_hops: Dict[int, int] = field(default_factory=dict)
    costs: Dict[int, float] = field(default_factory=dict)

    def set_route(self, destination: int, next_hop: int, cost: float) -> None:
        """Install or replace the route toward ``destination``."""
        if destination == self.station:
            raise ValueError("a station needs no route to itself")
        if next_hop == self.station:
            raise ValueError("next hop cannot be the station itself")
        if cost < 0.0:
            raise ValueError("route cost must be non-negative")
        self.next_hops[destination] = next_hop
        self.costs[destination] = cost

    def next_hop(self, destination: int) -> int:
        """The neighbour to forward a packet for ``destination`` through."""
        if destination == self.station:
            raise ValueError("a station needs no route to itself")
        try:
            return self.next_hops[destination]
        except KeyError:
            raise RouteError(
                f"station {self.station} has no route to {destination}"
            ) from None

    def cost(self, destination: int) -> float:
        """Total cost of the installed route to ``destination``."""
        try:
            return self.costs[destination]
        except KeyError:
            raise RouteError(
                f"station {self.station} has no route to {destination}"
            ) from None

    def has_route(self, destination: int) -> bool:
        """Whether a route toward ``destination`` is installed."""
        return destination in self.next_hops

    def neighbors_in_use(self) -> List[int]:
        """Distinct next hops appearing in the table — the station's
        *routing neighbours* (the paper's simulations saw at most 8)."""
        return sorted(set(self.next_hops.values()))

    @property
    def destination_count(self) -> int:
        """Number of destinations with installed routes."""
        return len(self.next_hops)


def trace_route(
    tables: Dict[int, "RoutingTable"], source: int, destination: int,
    max_hops: Optional[int] = None,
) -> List[int]:
    """Follow next hops from ``source`` to ``destination``.

    Verifies the hop-by-hop consistency property: the concatenation of
    per-station next hops forms a loop-free path.  Raises
    :class:`RouteError` on missing routes or loops.
    """
    if source == destination:
        return [source]
    limit = max_hops if max_hops is not None else len(tables) + 1
    path = [source]
    current = source
    for _ in range(limit):
        current = tables[current].next_hop(destination)
        if current in path:
            raise RouteError(f"routing loop at station {current}: {path}")
        path.append(current)
        if current == destination:
            return path
    raise RouteError(f"route from {source} to {destination} exceeds {limit} hops")


__all__.append("trace_route")
