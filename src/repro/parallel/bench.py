"""Full-suite scaling benchmark: wall-clock at 1/2/4 workers.

Times :func:`repro.parallel.suite.run_suite` at each requested worker
count and writes ``BENCH_suite.json`` — the tracked record of
across-run scaling, companion to ``BENCH_medium.json`` (which tracks
the single-run hot path).  Methodology matches ``tools/perfreport.py``:
best-of-N minimum wall-clock per configuration, and every timed run
must produce the identical suite digest — the timing comparison is
meaningless (and the run is a determinism violation) otherwise.

Like :mod:`repro.analysis.perf`, this module is exempt from the REP002
wall-clock lint: its entire purpose is timing completed suite runs,
and no wall-clock value feeds back into simulation state.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.parallel.pool import ProgressCallback
from repro.parallel.suite import run_suite

__all__ = ["bench_suite", "write_suite_report"]


def bench_suite(
    jobs_counts: Sequence[int] = (1, 2, 4),
    quick: bool = True,
    rounds: int = 1,
    timeout_s: Optional[float] = None,
    progress: Optional[ProgressCallback] = None,
) -> Dict[str, Any]:
    """Time the full suite at each worker count; return the report.

    Args:
        jobs_counts: worker counts to measure (first is the baseline
            for the speedup column; include 1 for serial reference).
        quick: use the quick parameter set (the tracked configuration).
        rounds: timed runs per worker count; the minimum wall-clock is
            reported (scheduler-noise defence, as in perfreport).
        timeout_s: per-task timeout passed through to the pool.
        progress: forwarded to each suite run.

    Raises:
        RuntimeError: if any two runs disagree on the suite digest —
            pooled execution must be bit-identical to serial.
    """
    if rounds < 1:
        raise ValueError("need at least one round")
    if not jobs_counts:
        raise ValueError("need at least one worker count")
    measurements: List[Dict[str, Any]] = []
    reference_digest: Optional[str] = None
    for jobs in jobs_counts:
        best_wall: Optional[float] = None
        digest: Optional[str] = None
        errors = 0
        for _ in range(rounds):
            began = time.perf_counter()  # reprolint: disable=REP002
            outcome = run_suite(
                jobs=jobs, quick=quick, timeout_s=timeout_s, progress=progress
            )
            wall_s = time.perf_counter() - began  # reprolint: disable=REP002
            digest = outcome.digest()
            errors = len(outcome.errors)
            if reference_digest is None:
                reference_digest = digest
            elif digest != reference_digest:
                raise RuntimeError(
                    f"suite digest diverged at jobs={jobs}: {digest} != "
                    f"{reference_digest} — pooled execution must be "
                    "bit-identical to serial"
                )
            if best_wall is None or wall_s < best_wall:
                best_wall = wall_s
        measurements.append(
            {
                "jobs": jobs,
                "wall_s": round(best_wall or 0.0, 3),
                "suite_digest": digest,
                "errors": errors,
            }
        )
    baseline = measurements[0]["wall_s"]
    for entry in measurements:
        entry["speedup_vs_jobs_%d" % measurements[0]["jobs"]] = (
            round(baseline / entry["wall_s"], 3) if entry["wall_s"] else None
        )
    return {
        "unit": "wall seconds for one full F/T/A registry run (run_suite)",
        "workload": (
            "repro.parallel.suite.run_suite(jobs=N, quick=%r): every "
            "registered experiment as one pool task" % quick
        ),
        "methodology": (
            "best (minimum wall-clock) of %d round(s) per worker count; "
            "identical suite digests required across all runs — pooled "
            "results are bit-identical to serial by construction "
            "(seed-tree task seeds, spec-order aggregation)" % rounds
        ),
        "host_cpus": os.cpu_count(),
        "quick": quick,
        "measurements": measurements,
    }


def write_suite_report(
    path: str, payload: Dict[str, Any], notes: Optional[Dict[str, Any]] = None
) -> None:
    """Write a :func:`bench_suite` report (``BENCH_suite.json``)."""
    if notes:
        payload = dict(payload)
        payload["notes"] = notes
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
