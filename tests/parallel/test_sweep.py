"""The sweep engine: plans, seed-tree replications, jobs-invariance."""

import pytest

from repro.parallel.seedtree import derive_seed
from repro.parallel.sweep import (
    SweepPlan,
    build_sweep_tasks,
    default_sweep_values,
    run_sweep,
    sweep_parameter,
)
from repro.parallel.task import results_digest

#: A seconds-scale T2: tiny network, short run.
TINY_T2 = dict(
    base_params={
        "station_count": 10,
        "duration_slots": 60.0,
        "load_packets_per_slot": 0.2,
    },
)


class TestPlanBuilding:
    def test_registry_parameter(self):
        assert sweep_parameter("T7") == "loads_packets_per_slot"
        assert sweep_parameter("T2") == "receive_fractions"

    def test_explicit_parameter_validated(self):
        assert sweep_parameter("T7", "station_count") == "station_count"
        with pytest.raises(ValueError):
            sweep_parameter("T7", "not_a_parameter")

    def test_default_values_come_from_signature(self):
        assert default_sweep_values("T2", "receive_fractions") == (
            0.1, 0.2, 0.3, 0.4, 0.5, 0.7,
        )
        with pytest.raises(ValueError):
            default_sweep_values("T2", "station_count")  # scalar default

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            SweepPlan(experiment_id="T2", parameter="p", values=())
        with pytest.raises(ValueError):
            SweepPlan(
                experiment_id="T2",
                parameter="p",
                values=(0.3,),
                replications=0,
            )

    def test_task_seeds_come_from_the_tree(self):
        plan = SweepPlan(
            experiment_id="T2",
            parameter="receive_fractions",
            values=(0.2, 0.3),
            replications=2,
            root_seed=7,
        )
        specs = build_sweep_tasks(plan)
        assert len(specs) == 4
        assert specs[0].task_id == "T2[receive_fractions=0.2]#r0"
        expected = [
            derive_seed(7, "T2", point, replication)
            for point in range(2)
            for replication in range(2)
        ]
        assert [spec.seed for spec in specs] == expected
        # Same plan, same task list — the determinism precondition.
        assert [s.seed for s in build_sweep_tasks(plan)] == expected

    def test_point_value_is_singleton_sequence(self):
        plan = SweepPlan(
            experiment_id="T2",
            parameter="receive_fractions",
            values=(0.3,),
        )
        (spec,) = build_sweep_tasks(plan)
        assert spec.params["receive_fractions"] == (0.3,)

    def test_replications_require_a_seed_parameter(self):
        # T8 takes no seed: replications would repeat the identical run.
        plan = SweepPlan(
            experiment_id="T8",
            parameter="station_counts",
            values=(20,),
            replications=3,
        )
        with pytest.raises(ValueError):
            build_sweep_tasks(plan)


class TestJobsInvariance:
    @pytest.fixture(scope="class")
    def plan(self):
        return SweepPlan(
            experiment_id="T2",
            parameter="receive_fractions",
            values=(0.2, 0.3),
            replications=2,
            root_seed=11,
            **TINY_T2,
        )

    @pytest.fixture(scope="class")
    def serial(self, plan):
        return run_sweep(plan, jobs=1)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_pooled_sweep_is_bit_identical_to_serial(self, plan, serial, jobs):
        pooled = run_sweep(plan, jobs=jobs)
        assert not pooled.errors and not serial.errors
        assert pooled.rows() == serial.rows()
        assert pooled.summaries() == serial.summaries()
        assert pooled.to_payload() == serial.to_payload()
        assert results_digest(pooled.results) == results_digest(serial.results)

    def test_rows_and_summaries_shape(self, plan, serial):
        rows = serial.rows()
        # 2 points x 2 replications, one report row each.
        assert len(rows) == 4
        assert serial.columns()[:2] == ("receive_fractions", "replication")
        summaries = serial.summaries()
        assert summaries, "replicated sweep must produce summaries"
        for entry in summaries:
            value, _label, _metric, count = entry[:4]
            assert value in (0.2, 0.3)
            assert count == 2

    def test_format_renders_tables(self, serial):
        text = serial.format()
        assert "sweep T2 over receive_fractions" in text
        assert "replication summaries" in text
