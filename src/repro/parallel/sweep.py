"""The sweep engine: fan out sweep points × replication seeds.

A sweep decomposes one registry experiment along its natural sweep
parameter (the sequence-valued argument its ``run`` already iterates —
offered loads for T7, receive fractions for T2, ...) into one task per
``(point, replication)``.  Replication seeds come from the seed tree
(:mod:`repro.parallel.seedtree`) keyed by ``(experiment id, point
index, replication index)``, so the task list — and therefore every
result — is a pure function of the plan, independent of worker count.

Aggregation merges per-task report rows in task order and computes
mean/stddev/min/max replication summaries per numeric column.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.parallel.aggregate import failed_results, summarize_rows
from repro.parallel.pool import ProgressCallback, run_tasks
from repro.parallel.seedtree import SeedTree
from repro.parallel.task import (
    TaskResult,
    TaskSpec,
    canonicalize,
    payload_to_report,
)

__all__ = [
    "SWEEPABLE_PARAMS",
    "SweepPlan",
    "SweepResult",
    "sweep_parameter",
    "default_sweep_values",
    "build_sweep_tasks",
    "run_sweep",
]

#: The natural sweep parameter per experiment (the sequence its run()
#: iterates).  Experiments not listed can still be swept by naming a
#: sequence-valued parameter explicitly.
SWEEPABLE_PARAMS: Dict[str, str] = {
    "F1": "mc_station_counts",
    "T2": "receive_fractions",
    "T4": "station_counts",
    "T5": "station_counts",
    "T6": "density_factors",
    "T7": "loads_packets_per_slot",
    "T8": "station_counts",
    "T12": "churn_rates",
    "T13": "churn_rates",
    "T14": "station_counts",
    "T9": "reach_factors",
    "A1": "rendezvous_counts",
    "A2": "channel_counts",
    "A3": "station_counts",
    "A7": "receive_fractions",
}


def _run_signature(experiment_id: str) -> inspect.Signature:
    from repro.experiments import get_experiment

    return inspect.signature(get_experiment(experiment_id))


def sweep_parameter(experiment_id: str, parameter: Optional[str] = None) -> str:
    """The sweep parameter for an experiment (validated against its
    signature); defaults to the :data:`SWEEPABLE_PARAMS` entry."""
    signature = _run_signature(experiment_id)
    if parameter is None:
        parameter = SWEEPABLE_PARAMS.get(experiment_id)
        if parameter is None:
            candidates = [
                name
                for name, value in signature.parameters.items()
                if isinstance(value.default, (tuple, list))
            ]
            if len(candidates) != 1:
                raise ValueError(
                    f"experiment {experiment_id} has no registered sweep "
                    f"parameter; name one explicitly "
                    f"(sequence-valued candidates: {candidates or 'none'})"
                )
            parameter = candidates[0]
    if parameter not in signature.parameters:
        raise ValueError(
            f"experiment {experiment_id} has no parameter {parameter!r}"
        )
    return parameter


def default_sweep_values(experiment_id: str, parameter: str) -> Tuple[Any, ...]:
    """The experiment's own default value sequence for ``parameter``."""
    default = _run_signature(experiment_id).parameters[parameter].default
    if not isinstance(default, (tuple, list)):
        raise ValueError(
            f"parameter {parameter!r} of {experiment_id} has no sequence "
            "default; pass explicit values"
        )
    return tuple(default)


def _accepts_seed(experiment_id: str) -> bool:
    return "seed" in _run_signature(experiment_id).parameters


@dataclass(frozen=True)
class SweepPlan:
    """A fully specified sweep: experiment, points, replications, seed.

    Attributes:
        experiment_id: registry id (e.g. ``"T7"``).
        parameter: the sequence parameter swept one element at a time.
        values: the sweep points.
        replications: independent seeded runs per point.
        root_seed: seed-tree root; per-task seeds derive from it.
        base_params: extra keyword overrides applied to every task.
        sanitize: run each task under the determinism sanitizer.
        timeout_s: per-task timeout (pool-enforced).
        retries: crash/timeout retries per task.
    """

    experiment_id: str
    parameter: str
    values: Tuple[Any, ...]
    replications: int = 1
    root_seed: int = 0
    base_params: Mapping[str, Any] = field(default_factory=dict)
    sanitize: bool = False
    timeout_s: Optional[float] = None
    retries: int = 1

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a sweep needs at least one value")
        if self.replications < 1:
            raise ValueError("replications must be >= 1")


def build_sweep_tasks(plan: SweepPlan) -> List[TaskSpec]:
    """The deterministic task list of a sweep plan.

    Task ids encode ``experiment[parameter=value]#rN``; seeds derive
    from ``SeedTree(root_seed).seed(experiment_id, point_index,
    replication_index)`` — worker count never enters.
    """
    seeded = _accepts_seed(plan.experiment_id)
    if plan.replications > 1 and not seeded:
        raise ValueError(
            f"experiment {plan.experiment_id} takes no seed parameter; "
            "replications would repeat the identical run"
        )
    # Sequence-valued parameters (the usual sweep axis) receive each
    # point as a one-element tuple; scalar knobs (fade coherence, ARQ
    # retry budget, ...) are passed through as-is, so any numeric
    # run() parameter is sweepable by naming it with explicit values.
    default = _run_signature(plan.experiment_id).parameters[
        plan.parameter
    ].default
    wrap = isinstance(default, (tuple, list))
    tree = SeedTree(plan.root_seed)
    specs: List[TaskSpec] = []
    for value_index, value in enumerate(plan.values):
        for replication in range(plan.replications):
            params = dict(plan.base_params)
            params[plan.parameter] = (value,) if wrap else value
            specs.append(
                TaskSpec(
                    task_id=(
                        f"{plan.experiment_id}"
                        f"[{plan.parameter}={value!r}]#r{replication}"
                    ),
                    kind="experiment",
                    target=plan.experiment_id,
                    params=params,
                    seed=(
                        tree.seed(plan.experiment_id, value_index, replication)
                        if seeded
                        else None
                    ),
                    sanitize=plan.sanitize,
                    timeout_s=plan.timeout_s,
                    retries=plan.retries,
                )
            )
    return specs


@dataclass
class SweepResult:
    """Everything a sweep produced, in deterministic task order."""

    plan: SweepPlan
    specs: List[TaskSpec]
    results: List[TaskResult]

    @property
    def errors(self) -> Dict[str, str]:
        """Failed task ids mapped to their error strings."""
        return failed_results(self.results)

    def _tasks_by_point(self) -> List[List[TaskResult]]:
        """Results grouped by sweep point, replications in order."""
        replications = self.plan.replications
        return [
            list(self.results[start : start + replications])
            for start in range(0, len(self.results), replications)
        ]

    def rows(self) -> List[Tuple[Any, ...]]:
        """Merged raw report rows: ``(value, replication, *row)``."""
        merged: List[Tuple[Any, ...]] = []
        for value, group in zip(self.plan.values, self._tasks_by_point()):
            for replication, result in enumerate(group):
                if not result.ok or result.payload is None:
                    continue
                for row in result.payload["rows"]:
                    merged.append((value, replication, *row))
        return merged

    def columns(self) -> Tuple[str, ...]:
        """Column names of :meth:`rows`."""
        for result in self.results:
            if result.ok and result.payload is not None:
                inner = tuple(result.payload["columns"])
                return (self.plan.parameter, "replication", *inner)
        return (self.plan.parameter, "replication")

    def summaries(self) -> List[Tuple[Any, ...]]:
        """Replication summaries: ``(value, row label, column, count,
        mean, stddev, min, max)`` per numeric column."""
        summary: List[Tuple[Any, ...]] = []
        for value, group in zip(self.plan.values, self._tasks_by_point()):
            reports = [
                payload_to_report(result.payload)
                for result in group
                if result.ok and result.payload is not None
            ]
            if not reports:
                continue
            rows_per_replication = [report.rows for report in reports]
            for entry in summarize_rows(
                tuple(reports[0].columns), rows_per_replication
            ):
                summary.append((value, *entry))
        return summary

    def to_payload(self) -> Dict[str, Any]:
        """Canonical, JSON-friendly dump (the comparison artifact)."""
        return {
            "experiment_id": self.plan.experiment_id,
            "parameter": self.plan.parameter,
            "values": list(self.plan.values),
            "replications": self.plan.replications,
            "root_seed": self.plan.root_seed,
            "tasks": [
                {
                    "task_id": result.task_id,
                    "ok": result.ok,
                    "error": result.error,
                    "payload": canonicalize(result.payload),
                    "replay_digest": result.replay_digest,
                    "payload_digest": result.payload_digest,
                }
                for result in self.results
            ],
        }

    def format(self) -> str:
        """Aligned text tables: raw rows, then replication summaries."""
        lines = [
            f"== sweep {self.plan.experiment_id} over {self.plan.parameter} "
            f"({len(self.plan.values)} points x {self.plan.replications} "
            f"replications, root seed {self.plan.root_seed}) =="
        ]
        lines.extend(_table(self.columns(), self.rows()))
        summaries = self.summaries()
        if self.plan.replications > 1 and summaries:
            lines.append("")
            lines.append("-- replication summaries --")
            lines.extend(
                _table(
                    (
                        self.plan.parameter,
                        "row",
                        "metric",
                        "n",
                        "mean",
                        "stddev",
                        "min",
                        "max",
                    ),
                    summaries,
                )
            )
        for task_id, error in self.errors.items():
            first_line = error.splitlines()[0] if error else "unknown failure"
            lines.append(f"  ERROR [{task_id}]: {first_line}")
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _table(
    columns: Sequence[str], rows: Sequence[Tuple[Any, ...]]
) -> List[str]:
    if not rows:
        return ["  (no rows)"]
    table = [tuple(str(c) for c in columns)] + [
        tuple(_format_cell(cell) for cell in row) for row in rows
    ]
    widths = [
        max(len(row[i]) if i < len(row) else 0 for row in table)
        for i in range(len(columns))
    ]
    lines = []
    for index, row in enumerate(table):
        lines.append(
            "  " + "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
        if index == 0:
            lines.append("  " + "  ".join("-" * w for w in widths))
    return lines


def run_sweep(
    plan: SweepPlan,
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
    checkpoint: Optional[str] = None,
    watchdog_s: Optional[float] = None,
    cache: Optional[Any] = None,
) -> SweepResult:
    """Build the task list, execute it, and wrap the ordered results.

    With ``checkpoint``, completed results are journaled to that path
    so a killed sweep resumes where it stopped, with final digests
    bit-identical to an uninterrupted run.  With ``cache`` (a directory
    path or an open :class:`~repro.parallel.cache.ResultCache`), points
    whose work is already stored return instantly and only misses are
    scheduled — overlapping sweeps share one warm store.
    """
    from repro.parallel.cache import resolve_cache

    store = resolve_cache(cache)
    specs = build_sweep_tasks(plan)
    if checkpoint is not None:
        from repro.parallel.checkpoint import ResultJournal

        with ResultJournal(checkpoint, specs) as journal:
            results = run_tasks(
                specs,
                jobs=jobs,
                progress=progress,
                journal=journal,
                watchdog_s=watchdog_s,
                cache=store,
            )
    else:
        results = run_tasks(
            specs, jobs=jobs, progress=progress, watchdog_s=watchdog_s,
            cache=store,
        )
    return SweepResult(plan=plan, specs=specs, results=results)
