"""Developer tooling for the repro project (not shipped with the package)."""
