"""Tests for the collision taxonomy."""

import pytest

from repro.core.collisions import (
    CollisionType,
    InterferenceSource,
    classify_loss,
    classify_source,
    count_by_type,
)


RECEIVER = 5


class TestClassifySource:
    def test_type1_uninvolved(self):
        source = InterferenceSource(transmitter=2, destination=3)
        assert classify_source(source, RECEIVER) is CollisionType.TYPE_1

    def test_type2_same_destination(self):
        source = InterferenceSource(transmitter=2, destination=RECEIVER)
        assert classify_source(source, RECEIVER) is CollisionType.TYPE_2

    def test_type3_receiver_transmitting(self):
        source = InterferenceSource(transmitter=RECEIVER, destination=9)
        assert classify_source(source, RECEIVER) is CollisionType.TYPE_3

    def test_type3_wins_over_type2(self):
        # A station transmitting to itself is nonsense, but if the
        # transmitter IS the receiver, it is Type 3 regardless of
        # address (the paper's enumeration order).
        source = InterferenceSource(transmitter=RECEIVER, destination=RECEIVER)
        assert classify_source(source, RECEIVER) is CollisionType.TYPE_3


class TestClassifyLoss:
    def test_single_source(self):
        types = classify_loss(
            RECEIVER, [InterferenceSource(1, 2)]
        )
        assert types == frozenset({CollisionType.TYPE_1})

    def test_multiple_simultaneous_types(self):
        # "Multiple collision types may occur simultaneously."
        types = classify_loss(
            RECEIVER,
            [
                InterferenceSource(1, 2),
                InterferenceSource(3, RECEIVER),
                InterferenceSource(RECEIVER, 7),
            ],
        )
        assert types == frozenset(CollisionType)

    def test_duplicate_types_collapse(self):
        types = classify_loss(
            RECEIVER,
            [InterferenceSource(1, 2), InterferenceSource(8, 9)],
        )
        assert types == frozenset({CollisionType.TYPE_1})

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            classify_loss(RECEIVER, [])


class TestCounting:
    def test_count_by_type(self):
        losses = [
            (RECEIVER, [InterferenceSource(1, 2)]),
            (RECEIVER, [InterferenceSource(1, RECEIVER)]),
            (RECEIVER, [InterferenceSource(1, 2), InterferenceSource(3, RECEIVER)]),
        ]
        counts = count_by_type(losses)
        assert counts[CollisionType.TYPE_1] == 2
        assert counts[CollisionType.TYPE_2] == 2
        assert counts[CollisionType.TYPE_3] == 0
