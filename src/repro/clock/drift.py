"""Oscillator drift modelling from historical readings.

The paper (footnote 13) cites Mills' work showing "how the drift of a
clock driven by a quartz oscillator can be modeled from historical data
and ... used to accurately predict future drift".  This module fits a
polynomial drift model to a history of (reference time, clock offset)
observations and quantifies how far ahead predictions stay within a
given error bound — which in turn sets how often stations must
rendezvous (experiment T11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["DriftModel", "fit_drift", "holdover_horizon"]


@dataclass(frozen=True)
class DriftModel:
    """A polynomial model of clock offset versus reference time.

    Attributes:
        coefficients: polynomial coefficients, highest degree first
            (NumPy ``polyval`` convention).
        residual_rms: root-mean-square residual of the fit.
    """

    coefficients: np.ndarray
    residual_rms: float

    def predict(self, reference_time: float | np.ndarray) -> float | np.ndarray:
        """Predicted clock offset at the given reference time(s)."""
        result = np.polyval(self.coefficients, reference_time)
        if np.isscalar(reference_time):
            return float(result)
        return result

    @property
    def degree(self) -> int:
        """Degree of the fitted polynomial."""
        return len(self.coefficients) - 1


def fit_drift(
    reference_times: Sequence[float],
    offsets: Sequence[float],
    degree: int = 2,
) -> DriftModel:
    """Fit a drift polynomial to offset history.

    Degree 1 captures a constant frequency error; degree 2 (the default,
    matching quartz ageing practice) also captures linear frequency
    drift.

    Args:
        reference_times: observation instants.
        offsets: measured clock offset at each instant.
        degree: polynomial degree (must leave at least one degree of
            freedom: ``len(reference_times) > degree``).
    """
    times = np.asarray(reference_times, dtype=float)
    values = np.asarray(offsets, dtype=float)
    if times.ndim != 1 or times.shape != values.shape:
        raise ValueError("times and offsets must be equal-length 1-D sequences")
    if degree < 0:
        raise ValueError("degree must be non-negative")
    if len(times) <= degree:
        raise ValueError("need more observations than polynomial degree")
    coefficients = np.polyfit(times, values, degree)
    residuals = values - np.polyval(coefficients, times)
    residual_rms = float(np.sqrt(np.mean(residuals**2)))
    return DriftModel(coefficients=coefficients, residual_rms=residual_rms)


def holdover_horizon(
    model: DriftModel,
    truth: DriftModel,
    start_time: float,
    error_bound: float,
    max_horizon: float,
    step: float,
) -> float:
    """How long predictions stay within ``error_bound`` of the truth.

    Scans forward from ``start_time`` in increments of ``step`` and
    returns the last horizon at which ``|model - truth| <= error_bound``
    (0.0 if the bound is violated immediately, ``max_horizon`` if it
    never is).  This is the rendezvous-interval question: a station may
    go this long between clock exchanges before its neighbours'
    schedule predictions risk missing a slot.
    """
    if error_bound <= 0.0:
        raise ValueError("error bound must be positive")
    if max_horizon <= 0.0 or step <= 0.0:
        raise ValueError("horizon and step must be positive")
    horizon = 0.0
    t = start_time
    while horizon < max_horizon:
        t_next = t + step
        error = abs(model.predict(t_next) - truth.predict(t_next))
        if error > error_bound:
            return horizon
        horizon += step
        t = t_next
    return max_horizon
