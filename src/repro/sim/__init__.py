"""Discrete-event simulation substrate (engine, processes, stats, traces)."""

from repro.sim.engine import EmptySchedule, Environment
from repro.sim.events import AllOf, AnyOf, Condition, Event, Interrupt, Timeout
from repro.sim.process import Process, ProcessGenerator
from repro.sim.sanitizer import DeterminismSanitizer, SanitizerError, sanitized
from repro.sim.stats import Histogram, TimeWeighted, Welford
from repro.sim.streams import RandomStreams
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "DeterminismSanitizer",
    "EmptySchedule",
    "Environment",
    "Event",
    "Histogram",
    "Interrupt",
    "Process",
    "ProcessGenerator",
    "RandomStreams",
    "SanitizerError",
    "Timeout",
    "sanitized",
    "TimeWeighted",
    "TraceRecord",
    "TraceRecorder",
    "Welford",
]
