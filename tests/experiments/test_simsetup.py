"""Tests for the shared experiment setup helpers."""

import pytest

from repro.experiments.simsetup import (
    add_uniform_poisson,
    run_loaded_network,
    standard_network,
)
from repro.net.network import NetworkConfig


class TestStandardNetwork:
    def test_builds_requested_size(self):
        network = standard_network(12, placement_seed=3, trace=False)
        assert network.station_count == 12

    def test_placement_seed_reproducible(self):
        a = standard_network(10, placement_seed=5, trace=False)
        b = standard_network(10, placement_seed=5, trace=False)
        assert (a.placement.positions == b.placement.positions).all()

    def test_config_flows_through(self):
        config = NetworkConfig(receive_fraction=0.4, seed=1)
        network = standard_network(10, 1, config, trace=False)
        assert network.config.receive_fraction == 0.4


class TestAddUniformPoisson:
    def test_one_source_per_station(self):
        network = standard_network(8, 7, trace=False)
        add_uniform_poisson(network, 0.05, traffic_seed=9)
        assert len(network._sources) == 8

    def test_rate_in_slot_units(self):
        network = standard_network(8, 7, trace=False)
        add_uniform_poisson(network, 0.05, traffic_seed=9)
        source = network._sources[0]
        assert source.rate == pytest.approx(0.05 / network.budget.slot_time)

    def test_rejects_zero_load(self):
        network = standard_network(8, 7, trace=False)
        with pytest.raises(ValueError):
            add_uniform_poisson(network, 0.0, traffic_seed=9)


class TestRunLoadedNetwork:
    def test_returns_network_and_result(self):
        network, result = run_loaded_network(10, 0.05, 100, placement_seed=3)
        assert network.station_count == 10
        assert result.duration == pytest.approx(100 * network.budget.slot_time)

    def test_deterministic(self):
        _n1, r1 = run_loaded_network(10, 0.05, 100, placement_seed=3)
        _n2, r2 = run_loaded_network(10, 0.05, 100, placement_seed=3)
        assert r1.transmissions == r2.transmissions
