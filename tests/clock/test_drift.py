"""Tests for drift fitting and holdover horizons."""

import numpy as np
import pytest

from repro.clock.drift import DriftModel, fit_drift, holdover_horizon


class TestFitDrift:
    def test_recovers_linear_drift(self):
        times = np.linspace(0.0, 100.0, 20)
        offsets = 3.0 + 0.01 * times
        model = fit_drift(times, offsets, degree=1)
        assert model.predict(200.0) == pytest.approx(5.0, abs=1e-9)
        assert model.residual_rms == pytest.approx(0.0, abs=1e-9)

    def test_recovers_quadratic_ageing(self):
        times = np.linspace(0.0, 100.0, 30)
        offsets = 1.0 + 0.002 * times + 1e-5 * times**2
        model = fit_drift(times, offsets, degree=2)
        assert model.degree == 2
        assert model.predict(150.0) == pytest.approx(
            1.0 + 0.3 + 1e-5 * 150**2, abs=1e-6
        )

    def test_noise_reported_in_residual(self):
        rng = np.random.default_rng(1)
        times = np.linspace(0.0, 100.0, 50)
        offsets = 0.01 * times + rng.normal(0.0, 0.1, 50)
        model = fit_drift(times, offsets, degree=1)
        assert 0.05 < model.residual_rms < 0.2

    def test_needs_more_points_than_degree(self):
        with pytest.raises(ValueError):
            fit_drift([0.0, 1.0], [0.0, 1.0], degree=2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_drift([0.0, 1.0], [0.0], degree=1)


class TestHoldover:
    def test_identical_models_hold_forever(self):
        model = DriftModel(np.array([0.01, 0.0]), 0.0)
        horizon = holdover_horizon(
            model, model, start_time=0.0, error_bound=0.1,
            max_horizon=1000.0, step=10.0,
        )
        assert horizon == 1000.0

    def test_rate_mismatch_bounds_horizon(self):
        truth = DriftModel(np.array([0.01, 0.0]), 0.0)
        wrong = DriftModel(np.array([0.02, 0.0]), 0.0)
        # Error grows at 0.01/s; the 0.1 bound is crossed at 10 s.
        horizon = holdover_horizon(
            wrong, truth, start_time=0.0, error_bound=0.1,
            max_horizon=1000.0, step=1.0,
        )
        assert horizon == pytest.approx(10.0, abs=1.0)

    def test_immediate_violation_returns_zero(self):
        truth = DriftModel(np.array([0.0, 0.0]), 0.0)
        wrong = DriftModel(np.array([0.0, 100.0]), 0.0)
        assert holdover_horizon(
            wrong, truth, 0.0, error_bound=0.1, max_horizon=10.0, step=1.0
        ) == 0.0

    def test_rejects_bad_bound(self):
        model = DriftModel(np.array([0.0]), 0.0)
        with pytest.raises(ValueError):
            holdover_horizon(model, model, 0.0, 0.0, 10.0, 1.0)
