"""Transmit power control (Section 6.1).

The paper's rule: "transmit with sufficient power to deliver a constant
pre-determined amount of power to the intended receiver."  The absolute
level of the constant is uncritical — scaling it slides every power in
the system up or down together — but fixing the *delivered* power (a)
reduces SIR variance, and (b) self-compensates for density variations:
quadruple the density, halve the hop distance, quarter the power, and
the radiated power density stays constant, preserving the Section 4
noise analysis.

Footnote 9's refinement (aim for the necessary SIR given recently
observed noise) is provided as :class:`TargetSirPolicy` for the
ablation experiments.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "PowerPolicy",
    "FullPowerPolicy",
    "ConstantDeliveredPolicy",
    "TargetSirPolicy",
    "PolicyKind",
    "make_policy",
]


class PowerPolicy(ABC):
    """Strategy mapping link conditions to a transmit power."""

    @abstractmethod
    def transmit_power(
        self,
        path_gain: float,
        max_power_w: float,
        observed_noise_w: float | None = None,
    ) -> float:
        """Power to radiate toward a receiver reachable via ``path_gain``.

        Args:
            path_gain: power gain of the link to the intended receiver.
            max_power_w: hardware limit; the returned power never
                exceeds it.
            observed_noise_w: the receiver's recently observed noise
                level, when the policy uses it (footnote 9).
        """


@dataclass(frozen=True)
class FullPowerPolicy(PowerPolicy):
    """No power control: always transmit at full power.

    The ablation baseline — "in cases where stations are closer than
    maximum range, transmitting at full power is excessive".
    """

    def transmit_power(
        self,
        path_gain: float,
        max_power_w: float,
        observed_noise_w: float | None = None,
    ) -> float:
        if max_power_w <= 0.0:
            raise ValueError("maximum power must be positive")
        return max_power_w


@dataclass(frozen=True)
class ConstantDeliveredPolicy(PowerPolicy):
    """The paper's rule: deliver ``target_received_w`` to the receiver.

    Attributes:
        target_received_w: the constant pre-determined delivered power.
    """

    target_received_w: float

    def __post_init__(self) -> None:
        if self.target_received_w <= 0.0:
            raise ValueError("target delivered power must be positive")

    def transmit_power(
        self,
        path_gain: float,
        max_power_w: float,
        observed_noise_w: float | None = None,
    ) -> float:
        if path_gain <= 0.0:
            raise ValueError("path gain must be positive for a usable link")
        if max_power_w <= 0.0:
            raise ValueError("maximum power must be positive")
        return min(self.target_received_w / path_gain, max_power_w)


@dataclass(frozen=True)
class TargetSirPolicy(PowerPolicy):
    """Footnote 9: deliver just enough for the target SIR.

    "A better idea might be to transmit with power sufficient to just
    achieve the necessary signal-to-noise ratio ... the recent past
    might be a good-enough predictor of the future noise levels."

    Attributes:
        target_sir: SIR to aim for at the receiver (threshold x margin).
        fallback_noise_w: noise estimate used when no observation is
            available yet.
    """

    target_sir: float
    fallback_noise_w: float

    def __post_init__(self) -> None:
        if self.target_sir <= 0.0:
            raise ValueError("target SIR must be positive")
        if self.fallback_noise_w <= 0.0:
            raise ValueError("fallback noise must be positive")

    def transmit_power(
        self,
        path_gain: float,
        max_power_w: float,
        observed_noise_w: float | None = None,
    ) -> float:
        if path_gain <= 0.0:
            raise ValueError("path gain must be positive for a usable link")
        if max_power_w <= 0.0:
            raise ValueError("maximum power must be positive")
        noise = observed_noise_w if observed_noise_w else self.fallback_noise_w
        return min(self.target_sir * noise / path_gain, max_power_w)


class PolicyKind(enum.Enum):
    """Names for the power policies, for configs and experiment sweeps."""

    FULL = "full"
    CONSTANT_DELIVERED = "constant_delivered"
    TARGET_SIR = "target_sir"


def make_policy(
    kind: PolicyKind,
    target_received_w: float = 1.0,
    target_sir: float = 1.0,
    fallback_noise_w: float = 1.0,
) -> PowerPolicy:
    """Instantiate a policy by kind with the relevant parameters."""
    if kind is PolicyKind.FULL:
        return FullPowerPolicy()
    if kind is PolicyKind.CONSTANT_DELIVERED:
        return ConstantDeliveredPolicy(target_received_w)
    if kind is PolicyKind.TARGET_SIR:
        return TargetSirPolicy(target_sir, fallback_noise_w)
    raise ValueError(f"unknown policy kind {kind!r}")
