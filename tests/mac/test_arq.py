"""The stop-and-wait ARQ sublayer: policy, bookkeeping, integration."""

import math

import pytest

from repro.experiments.simsetup import add_uniform_poisson, standard_network
from repro.mac import ArqConfig
from repro.mac.aloha import AlohaMac
from repro.mobility import (
    ChannelSpec,
    FadingSpec,
    RandomWaypoint,
    install_channel,
)
from repro.net.network import NetworkConfig
from repro.sim.streams import RandomStreams

STATIONS = 12
SEED = 11


class TestArqConfig:
    def test_delay_schedule_is_deterministic_and_capped(self):
        config = ArqConfig(
            max_retries=5,
            timeout_slots=4.0,
            backoff_slots=2.0,
            backoff_cap_slots=12.0,
        )
        assert config.retry_delay_slots(1) == 6.0
        assert config.retry_delay_slots(2) == 8.0
        assert config.retry_delay_slots(3) == 12.0  # capped (4 + 8)
        assert config.retry_delay_slots(4) == 12.0  # capped (4 + 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArqConfig(max_retries=0)
        with pytest.raises(ValueError):
            ArqConfig(timeout_slots=0.0)
        with pytest.raises(ValueError):
            ArqConfig(backoff_slots=-1.0)
        with pytest.raises(ValueError):
            ArqConfig(timeout_slots=8.0, backoff_cap_slots=4.0)

    def test_network_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(arq_max_retries=0)
        with pytest.raises(ValueError):
            NetworkConfig(arq_max_retries=3, arq_timeout_slots=0.0)
        with pytest.raises(ValueError):
            NetworkConfig(arq_max_retries=3, arq_backoff_slots=-1.0)


def lossy_network(arq_retries, load=0.1):
    """An ALOHA network under a fading channel: plenty of failed hops."""
    streams = RandomStreams(SEED)
    network = standard_network(
        STATIONS,
        placement_seed=SEED,
        config=NetworkConfig(seed=SEED, arq_max_retries=arq_retries),
        mac_factory=lambda i, b: AlohaMac(streams.stream(f"a{i}")),
        trace=False,
    )
    add_uniform_poisson(network, load, SEED + 1)
    spec = ChannelSpec(
        mobility=RandomWaypoint(
            speed=0.03 * network.placement.characteristic_length
        ),
        fading=FadingSpec(sigma_db=6.0, coherence_slots=8.0),
        tick_slots=2.0,
        end_slot=400.0,
    )
    install_channel(network, spec, seed=SEED)
    return network


class TestArqIntegration:
    def test_sublayer_installed_only_when_configured(self):
        with_arq = lossy_network(arq_retries=3)
        assert all(s.arq is not None for s in with_arq.stations)
        without = lossy_network(arq_retries=None)
        assert all(s.arq is None for s in without.stations)

    def test_retries_and_giveups_are_counted(self):
        network = lossy_network(arq_retries=2)
        result = network.run(400.0 * network.budget.slot_time)
        assert result.arq_retries > 0
        assert result.delivered_end_to_end > 0
        # Station stats sum to the network totals.
        assert result.arq_retries == sum(
            s.stats.arq_retries for s in network.stations
        )
        assert result.arq_giveups == sum(
            s.stats.arq_giveups for s in network.stations
        )
        # Retries are bounded: give-ups only after max_retries failures.
        for station in network.stations:
            assert station.arq.retries == station.stats.arq_retries
            assert station.arq.giveups == station.stats.arq_giveups

    def test_arq_runs_are_deterministic(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        digests = []
        for _ in range(2):
            network = lossy_network(arq_retries=2)
            network.run(300.0 * network.budget.slot_time)
            digests.append(network.env.replay_digest())
        assert digests[0] == digests[1]

    def test_retry_state_clears_on_success(self):
        network = lossy_network(arq_retries=3)
        network.run(400.0 * network.budget.slot_time)
        # Long after the episode, no retry state should leak for
        # packets that were delivered or given up; pending entries are
        # bounded by the stations' queue depths.
        for station in network.stations:
            assert len(station.arq._attempts) <= 64
