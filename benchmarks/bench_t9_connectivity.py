"""Bench T9: connectivity versus hop reach (Section 6)."""

from repro.experiments import get_experiment


def test_bench_t9_connectivity(benchmark, show_report):
    report = benchmark.pedantic(
        lambda: get_experiment("T9")(station_count=500, placements=3),
        rounds=1,
        iterations=1,
    )
    show_report(report)
    assert report.claims["giant component at reach 2 (should suffice)"][1] > 0.95
    assert report.claims["giant component at reach 1 (insufficient)"][1] < 0.9
