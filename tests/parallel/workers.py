"""Importable task targets for the pool tests.

These must live in a real module (not a test function) because
``kind="function"`` tasks resolve their target by dotted name inside
spawned workers, which re-import it from scratch.
"""

import os
import time


def echo(**kwargs):
    """Return the keyword arguments as the payload."""
    return dict(kwargs)


def double(value):
    """A non-mapping result, to exercise the ``{"value": ...}`` wrap."""
    return 2 * value


def seed_probe(seed=None, tag=""):
    """Report the seed the task layer injected."""
    return {"seed": seed, "tag": tag}


def explode(message="boom"):
    """A deterministic Python failure (captured, never retried)."""
    raise ValueError(message)


def crash(code=13):
    """Kill the worker process outright — no exception, no result."""
    os._exit(code)


def sleep_forever():
    """Outlive any per-task timeout the tests set."""
    while True:
        time.sleep(0.1)
