"""The design strategy calculations (Section 6).

Section 6 assembles the link budget that fixes the system's processing
gain: starting from the Section 4 noise floor at the characteristic
hop distance, add the detection margin ("around 5 dB"), add the reach
margin for neighbours out to twice the characteristic distance
("another 6 dB"), and conclude that "the proper amount of processing
gain is determined to lie in the range of 20 to 25 dB".

:class:`DesignPoint` reproduces that budget for any scale, and the
connectivity helpers reproduce the expected-neighbour-count reasoning
(pi expected stations within ``1/sqrt(rho)``, ``4 pi`` within twice
that).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.noise import snr_nearest_neighbor
from repro.radio.signal import linear_to_db

__all__ = [
    "expected_neighbors",
    "RANGE_DOUBLING_LOSS_DB",
    "reach_for_expected_neighbors",
    "range_doubling_cost_db",
    "DesignPoint",
]

#: Free-space loss increase for each doubling of distance: a factor of
#: four in power, "6 db" in the paper's words.
RANGE_DOUBLING_LOSS_DB = 20.0 * math.log10(2.0)


def expected_neighbors(reach_factor: float) -> float:
    """Expected stations within ``reach_factor / sqrt(rho)`` of a station.

    Uniform density makes this ``rho * pi * (reach_factor/sqrt(rho))^2 =
    pi * reach_factor^2`` — the paper's "expected number is only [pi]"
    at reach factor 1, and ``4 pi`` after doubling (Section 6).
    """
    if reach_factor <= 0.0:
        raise ValueError("reach factor must be positive")
    return math.pi * reach_factor**2


def reach_for_expected_neighbors(neighbor_count: float) -> float:
    """Reach factor (in units of ``1/sqrt(rho)``) for an expected count."""
    if neighbor_count <= 0.0:
        raise ValueError("neighbour count must be positive")
    return math.sqrt(neighbor_count / math.pi)


def range_doubling_cost_db(doublings: float) -> float:
    """SNR cost of extending reach by a number of distance doublings.

    "Free-space radio propagation falls off by a factor of four, or
    6 db, for each doubling in distance" (Section 4); the same factor
    reappears as throughput cost, since "achievable throughput depends
    linearly on signal-to-noise ratio in a noisy system".
    """
    if doublings < 0.0:
        raise ValueError("doublings must be non-negative")
    return RANGE_DOUBLING_LOSS_DB * doublings


@dataclass(frozen=True)
class DesignPoint:
    """A complete Section 6 link budget.

    Attributes:
        station_count: system scale M.
        duty_cycle: average transmit duty cycle eta.
        detection_margin_db: headroom for practical detection above the
            Shannon bound (the paper budgets "around 5 db").
        reach_doublings: how many distance doublings beyond the
            characteristic length the design must serve (the paper
            takes 1: neighbours out to ``2/sqrt(rho)``).
    """

    station_count: float
    duty_cycle: float
    detection_margin_db: float = 5.0
    reach_doublings: float = 1.0

    def __post_init__(self) -> None:
        if self.station_count <= math.e:
            raise ValueError("the design analysis needs M > e")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")
        if self.detection_margin_db < 0.0:
            raise ValueError("detection margin must be non-negative")
        if self.reach_doublings < 0.0:
            raise ValueError("reach doublings must be non-negative")

    @property
    def characteristic_snr_db(self) -> float:
        """Section 4 SNR at the characteristic distance, in dB."""
        return linear_to_db(
            snr_nearest_neighbor(self.station_count, self.duty_cycle)
        )

    @property
    def reach_margin_db(self) -> float:
        """Extra SNR consumed by serving the farthest design neighbour."""
        return range_doubling_cost_db(self.reach_doublings)

    @property
    def processing_gain_db(self) -> float:
        """Required processing gain: the inverse of the worst-case SNR
        budget, i.e. how far below the noise the receiver must detect.

        ``PG = -SNR(characteristic) + detection margin + reach margin``.
        At metro scale (M = 10^6..10^9, eta = 0.25..1) this lands in the
        paper's 20-25 dB range.
        """
        return (
            -self.characteristic_snr_db
            + self.detection_margin_db
            + self.reach_margin_db
        )

    @property
    def expected_neighbors_at_reach(self) -> float:
        """Expected direct neighbours within the design reach."""
        return expected_neighbors(2.0**self.reach_doublings)

    def summary(self) -> dict:
        """All budget lines as a dict (for the benches and examples)."""
        return {
            "station_count": self.station_count,
            "duty_cycle": self.duty_cycle,
            "characteristic_snr_db": self.characteristic_snr_db,
            "detection_margin_db": self.detection_margin_db,
            "reach_margin_db": self.reach_margin_db,
            "processing_gain_db": self.processing_gain_db,
            "expected_neighbors": self.expected_neighbors_at_reach,
        }
