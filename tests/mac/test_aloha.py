"""Tests for the ALOHA baselines."""

import numpy as np
import pytest

from repro.mac.aloha import AlohaMac
from repro.net.network import NetworkConfig, build_network
from repro.net.traffic import CbrTraffic, PoissonTraffic
from repro.propagation.geometry import uniform_disk
from repro.sim.streams import RandomStreams


def aloha_network(count=12, seed=19, slotted=False):
    placement = uniform_disk(count, radius=600.0, seed=seed)
    streams = RandomStreams(seed)
    network = build_network(
        placement,
        NetworkConfig(seed=seed),
        mac_factory=lambda i, b: AlohaMac(
            streams.stream(f"mac{i}"), slotted=slotted
        ),
        trace=True,
    )
    return network


class TestAlohaBehaviour:
    def test_delivers_on_quiet_channel(self):
        network = aloha_network()
        network.add_traffic(
            CbrTraffic(
                origin=0,
                destination=int(network.tables[0].neighbors_in_use()[0]),
                interval=20 * network.budget.slot_time,
                size_bits=network.config.packet_size_bits,
                limit=5,
            )
        )
        result = network.run(200 * network.budget.slot_time)
        assert result.hop_deliveries == 5
        assert result.losses_total == 0

    def test_transmits_immediately_not_schedule_gated(self):
        # ALOHA ignores schedules: the first transmission happens right
        # at the packet arrival, not at a schedule window.
        network = aloha_network()
        network.add_traffic(
            CbrTraffic(
                origin=0,
                destination=int(network.tables[0].neighbors_in_use()[0]),
                interval=1000.0,
                size_bits=network.config.packet_size_bits,
                start_at=7.0,
                limit=1,
            )
        )
        network.run(100 * network.budget.slot_time)
        first = network.trace.of_kind("tx_start")[0]
        assert first.time == pytest.approx(7.0, abs=1e-9)

    def test_contention_produces_losses(self):
        network = aloha_network(count=20, seed=23)
        rng = RandomStreams(5).stream("traffic")
        for origin in range(20):
            network.add_traffic(
                PoissonTraffic(
                    origin=origin,
                    rate=0.15 / network.budget.slot_time,
                    destinations=list(range(20)),
                    size_bits=network.config.packet_size_bits,
                    rng=rng,
                )
            )
        result = network.run(300 * network.budget.slot_time)
        assert result.losses_total > 0

    def test_retry_recovers_after_failure(self):
        # Two simultaneous CBR streams to each other: the first attempts
        # self-jam (Type 3), but backoff desynchronises the retries.
        network = aloha_network(count=12, seed=29)
        a = 0
        b = int(network.tables[0].neighbors_in_use()[0])
        slot = network.budget.slot_time
        for origin, destination in ((a, b), (b, a)):
            network.add_traffic(
                CbrTraffic(
                    origin=origin,
                    destination=destination,
                    interval=1000 * slot,
                    size_bits=network.config.packet_size_bits,
                    limit=1,
                )
            )
        result = network.run(500 * slot)
        assert result.hop_deliveries == 2
        assert result.losses_total >= 1  # the initial collision

    def test_slotted_variant_aligns_starts(self):
        network = aloha_network(slotted=True)
        airtime = network.budget.packet_airtime
        destination = int(network.tables[0].neighbors_in_use()[0])
        network.add_traffic(
            CbrTraffic(
                origin=0,
                destination=destination,
                interval=17.3 * airtime,
                size_bits=network.config.packet_size_bits,
                limit=8,
            )
        )
        network.run(400 * airtime)
        for record in network.trace.of_kind("tx_start"):
            phase = (record.time / airtime) % 1.0
            assert min(phase, 1.0 - phase) < 1e-6

    def test_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            AlohaMac(rng, max_attempts=0)
        with pytest.raises(ValueError):
            AlohaMac(rng, base_backoff=0.0)
