"""The discrete-event simulation environment.

A minimal, deterministic event-wheel: a binary heap of (time, priority,
sequence, event) entries, processed in order, with FIFO tie-breaking
among simultaneous events.  Determinism matters here — the
collision-freedom experiments assert *exact* zero-loss outcomes, which
only reproduce if the event order is stable across runs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, List, Optional, Tuple

from repro.sim.events import NORMAL, URGENT, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator
from repro.sim.sanitizer import DeterminismSanitizer, sanitize_default

__all__ = ["Environment", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Execution environment for a single simulation run.

    Args:
        initial_time: starting simulated time.
        sanitize: enable the determinism sanitizer (invariant checks on
            every step plus a replay digest; see
            :mod:`repro.sim.sanitizer`).  ``None`` defers to the
            process-wide default (``REPRO_SANITIZE=1`` or the
            :func:`repro.sim.sanitizer.sanitized` context manager).

    Attributes:
        now: current simulated time.
    """

    def __init__(
        self, initial_time: float = 0.0, sanitize: Optional[bool] = None
    ) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._sequence = count()
        self._events_processed = 0
        self._active_process: Optional[Process] = None
        if sanitize is None:
            sanitize = sanitize_default()
        self._sanitizer: Optional[DeterminismSanitizer] = (
            DeterminismSanitizer() if sanitize else None
        )

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def sanitizing(self) -> bool:
        """Whether the determinism sanitizer is enabled."""
        return self._sanitizer is not None

    @property
    def events_processed(self) -> int:
        """Total events processed so far (the perf harness's work unit)."""
        return self._events_processed

    def replay_digest(self) -> str:
        """Hex digest of the processed event stream so far.

        Two runs of the same seeded scenario must return identical
        digests; any divergence means nondeterminism leaked into the
        event wheel.  Requires the sanitizer (``sanitize=True`` or
        ``REPRO_SANITIZE=1``).
        """
        if self._sanitizer is None:
            raise RuntimeError(
                "replay digests require the determinism sanitizer; construct "
                "the Environment with sanitize=True or set REPRO_SANITIZE=1"
            )
        return self._sanitizer.digest()

    # -- scheduling --------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Queue a triggered event for processing after ``delay``."""
        if delay < 0.0:
            raise ValueError("cannot schedule into the past")
        when = self._now + delay
        if self._sanitizer is not None:
            self._sanitizer.check_schedule(event, when, self._now)
        heappush(self._queue, (when, priority, next(self._sequence), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        try:
            when, priority, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no events scheduled") from None
        if self._sanitizer is not None:
            self._sanitizer.check_step(event, when, self._now)
            self._sanitizer.record(when, priority, event)
        self._now = when
        self._events_processed += 1
        event._run_callbacks()
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        Args:
            until: ``None`` runs until no events remain; a number runs
                until simulated time reaches it (events at exactly that
                time are not processed); an :class:`Event` runs until
                that event has been processed and returns its value.
        """
        marker: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            marker = until
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until ({horizon}) is before the current time ({self._now})"
                )
            marker = Event(self)
            marker._ok = True
            marker._value = None
            heappush(self._queue, (horizon, URGENT, next(self._sequence), marker))

        while self._queue:
            if marker is not None and marker.processed:
                return marker.value if isinstance(until, Event) else None
            self.step()
        if marker is not None and marker.processed:
            return marker.value if isinstance(until, Event) else None
        if isinstance(until, Event):
            raise RuntimeError("ran out of events before `until` event triggered")
        return None

    # -- factories ---------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires after ``delay`` simulated time units."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def any_of(self, events: List[Event]) -> AnyOf:
        """An event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """An event that fires when all of ``events`` have fired."""
        return AllOf(self, events)
