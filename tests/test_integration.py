"""Cross-module integration tests: whole-network invariants.

These are the repository's strongest checks: full networks built from
placement to MAC, run under load, with the paper's guarantees asserted
against the physical medium's records rather than any shortcut.
"""

import pytest

from repro.net.network import NetworkConfig, build_network
from repro.net.traffic import PoissonTraffic
from repro.propagation.geometry import clustered, uniform_disk
from repro.propagation.models import ObstructedUrban
from repro.routing.table import trace_route
from repro.sim.streams import RandomStreams


def build_loaded(
    count=30,
    seed=71,
    load=0.06,
    placement=None,
    model=None,
    **config_overrides,
):
    placement = placement or uniform_disk(count, radius=900.0, seed=seed)
    config = NetworkConfig(seed=seed, **config_overrides)
    network = build_network(placement, config, model=model, trace=True)
    rng = RandomStreams(seed + 1).stream("traffic")
    for origin in range(placement.count):
        network.add_traffic(
            PoissonTraffic(
                origin=origin,
                rate=load / network.budget.slot_time,
                destinations=list(range(placement.count)),
                size_bits=config.packet_size_bits,
                rng=rng,
            )
        )
    return network


class TestCollisionFreedom:
    def test_zero_losses_under_load(self):
        network = build_loaded()
        result = network.run(400 * network.budget.slot_time)
        assert result.collision_free
        assert result.hop_deliveries == result.transmissions
        assert result.delivered_end_to_end > 50

    def test_zero_losses_with_clock_jitter(self):
        # Imperfect clock models, absorbed by the guard band.
        network = build_loaded(
            rendezvous_jitter=1e-3,
            rendezvous_count=8,
            guard_fraction=0.03,
        )
        result = network.run(300 * network.budget.slot_time)
        assert result.collision_free

    def test_zero_losses_on_clustered_placement(self):
        placement = clustered(
            cluster_count=6, per_cluster=5, radius=900.0,
            cluster_spread=0.08, seed=73,
        )
        network = build_loaded(placement=placement, seed=73, load=0.04)
        result = network.run(300 * network.budget.slot_time)
        assert result.collision_free

    def test_zero_losses_under_obstructed_propagation(self):
        network = build_loaded(
            model=ObstructedUrban(shadowing_db=6.0, seed=5, near_field_clamp=1e-6),
            seed=79,
            load=0.04,
        )
        result = network.run(300 * network.budget.slot_time)
        assert result.collision_free


class TestDeliveredPacketsFollowRoutes:
    def test_hops_match_routing_tables(self):
        network = build_loaded(count=20, seed=83)
        result = network.run(300 * network.budget.slot_time)
        assert result.delivered_end_to_end > 0
        # Reconstruct each delivery's expected path from the tables.
        for record in network.trace.of_kind("delivered"):
            station = record.data["station"]
            hops = record.data["hops"]
            # The trace has no path, but the hop count must match the
            # table-traced route length for *some* origin; verify via
            # the stronger invariant: no delivered path is longer than
            # the longest table route to this destination.
            longest = max(
                len(trace_route(network.tables, src, station)) - 1
                for src in range(network.station_count)
                if src != station and network.tables[src].has_route(station)
            )
            assert 1 <= hops <= longest


class TestDeterminism:
    def test_identical_seeds_identical_transcripts(self):
        first = build_loaded(count=15, seed=89)
        second = build_loaded(count=15, seed=89)
        r1 = first.run(200 * first.budget.slot_time)
        r2 = second.run(200 * second.budget.slot_time)
        assert r1.transmissions == r2.transmissions
        assert r1.delivered_end_to_end == r2.delivered_end_to_end
        assert first.trace.kinds() == second.trace.kinds()
        starts_1 = [(r.time, r.data["source"]) for r in first.trace.of_kind("tx_start")]
        starts_2 = [(r.time, r.data["source"]) for r in second.trace.of_kind("tx_start")]
        assert starts_1 == starts_2

    def test_different_traffic_seed_changes_run(self):
        base = build_loaded(count=15, seed=89)
        base.run(200 * base.budget.slot_time)

        placement = uniform_disk(15, radius=900.0, seed=89)
        config = NetworkConfig(seed=89)
        other = build_network(placement, config, trace=True)
        rng = RandomStreams(12345).stream("traffic")
        for origin in range(15):
            other.add_traffic(
                PoissonTraffic(
                    origin=origin,
                    rate=0.06 / other.budget.slot_time,
                    destinations=list(range(15)),
                    size_bits=config.packet_size_bits,
                    rng=rng,
                )
            )
        other.run(200 * other.budget.slot_time)
        assert base.trace.count("tx_start") != other.trace.count("tx_start")


class TestResourceSizing:
    def test_despreader_never_needs_more_than_neighbors(self):
        # Section 5: the despreader bank need not exceed the number of
        # stations that might address this one.
        network = build_loaded(count=30, seed=97, load=0.1)
        network.run(300 * network.budget.slot_time)
        for station in network.stations:
            inbound = sum(
                1
                for other in network.stations
                if other.index != station.index
                and station.index in other.table.neighbors_in_use()
            )
            assert station.bank.peak_busy <= max(inbound, 1)

    def test_no_despreader_rejections_with_twelve_channels(self):
        network = build_loaded(count=30, seed=97, load=0.1)
        result = network.run(300 * network.budget.slot_time)
        assert result.despreader_rejections == 0
