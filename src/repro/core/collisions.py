"""The collision taxonomy (Section 5, Figure 2).

Every lost packet traces to interfering transmissions, and each
interfering transmission falls into exactly one class relative to the
receiver of the lost packet:

* **Type 1** — the interferer neither targets nor is the receiver: "the
  transmission of another packet from a station not involved in the
  exchange".
* **Type 2** — the interferer targets the same receiver: "multiple
  stations attempting to send packets simultaneously to a single
  station".
* **Type 3** — the interferer *is* the receiver: "a packet arriving at
  a station while another packet is being transmitted by the receiving
  station".

"Multiple collision types may occur simultaneously in more complicated
situations" — hence classification returns the set of types present.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

__all__ = [
    "CollisionType",
    "InterferenceSource",
    "classify_loss",
    "classify_source",
    "count_by_type",
]


class CollisionType(enum.Enum):
    """The three classes of interfering transmission (Figure 2)."""

    TYPE_1 = 1
    """Interferer not involved with the receiver at all."""

    TYPE_2 = 2
    """Interferer addressed to the same receiver."""

    TYPE_3 = 3
    """The receiver's own transmitter."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Type {self.value}"


@dataclass(frozen=True)
class InterferenceSource:
    """One transmission that contributed interference to a loss.

    Attributes:
        transmitter: station index of the interfering transmitter.
        destination: station index the interfering packet addresses.
    """

    transmitter: int
    destination: int


def classify_source(source: InterferenceSource, receiver: int) -> CollisionType:
    """Class of a single interfering transmission relative to a receiver.

    The paper's enumeration "covers all possible cases": the interferer
    either is the receiver (Type 3), targets it (Type 2), or neither
    (Type 1).
    """
    if source.transmitter == receiver:
        return CollisionType.TYPE_3
    if source.destination == receiver:
        return CollisionType.TYPE_2
    return CollisionType.TYPE_1


def classify_loss(
    receiver: int, sources: Iterable[InterferenceSource]
) -> FrozenSet[CollisionType]:
    """Set of collision types present among a loss's interference sources."""
    types = frozenset(classify_source(source, receiver) for source in sources)
    if not types:
        raise ValueError(
            "a collision needs at least one interference source; a loss with "
            "none is a link-budget failure, not a collision"
        )
    return types


def count_by_type(
    losses: Iterable[Tuple[int, Iterable[InterferenceSource]]]
) -> dict:
    """Tally losses by collision type over (receiver, sources) pairs.

    A loss exhibiting several types increments each of them, matching
    the paper's "multiple collision types may occur simultaneously".
    """
    counts = {collision_type: 0 for collision_type in CollisionType}
    for receiver, sources in losses:
        for collision_type in classify_loss(receiver, sources):
            counts[collision_type] += 1
    return counts
