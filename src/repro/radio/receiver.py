"""Receiver configuration: despreader bank, margin, and noise budget.

A receiver in this system is characterised by (Sections 3.4, 5, 6):

* the data rate / bandwidth pair it is designed for (equivalently, its
  processing gain),
* the margin ``beta`` above the Shannon-minimum signal-to-noise ratio it
  needs for reliable detection ("around 3, which is equivalent to the
  5 dB mentioned above"),
* a bank of despreading channels for parallel reception, and
* the interference *budget*: the aggregate noise level the design
  expects it to tolerate, against which senders size their delivered
  power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.reception import required_sir
from repro.radio.spreadspectrum import DespreaderBank, ProcessingGain

__all__ = ["Receiver"]


@dataclass
class Receiver:
    """A multi-channel spread-spectrum receiver.

    Attributes:
        bandwidth_hz: spread signal bandwidth ``W``.
        data_rate_bps: design data rate ``C`` (fixed by the system design;
            Section 3.4: "all the stations will communicate at some rate
            that is fixed by the design").
        beta: detection margin above the Shannon bound (linear; ~3).
        noise_budget_w: interference-plus-noise power the link budget is
            sized against.  Reception is attempted whenever the *actual*
            signal-to-interference ratio clears the threshold; the budget
            is what senders use to size delivered power.
        bank: despreading channel pool.
    """

    bandwidth_hz: float
    data_rate_bps: float
    noise_budget_w: float
    beta: float = 3.0
    bank: DespreaderBank = field(default_factory=DespreaderBank)

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0.0:
            raise ValueError("bandwidth must be positive")
        if self.data_rate_bps <= 0.0:
            raise ValueError("data rate must be positive")
        if self.data_rate_bps > self.bandwidth_hz:
            raise ValueError(
                "data rate above bandwidth implies negative processing gain"
            )
        if self.noise_budget_w <= 0.0:
            raise ValueError("noise budget must be positive")
        if self.beta < 1.0:
            raise ValueError("beta is a margin and must be >= 1")

    @property
    def processing_gain(self) -> ProcessingGain:
        """The receiver's processing gain W/C."""
        return ProcessingGain.from_rates(self.bandwidth_hz, self.data_rate_bps)

    @property
    def sir_threshold(self) -> float:
        """Minimum signal-to-interference ratio for successful reception."""
        return required_sir(self.data_rate_bps, self.bandwidth_hz, self.beta)

    @property
    def target_received_power_w(self) -> float:
        """Delivered power that senders should aim at this receiver.

        This is the constant pre-determined level of Section 6.1's power
        control rule, sized so that a delivery at exactly this power
        clears the SIR threshold when interference equals the budget.
        """
        return self.sir_threshold * self.noise_budget_w

    def can_receive(self, signal_power_w: float, interference_power_w: float) -> bool:
        """Whether a signal at the given power survives the interference."""
        if interference_power_w < 0.0:
            raise ValueError("interference power must be non-negative")
        if interference_power_w == 0.0:
            return signal_power_w > 0.0
        return signal_power_w / interference_power_w >= self.sir_threshold
