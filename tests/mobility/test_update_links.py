"""Property tests for incremental channel updates against the field.

`Medium.update_links` is the channel process's write path: an
absolute-valued bulk gain update that patches the incremental
interference field by delta.  These tests pin the invariants that make
continuous channels safe: after any interleaving of gain updates and
transmission begins/ends, the incremental field matches the exact
recompute (dense and sparse alike), writing the original values back
restores the medium to nominal *bit-exactly*, and updates aimed at
sparse-culled links are counted, never silently widened.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.net.test_medium_incremental import (
    STATIONS,
    apply_ops,
    assert_field_matches,
    build_medium,
)

links_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=STATIONS - 1),
        st.integers(min_value=0, max_value=STATIONS - 1),
        st.floats(min_value=1e-9, max_value=1e-2),
    ),
    min_size=1,
    max_size=12,
)

ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=STATIONS - 1),
        st.floats(min_value=1e-3, max_value=100.0),
        st.integers(min_value=-1, max_value=8),
    ),
    max_size=12,
)


def _update(medium, links):
    receivers = np.array([r for r, s, _ in links if r != s], dtype=np.intp)
    sources = np.array([s for r, s, _ in links if r != s], dtype=np.intp)
    values = np.array([v for r, s, v in links if r != s], dtype=float)
    if receivers.size:
        medium.update_links(receivers, sources, values)


class TestIncrementalMatchesExact:
    @pytest.mark.parametrize("cull_gain", [None, 1e-6])
    @settings(max_examples=40, deadline=None)
    @given(links=links_strategy, ops=ops_strategy)
    def test_updates_between_bursts(self, cull_gain, links, ops):
        _env, medium = build_medium(cull_gain=cull_gain)
        _update(medium, links)
        assert_field_matches(medium)
        apply_ops(medium, ops)
        _update(medium, links)
        assert_field_matches(medium)

    @pytest.mark.parametrize("cull_gain", [None, 1e-6])
    @settings(max_examples=40, deadline=None)
    @given(
        links=links_strategy,
        before=ops_strategy,
        after=ops_strategy,
    )
    def test_updates_under_active_transmissions(
        self, cull_gain, links, before, after
    ):
        """Gain updates while bursts are on the air patch the live
        field by delta; begins/ends before and after stay consistent."""
        _env, medium = build_medium(cull_gain=cull_gain)
        # Leave transmissions active: begin without ending.
        for station, power, _end in before:
            if not medium.is_station_transmitting(station):
                apply_ops(medium, [(station, power, -1)])
        _update(medium, links)
        assert_field_matches(medium)
        apply_ops(medium, after)
        assert_field_matches(medium)


class TestExactRestore:
    @pytest.mark.parametrize("cull_gain", [None, 1e-6])
    @settings(max_examples=25, deadline=None)
    @given(links=links_strategy)
    def test_writing_nominal_back_restores_bit_exactly(
        self, cull_gain, links
    ):
        _env, medium = build_medium(cull_gain=cull_gain)
        receivers = np.array(
            [r for r, s, _ in links if r != s], dtype=np.intp
        )
        sources = np.array([s for r, s, _ in links if r != s], dtype=np.intp)
        if not receivers.size:
            return
        if medium.sparse is not None:
            nominal = np.array(
                [medium.sparse.gain(r, s) for r, s in zip(receivers, sources)]
            )
            live = nominal > 0.0
            receivers, sources, nominal = (
                receivers[live],
                sources[live],
                nominal[live],
            )
            if not receivers.size:
                return
        else:
            nominal = medium.gains[receivers, sources].copy()
        perturbed = np.array([v for r, s, v in links if r != s], dtype=float)
        perturbed = perturbed[: receivers.size]
        receivers = receivers[: perturbed.size]
        sources = sources[: perturbed.size]
        medium.update_links(receivers, sources, perturbed)
        assert medium.channel_drift_from_nominal() >= 0.0
        medium.update_links(receivers, sources, nominal)
        assert medium.channel_drift_from_nominal() == 0.0


class TestCulledLinksAreCounted:
    def test_culled_updates_skip_loudly(self):
        _env, medium = build_medium(cull_gain=2e-4)
        dense_env, dense = build_medium(cull_gain=None)
        # Find a pair the cull dropped.
        culled = None
        for r in range(STATIONS):
            for s in range(STATIONS):
                if r != s and dense.gains[r, s] > 0.0:
                    if medium.sparse.gain(r, s) == 0.0:
                        culled = (r, s)
                        break
            if culled:
                break
        assert culled is not None, "cull threshold dropped nothing"
        r, s = culled
        applied = medium.update_links(
            np.array([r], dtype=np.intp),
            np.array([s], dtype=np.intp),
            np.array([5e-4]),
        )
        assert applied == 0
        assert medium.culled_update_skips == 1

    def test_link_indices_resolves_and_caches(self):
        _env, medium = build_medium(cull_gain=1e-6)
        receivers = []
        sources = []
        for s in range(STATIONS):
            rows, _vals = medium.sparse.column(s)
            for r in rows.tolist():
                receivers.append(r)
                sources.append(s)
        receivers = np.array(receivers, dtype=np.intp)
        sources = np.array(sources, dtype=np.intp)
        indices = medium.link_indices(receivers, sources)
        assert indices is not None and (indices >= 0).all()
        # A dense medium has no flat indices to resolve.
        _denv, dense = build_medium(cull_gain=None)
        assert dense.link_indices(receivers, sources) is None
