"""Task descriptions and execution: one seeded simulation run per task.

A :class:`TaskSpec` is a picklable, self-contained description of one
unit of work — an experiment from the registry, a dotted-name callable,
or the standard loaded-network scenario — plus the derived seed that
makes it reproducible.  :func:`execute_task` turns a spec into a
:class:`TaskResult` *without ever raising*: exceptions become
structured error rows, so a pool of workers can aggregate outcomes
deterministically whatever happens inside a task.

Because a task is fully described by its spec (parameters and seed
included), executing it inline, in a spawned worker, or on another
host yields bit-identical payloads — the property the cross-process
determinism tests pin down via :func:`payload_digest`.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import math
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

__all__ = [
    "TaskSpec",
    "TaskResult",
    "canonicalize",
    "execute_task",
    "payload_digest",
    "report_to_payload",
    "payload_to_report",
    "resolve_function",
    "spec_identity",
    "spec_digest",
]

#: Task kinds: an experiment id from the registry, a ``module:callable``
#: dotted name, or the standard ``run_loaded_network`` scenario.
_KINDS = ("experiment", "function", "scenario")


@dataclass(frozen=True)
class TaskSpec:
    """One unit of parallelisable work.

    Attributes:
        task_id: unique, stable identifier; aggregation merges results
            in spec order, keyed by this id.
        kind: ``"experiment"`` (``target`` is a registry id such as
            ``"T7"``), ``"function"`` (``target`` is a picklable-safe
            ``"package.module:callable"`` dotted name), or
            ``"scenario"`` (the ``run_loaded_network`` family;
            ``target`` is ignored).
        target: what to run, interpreted per ``kind``.
        params: keyword arguments for the target (must be picklable).
        seed: derived seed from the task tree; when set it is passed to
            the target as its ``seed`` keyword (the builder is
            responsible for only seeding seed-taking targets).
        sanitize: run under the determinism sanitizer; targets that
            expose a ``replay_digest`` in their payload need this.
        timeout_s: per-task wall-clock limit (enforced only by the
            multiprocess pool; inline execution cannot be interrupted).
        retries: extra attempts after a worker crash or timeout (a task
            failing with a Python exception is *not* retried — that
            failure is deterministic).
    """

    task_id: str
    kind: str
    target: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    sanitize: bool = False
    timeout_s: Optional[float] = None
    retries: int = 1

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown task kind {self.kind!r}; one of {_KINDS}")
        if self.kind in ("experiment", "function") and not self.target:
            raise ValueError(f"{self.kind} tasks need a target")
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ValueError("timeout must be positive")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")

    def kwargs(self) -> Dict[str, Any]:
        """The keyword arguments actually passed to the target."""
        merged = dict(self.params)
        if self.seed is not None:
            merged["seed"] = self.seed
        return merged


@dataclass
class TaskResult:
    """Outcome of one task: a payload, or a structured error — never a
    missing row.

    Attributes:
        task_id: the spec's id.
        ok: whether the task produced a payload.
        payload: picklable result dictionary (``None`` on error).
        error: failure description (exception, crash, or timeout).
        attempts: how many times the task was started (> 1 after a
            worker crash or timeout triggered a retry).
        replay_digest: the engine's replay digest, when the task ran
            sanitized and its payload carried one.
        payload_digest: BLAKE2b fingerprint of the canonicalised
            payload — the cross-process bit-exactness check.
    """

    task_id: str
    ok: bool
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 1
    replay_digest: Optional[str] = None
    payload_digest: Optional[str] = None


def resolve_function(dotted: str) -> Callable[..., Any]:
    """Import ``"package.module:callable"`` and return the callable."""
    module_name, separator, attribute = dotted.partition(":")
    if not separator or not module_name or not attribute:
        raise ValueError(
            f"function target {dotted!r} is not of the form 'module:callable'"
        )
    module = importlib.import_module(module_name)
    try:
        func = getattr(module, attribute)
    except AttributeError:
        raise AttributeError(
            f"module {module_name!r} has no attribute {attribute!r}"
        ) from None
    if not callable(func):
        raise TypeError(f"{dotted!r} is not callable")
    return func


#: Canonical spellings of the floats JSON cannot carry.  ``json.dumps``
#: would otherwise emit the non-standard tokens ``NaN``/``Infinity``
#: (which ``json.loads`` turns back into values that break ``==``
#: comparisons, so journal/cache round-trips would silently diverge).
_NONFINITE = {"nan": "nan", "inf": "inf", "-inf": "-inf"}


def _plain(value: Any) -> Any:
    """Canonicalise a value for digesting: numpy scalars to Python
    scalars, arrays to nested lists, tuples to lists, mappings keyed by
    ``str``, and non-finite floats to an explicit marker mapping."""
    if type(value).__module__.partition(".")[0] == "numpy":
        if getattr(value, "ndim", 0) > 0:
            return _plain(value.tolist())
        if hasattr(value, "item"):
            return _plain(value.item())
    if isinstance(value, (list, tuple)):
        return [_plain(element) for element in value]
    if isinstance(value, Mapping):
        return {str(key): _plain(sub) for key, sub in value.items()}
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return {"__nonfinite__": _NONFINITE["nan"]}
        return {"__nonfinite__": _NONFINITE["inf" if value > 0 else "-inf"]}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def canonicalize(value: Any) -> Any:
    """Public alias of the canonicaliser: JSON-safe, numpy-free values
    (used when writing payloads to report artifacts)."""
    return _plain(value)


def payload_digest(payload: Mapping[str, Any]) -> str:
    """Deterministic fingerprint of a payload (canonical JSON, BLAKE2b).

    Two payloads digest equal iff their canonicalised values are
    identical — the currency of the jobs-invariance guarantee.
    ``allow_nan=False`` is the backstop: canonicalisation rewrites every
    non-finite float to a marker mapping, so a NaN reaching the encoder
    means a value slipped past :func:`canonicalize` and must fail loudly
    rather than digest inconsistently.
    """
    try:
        canonical = json.dumps(
            _plain(dict(payload)), sort_keys=True, allow_nan=False
        )
    except ValueError as exc:
        raise ValueError(
            "payload contains a non-finite float that survived "
            "canonicalisation; digests would be platform-dependent"
        ) from exc
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def spec_identity(spec: "TaskSpec") -> Dict[str, Any]:
    """The canonical identity of a spec's *work*: everything that
    determines its outcome, nothing that doesn't.

    Deliberately excludes ``task_id`` (two sweeps may label identical
    work differently) and the scheduling knobs ``timeout_s``/``retries``
    (they bound execution, never results).  This mapping is the only
    legal cache key: result rows are a pure function of it.
    """
    return {
        "kind": spec.kind,
        "target": spec.target,
        "params": canonicalize(dict(spec.params)),
        "seed": spec.seed,
        "sanitize": spec.sanitize,
    }


def spec_digest(spec: "TaskSpec") -> str:
    """BLAKE2b fingerprint of :func:`spec_identity` — the
    content-addressed store key of a task's result."""
    canonical = json.dumps(spec_identity(spec), sort_keys=True, allow_nan=False)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def report_to_payload(report: Any) -> Dict[str, Any]:
    """Flatten an :class:`~repro.experiments.runner.ExperimentReport`
    into a picklable dictionary."""
    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "columns": list(report.columns),
        "rows": [list(row) for row in report.rows],
        "claims": {
            name: [paper, measured]
            for name, (paper, measured) in report.claims.items()
        },
        "notes": list(report.notes),
    }


def payload_to_report(payload: Mapping[str, Any]) -> Any:
    """Rebuild an ``ExperimentReport`` from :func:`report_to_payload`."""
    from repro.experiments.runner import ExperimentReport

    report = ExperimentReport(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        columns=tuple(payload["columns"]),
        rows=[tuple(row) for row in payload["rows"]],
        claims={
            name: (paper, measured)
            for name, (paper, measured) in payload["claims"].items()
        },
        notes=list(payload["notes"]),
    )
    return report


def _run_experiment(spec: TaskSpec) -> Dict[str, Any]:
    from repro.experiments import get_experiment

    report = get_experiment(spec.target)(**spec.kwargs())
    return report_to_payload(report)


def _run_function(spec: TaskSpec) -> Dict[str, Any]:
    func = resolve_function(spec.target)
    outcome = func(**spec.kwargs())
    if isinstance(outcome, Mapping):
        return dict(outcome)
    return {"value": outcome}


def _run_scenario(spec: TaskSpec) -> Dict[str, Any]:
    """The ``run_loaded_network`` family, always sanitized so the
    engine's replay digest rides along as the determinism witness."""
    from repro.experiments.simsetup import run_loaded_network
    from repro.sim.sanitizer import sanitized

    kwargs = dict(spec.params)
    stations = int(kwargs.pop("stations"))
    load = float(kwargs.pop("load"))
    duration_slots = float(kwargs.pop("duration_slots"))
    seed = spec.seed if spec.seed is not None else 29
    placement_seed = int(kwargs.pop("placement_seed", seed + stations))
    traffic_seed = int(kwargs.pop("traffic_seed", seed))
    if kwargs:
        unknown = ", ".join(sorted(kwargs))
        raise TypeError(f"unknown scenario parameters: {unknown}")
    with sanitized(True):
        network, result = run_loaded_network(
            stations,
            load,
            duration_slots,
            placement_seed=placement_seed,
            traffic_seed=traffic_seed,
        )
        digest = network.env.replay_digest()
    return {
        "stations": stations,
        "load": load,
        "duration_slots": duration_slots,
        "seed": seed,
        "events": network.env.events_processed,
        "deliveries": result.hop_deliveries,
        "delivered_end_to_end": result.delivered_end_to_end,
        "losses": result.losses_total,
        "collision_free": result.collision_free,
        "replay_digest": digest,
    }


_RUNNERS = {
    "experiment": _run_experiment,
    "function": _run_function,
    "scenario": _run_scenario,
}


def execute_task(spec: TaskSpec) -> TaskResult:
    """Run one task to a structured result; never raises.

    The same function runs inline (``jobs=1``) and inside pool workers,
    which is what makes pooled execution bit-identical to serial: the
    outcome depends only on the spec.
    """
    from repro.sim.sanitizer import sanitized

    runner = _RUNNERS[spec.kind]
    try:
        if spec.sanitize and spec.kind != "scenario":
            with sanitized(True):
                payload = runner(spec)
        else:
            payload = runner(spec)
    except Exception as exc:  # noqa: BLE001 - structured capture is the point
        trace = traceback.format_exc(limit=8)
        return TaskResult(
            task_id=spec.task_id,
            ok=False,
            error=f"{type(exc).__name__}: {exc}\n{trace}",
        )
    digest: Optional[str] = None
    raw_digest = payload.get("replay_digest")
    if isinstance(raw_digest, str):
        digest = raw_digest
    return TaskResult(
        task_id=spec.task_id,
        ok=True,
        payload=payload,
        replay_digest=digest,
        payload_digest=payload_digest(payload),
    )


def results_digest(results: Sequence[TaskResult]) -> str:
    """One fingerprint over an ordered result list (payload digests and
    error markers), for whole-run comparisons across worker counts."""
    parts = []
    for result in results:
        if result.ok:
            parts.append(f"{result.task_id}={result.payload_digest}")
        else:
            parts.append(f"{result.task_id}=ERROR")
    joined = "\n".join(parts)
    return hashlib.blake2b(joined.encode("utf-8"), digest_size=16).hexdigest()


__all__.append("results_digest")
