"""Bench A4: footnote 9's adaptive power rule versus the paper's."""

from repro.experiments import get_experiment


def test_bench_a4_target_sir_policy(benchmark, show_report):
    report = benchmark(lambda: get_experiment("A4")())
    show_report(report)
    assert report.claims["adaptive rule still clears every threshold"][1] >= 1.0
    assert report.claims["radiated-power saving (constant / adaptive)"][1] > 1.0
