"""Tests for the Section 7.2 scheduling statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.scheduling_stats import (
    expected_wait_slots,
    geometric_wait_pmf,
    measure_overlap,
    measure_slot_waits,
    measure_waits,
    optimal_receive_fraction,
    pairwise_overlap_fraction,
    throughput_proxy,
    usable_fraction,
)
from repro.clock.clock import Clock
from repro.core.schedule import Schedule


class TestClosedForms:
    def test_overlap_021_at_p03(self):
        assert pairwise_overlap_fraction(0.3) == pytest.approx(0.21)

    def test_usable_15_percent(self):
        # "approximately 15% of all time" with quarter-slot packets.
        assert usable_fraction(0.3) == pytest.approx(0.1575)

    def test_expected_wait_476(self):
        assert expected_wait_slots(0.3) == pytest.approx(4.762, abs=1e-3)

    def test_pmf_sums_toward_one(self):
        pmf = geometric_wait_pmf(0.3, 100)
        assert sum(pmf) == pytest.approx(1.0, abs=1e-8)

    def test_pmf_is_geometric(self):
        pmf = geometric_wait_pmf(0.3, 10)
        q = 0.21
        for k in range(9):
            assert pmf[k + 1] / pmf[k] == pytest.approx(1.0 - q)

    def test_pairwise_proxy_peaks_at_half(self):
        # The *pairwise* proxy is maximised at p = 1/2; the network-
        # level optimum near 0.3 emerges only in simulation (T2), where
        # receive capacity serves several upstream senders.
        assert optimal_receive_fraction() == pytest.approx(0.5)

    def test_proxy_flat_near_optimum(self):
        assert throughput_proxy(0.3) / throughput_proxy(0.5) > 0.8


class TestMeasurement:
    def test_overlap_matches_p_one_minus_p(self):
        schedule = Schedule(slot_time=1.0, receive_fraction=0.3, key=3)
        measurement = measure_overlap(
            schedule, Clock(offset=17.3), Clock(offset=912.8), horizon_slots=20_000
        )
        assert measurement.overlap_fraction == pytest.approx(0.21, abs=0.02)

    @settings(max_examples=10, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=1e5),
        st.floats(min_value=0.0, max_value=1e5),
    )
    def test_overlap_property_over_offsets(self, a, b):
        from hypothesis import assume

        assume(abs(a - b) >= 2.0)
        schedule = Schedule(slot_time=1.0, receive_fraction=0.3, key=5)
        measurement = measure_overlap(
            schedule, Clock(offset=a), Clock(offset=b), horizon_slots=5_000
        )
        assert measurement.overlap_fraction == pytest.approx(0.21, abs=0.05)

    def test_slot_waits_mean_near_bernoulli(self):
        # A single pair's wait depends on its particular clock phase;
        # the Bernoulli 1/(p(1-p)) figure is an ensemble average, so
        # measure over several random pairs.
        schedule = Schedule(slot_time=1.0, receive_fraction=0.3, key=7)
        rng = np.random.default_rng(0)
        waits = []
        for _ in range(8):
            waits.extend(
                measure_slot_waits(
                    schedule,
                    Clock(offset=float(rng.uniform(0.0, 1e5))),
                    Clock(offset=float(rng.uniform(0.0, 1e5))),
                    arrivals=150,
                    rng=rng,
                )
            )
        # +1 for the sending slot itself (the model counts trials).
        assert float(np.mean(waits)) + 1.0 == pytest.approx(4.76, abs=1.0)

    def test_continuous_waits_beat_slotted(self):
        schedule = Schedule(slot_time=1.0, receive_fraction=0.3, key=9)
        rng = np.random.default_rng(1)
        continuous = measure_waits(
            schedule, Clock(offset=3.3), Clock(offset=700.9),
            arrivals=300, rng=rng,
        )
        assert float(np.mean(continuous)) < expected_wait_slots(0.3)

    def test_measure_waits_validates(self):
        schedule = Schedule()
        with pytest.raises(ValueError):
            measure_waits(schedule, Clock(), Clock(offset=5.0), arrivals=0)
