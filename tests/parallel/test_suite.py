"""run-all plumbing: canonical ordering, overrides, jobs-invariance."""

import pytest

from repro.experiments import all_experiments
from repro.parallel.suite import (
    QUICK_PARAMS,
    build_suite_tasks,
    experiment_order,
    run_suite,
)


class TestSuiteTasks:
    def test_order_is_canonical_and_complete(self):
        order = experiment_order()
        assert set(order) == set(all_experiments())
        assert order[0] == "F1"
        assert order.index("T1") == order.index("F4") + 1
        assert order.index("T12") == order.index("T11") + 1
        assert order.index("T13") == order.index("T12") + 1
        assert order.index("T14") == order.index("T13") + 1
        assert order.index("A1") == order.index("T14") + 1
        # Numeric, not lexicographic: T2 before T10.
        assert order.index("T2") < order.index("T10")

    def test_quick_params_cover_only_known_experiments(self):
        assert set(QUICK_PARAMS) == set(all_experiments())

    def test_build_applies_quick_and_overrides(self):
        specs = build_suite_tasks(
            quick=True, overrides={"T7": {"station_count": 8}}
        )
        by_id = {spec.task_id: spec for spec in specs}
        assert by_id["T7"].params["station_count"] == 8
        assert (
            by_id["T7"].params["loads_packets_per_slot"]
            == QUICK_PARAMS["T7"]["loads_packets_per_slot"]
        )

    def test_build_rejects_unknown_override(self):
        with pytest.raises(ValueError):
            build_suite_tasks(overrides={"Z9": {}})


class TestSuiteJobsInvariance:
    def test_quick_suite_identical_at_one_and_two_workers(self):
        serial = run_suite(jobs=1, quick=True)
        pooled = run_suite(jobs=2, quick=True)
        assert serial.errors == {}
        assert pooled.errors == {}
        assert serial.experiment_ids == pooled.experiment_ids
        assert serial.digest() == pooled.digest()
        # Compare canonical JSON rather than raw dicts: payloads may
        # contain NaN, which is equal-by-identity only (a pickled copy
        # from a worker is a different object).
        import json

        serial_payload = json.dumps(serial.to_payload(), sort_keys=True)
        pooled_payload = json.dumps(pooled.to_payload(), sort_keys=True)
        serial_payload = serial_payload.replace('"jobs": 1', '"jobs": 2')
        assert serial_payload == pooled_payload
        # Every experiment produced a report with rows.
        reports = pooled.reports()
        assert set(reports) == set(all_experiments())
        assert all(report.rows for report in reports.values())
